//! Multi-worker datagram front-end: a bounded SPMC ring fanning
//! request datagrams onto N worker threads.
//!
//! The paper's evaluation is single-node and the whole protocol stack
//! is sans-IO, so scaling across cores is purely a front-end concern:
//! workers pull raw datagrams off a shared ring and run the *existing*
//! borrowed-view hot path — [`CoapProxy::handle_client_request_wire`]
//! for the proxy leg and [`DocServer::handle_request_wire`] for the
//! origin leg — against state that is lock-striped per shard
//! ([`doc_coap::shard`]). Nothing in the protocol logic knows it is
//! being run concurrently.
//!
//! * [`SpmcRing`] — a bounded single-producer/multi-consumer ring of
//!   fixed power-of-two capacity. The producer blocks when the ring is
//!   full (closed-loop backpressure: in-flight work is bounded by the
//!   ring), consumers block when it is empty and drain in batches to
//!   amortize lock/wake traffic.
//! * [`ProxyPool`] — N workers sharing one `Arc<CoapProxy>` and one
//!   `Arc<DocServer>`; each datagram runs the full client → proxy →
//!   (origin, on a cache miss) → client exchange and the reply is
//!   handed to a caller-supplied sink.
//!
//! The ring is transport-agnostic: the closed-loop throughput harness
//! (`doc-bench`) feeds it from a replayed query mix, and the
//! `doc-netsim` simulator feeds it via its batched event drain
//! (`Sim::drain_due`).

use crate::proxy::{CoapProxy, ProxyAction};
use crate::server::DocServer;
use crate::transport::TransportKind;
// The sync primitives come from `doc-check`: outside a model execution
// they are passthroughs to `std::sync`, inside one every operation is
// a scheduling point — so `check_gate` explores the interleavings of
// *this* ring, not a copy (see `crates/check`).
use doc_check::sync::atomic::{AtomicU64, Ordering};
use doc_check::sync::{Arc, Condvar, Mutex};
use doc_dtls::record::{CipherState, ContentType, Record, RecordSeal};

/// What wire format the pool's workers speak.
///
/// The CoAP mode runs the full client → proxy → origin exchange (the
/// paper's DoC deployment). The stream modes serve the DoQ/DoH/DoT
/// application layer — parse the framed DNS message, resolve it
/// against the origin's upstream, frame the response — which is the
/// per-request hot path those transports add on top of QUIC-lite
/// (connection crypto is per-session, not per-request, and is measured
/// by the `doc-quic` crate itself).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeMode {
    /// CoAP proxy + origin view path (default).
    Coap,
    /// RFC 9250 2-byte length-prefixed DNS (also the DoT framing).
    Doq,
    /// DoH-lite HEADERS+DATA framing.
    DohLite,
    /// RFC 7858 length-prefixed DNS, one message per datagram.
    Dot,
}

impl ServeMode {
    /// The pool mode serving a transport's application framing.
    pub fn for_transport(kind: TransportKind) -> ServeMode {
        match kind {
            TransportKind::Quic => ServeMode::Doq,
            TransportKind::DohLite => ServeMode::DohLite,
            TransportKind::Dot => ServeMode::Dot,
            _ => ServeMode::Coap,
        }
    }

    /// Artifact label (`BENCH_proxy.json` `transport` field).
    pub fn label(self) -> &'static str {
        match self {
            ServeMode::Coap => "coap",
            ServeMode::Doq => "doq",
            ServeMode::DohLite => "doh",
            ServeMode::Dot => "dot",
        }
    }
}

/// A bounded single-producer/multi-consumer ring buffer.
///
/// Fixed storage allocated once at construction; `push` blocks while
/// the ring is full, `pop`/`pop_batch` block while it is empty. After
/// [`SpmcRing::close`], pushes fail and pops drain the remaining items
/// before returning `None`.
pub struct SpmcRing<T> {
    state: Mutex<RingState<T>>,
    not_empty: Condvar,
    not_full: Condvar,
}

struct RingState<T> {
    /// `capacity` slots; `None` = empty slot.
    slots: Box<[Option<T>]>,
    /// Next slot to pop (wraps with the power-of-two mask).
    head: u64,
    /// Next slot to push.
    tail: u64,
    closed: bool,
}

impl<T> RingState<T> {
    fn len(&self) -> usize {
        (self.tail - self.head) as usize
    }
    fn mask(&self) -> u64 {
        self.slots.len() as u64 - 1
    }
}

impl<T> SpmcRing<T> {
    /// Create a ring with `capacity` slots (rounded up to a power of
    /// two, at least 2).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        SpmcRing {
            state: Mutex::new(RingState {
                slots: (0..cap).map(|_| None).collect(),
                head: 0,
                tail: 0,
                closed: false,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        }
    }

    /// Slot count.
    pub fn capacity(&self) -> usize {
        self.state.lock().unwrap().slots.len()
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().len()
    }

    /// Whether the ring is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Push an item, blocking while the ring is full. Returns the item
    /// back if the ring was closed.
    pub fn push(&self, item: T) -> Result<(), T> {
        let mut st = self.state.lock().unwrap();
        while st.len() == st.slots.len() && !st.closed {
            st = self.not_full.wait(st).unwrap();
        }
        if st.closed {
            return Err(item);
        }
        let idx = (st.tail & st.mask()) as usize;
        st.slots[idx] = Some(item);
        st.tail += 1;
        drop(st);
        self.not_empty.notify_one();
        Ok(())
    }

    /// Pop one item, blocking while the ring is empty. Returns `None`
    /// once the ring is closed *and* drained.
    pub fn pop(&self) -> Option<T> {
        let mut st = self.state.lock().unwrap();
        loop {
            if st.len() > 0 {
                let idx = (st.head & st.mask()) as usize;
                let item = st.slots[idx].take();
                st.head += 1;
                drop(st);
                self.not_full.notify_one();
                return item;
            }
            if st.closed {
                return None;
            }
            st = self.not_empty.wait(st).unwrap();
        }
    }

    /// Pop up to `max` items into `out`, blocking while the ring is
    /// empty. Returns the number of items appended — 0 only once the
    /// ring is closed and drained. Batch draining takes the lock once
    /// per batch instead of once per datagram.
    pub fn pop_batch(&self, out: &mut Vec<T>, max: usize) -> usize {
        let mut st = self.state.lock().unwrap();
        loop {
            let n = st.len().min(max.max(1));
            if n > 0 {
                for _ in 0..n {
                    let idx = (st.head & st.mask()) as usize;
                    out.push(st.slots[idx].take().expect("occupied slot"));
                    st.head += 1;
                }
                drop(st);
                // Several slots freed: there may be room for more than
                // one producer push and other consumers may still find
                // items.
                self.not_full.notify_all();
                return n;
            }
            if st.closed {
                return 0;
            }
            st = self.not_empty.wait(st).unwrap();
        }
    }

    /// Close the ring: subsequent pushes fail, pops drain what is left.
    /// Idempotent.
    pub fn close(&self) {
        self.state.lock().unwrap().closed = true;
        self.not_empty.notify_all();
        self.not_full.notify_all();
    }
}

/// Closes the ring when dropped — including when a worker unwinds.
/// Without this, a panicking consumer would leave the producer parked
/// forever on the full ring's condvar instead of letting the scope
/// join and propagate the panic.
struct CloseOnDrop<'a, T>(&'a SpmcRing<T>);

impl<T> Drop for CloseOnDrop<'_, T> {
    fn drop(&mut self) {
        self.0.close();
    }
}

/// One request datagram entering the pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Datagram {
    /// Peer (client) identifier — scopes block-wise transfer state.
    pub peer: u64,
    /// Caller-chosen sequence number, carried through to the reply.
    pub seq: u64,
    /// Virtual receive time (drives cache freshness).
    pub at: doc_time::Instant,
    /// The CoAP request wire bytes.
    pub wire: Vec<u8>,
}

/// One reply datagram leaving the pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reply {
    /// Peer the reply goes back to.
    pub peer: u64,
    /// Sequence number of the request this answers.
    pub seq: u64,
    /// Index of the worker that served the exchange.
    pub worker: usize,
    /// The CoAP response wire bytes (`None`: the datagram was
    /// malformed and dropped, like a real UDP front-end would).
    pub wire: Option<Vec<u8>>,
}

/// Counters aggregated over one [`ProxyPool::run`] call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolRunStats {
    /// Datagrams pulled off the ring.
    pub processed: u64,
    /// Replies produced.
    pub replies: u64,
    /// Malformed datagrams dropped.
    pub errors: u64,
}

/// DTLS protection for the pool's reply leg: every reply leaving a
/// worker is sealed as an epoch-`epoch` ApplicationData record, with
/// the whole `pop_batch` drain protected in **one** batched AEAD pass
/// ([`CipherState::seal_batch`]) so the keystream setup is amortized
/// across the drain instead of paid per reply.
pub struct ReplySeal {
    cipher: CipherState,
    epoch: u16,
    /// Next record sequence number; workers reserve a contiguous run
    /// per batch.
    seq: AtomicU64,
}

impl ReplySeal {
    /// Create from the write-direction key-block material.
    pub fn new(key: &[u8; 16], fixed_iv: [u8; 4], epoch: u16) -> Self {
        ReplySeal {
            cipher: CipherState::new(key, fixed_iv),
            epoch,
            seq: AtomicU64::new(0),
        }
    }

    /// Reserve `n` consecutive record sequence numbers.
    fn reserve(&self, n: u64) -> u64 {
        self.seq.fetch_add(n, Ordering::Relaxed)
    }

    /// Seal the batch's reply wires (malformed-datagram `None`s pass
    /// through), returning full DTLS record wire bytes per reply.
    fn seal_replies(&self, wires: &[Option<Vec<u8>>]) -> Vec<Option<Vec<u8>>> {
        let n_ok = wires.iter().flatten().count() as u64;
        let first = self.reserve(n_ok);
        let items: Vec<RecordSeal<'_>> = wires
            .iter()
            .flatten()
            .enumerate()
            .map(|(i, w)| RecordSeal {
                ctype: ContentType::ApplicationData,
                epoch: self.epoch,
                seq: first + i as u64,
                plaintext: w,
            })
            .collect();
        let payloads = self
            .cipher
            .seal_batch(&items)
            .expect("record parameters are valid");
        let mut sealed = items.iter().zip(payloads);
        wires
            .iter()
            .map(|w| {
                w.as_ref().map(|_| {
                    let (item, payload) = sealed.next().expect("one sealed payload per reply");
                    Record {
                        ctype: item.ctype,
                        epoch: item.epoch,
                        seq: item.seq,
                        payload,
                    }
                    .encode()
                })
            })
            .collect()
    }
}

/// A multi-worker proxy front-end: N threads sharing one thread-safe
/// [`CoapProxy`] and [`DocServer`].
pub struct ProxyPool {
    /// The shared (sharded) caching proxy.
    pub proxy: Arc<CoapProxy>,
    /// The shared origin server.
    pub server: Arc<DocServer>,
    workers: usize,
    mode: ServeMode,
    /// When set, replies leave the pool as DTLS records, batch-sealed
    /// per drain. `None` (the default) keeps the plaintext reply wire.
    seal: Option<ReplySeal>,
}

/// How many datagrams a worker drains from the ring per lock
/// acquisition.
const POP_BATCH: usize = 32;

impl ProxyPool {
    /// Create a pool of `workers` threads (at least 1) over shared
    /// proxy/server state, speaking CoAP.
    pub fn new(workers: usize, proxy: Arc<CoapProxy>, server: Arc<DocServer>) -> Self {
        Self::with_mode(workers, proxy, server, ServeMode::Coap)
    }

    /// Like [`ProxyPool::new`] with an explicit wire format.
    pub fn with_mode(
        workers: usize,
        proxy: Arc<CoapProxy>,
        server: Arc<DocServer>,
        mode: ServeMode,
    ) -> Self {
        ProxyPool {
            proxy,
            server,
            workers: workers.max(1),
            mode,
            seal: None,
        }
    }

    /// Protect the reply leg: every reply this pool emits becomes a
    /// DTLS ApplicationData record, sealed batch-at-a-time (the crypto
    /// analogue of `pop_batch`'s lock amortization).
    pub fn with_reply_seal(mut self, seal: ReplySeal) -> Self {
        self.seal = Some(seal);
        self
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The wire format the workers speak.
    pub fn mode(&self) -> ServeMode {
        self.mode
    }

    /// Serve one request datagram end to end on the calling thread:
    /// proxy view path, then (on miss/revalidation) the origin's view
    /// path, then the upstream response re-entering the proxy. Returns
    /// the reply wire bytes, or `None` for malformed datagrams.
    ///
    /// `upstream_buf` is a scratch buffer reused across calls for the
    /// re-encoded upstream request.
    pub fn serve(&self, d: &Datagram, upstream_buf: &mut Vec<u8>) -> Option<Vec<u8>> {
        if self.mode != ServeMode::Coap {
            return self.serve_stream(d);
        }
        match self
            .proxy
            .handle_client_request_wire(&d.wire, d.at.as_millis())
        {
            Ok(ProxyAction::Respond(resp)) => Some(resp.encode()),
            Ok(ProxyAction::Forward {
                request,
                exchange_id,
            }) => {
                upstream_buf.clear();
                request.encode_into(upstream_buf);
                let upstream_resp = self
                    .server
                    .handle_request_wire(d.peer, upstream_buf, d.at.as_millis())
                    .ok()?;
                self.proxy
                    .handle_upstream_response(exchange_id, &upstream_resp, d.at.as_millis())
                    .map(|r| r.encode())
            }
            Err(_) => None,
        }
    }

    /// Serve one framed DNS request in a stream mode: unframe, resolve
    /// against the origin's upstream, re-frame. Malformed framing (or
    /// a non-DNS body) drops the datagram, like the CoAP path.
    fn serve_stream(&self, d: &Datagram) -> Option<Vec<u8>> {
        let dns = match self.mode {
            ServeMode::Doq | ServeMode::Dot => doc_quic::doq::decode_doq(&d.wire).ok()?,
            ServeMode::DohLite => doc_quic::doq::decode_doh(&d.wire).ok()?,
            ServeMode::Coap => unreachable!("handled by serve"),
        };
        let query = doc_dns::Message::decode(dns).ok()?;
        let resp = self.server.upstream.resolve(&query, d.at.as_millis());
        self.server.count_raw_dns_response();
        let bytes = resp.encode();
        Some(match self.mode {
            ServeMode::Doq | ServeMode::Dot => doc_quic::doq::encode_doq(&bytes),
            ServeMode::DohLite => doc_quic::doq::encode_doh_response(&bytes),
            ServeMode::Coap => unreachable!("handled by serve"),
        })
    }

    /// Fan `datagrams` over the worker threads through a bounded ring
    /// of `ring_capacity` slots and hand every reply to `on_reply`
    /// (called from worker threads; replies arrive in completion
    /// order, not submission order).
    ///
    /// The calling thread is the single producer: it blocks while the
    /// ring is full, which bounds in-flight work and gives closed-loop
    /// behaviour when the iterator is replayed load.
    pub fn run<I>(
        &self,
        ring_capacity: usize,
        datagrams: I,
        on_reply: &(dyn Fn(Reply) + Sync),
    ) -> PoolRunStats
    where
        I: IntoIterator<Item = Datagram>,
    {
        let ring: SpmcRing<Datagram> = SpmcRing::new(ring_capacity);
        let processed = AtomicU64::new(0);
        let replies = AtomicU64::new(0);
        let errors = AtomicU64::new(0);
        std::thread::scope(|scope| {
            // The producer needs the same unwind protection as the
            // workers: if the datagram iterator panics, the scope body
            // unwinds before the explicit close below, and scope()
            // would join workers parked on the empty ring forever.
            let _producer_guard = CloseOnDrop(&ring);
            for worker in 0..self.workers {
                let ring = &ring;
                let processed = &processed;
                let replies = &replies;
                let errors = &errors;
                scope.spawn(move || {
                    // If this worker unwinds (serve or on_reply
                    // panicking), the guard closes the ring so the
                    // producer unblocks and the scope can join and
                    // propagate the panic instead of deadlocking.
                    let _close_guard = CloseOnDrop(ring);
                    let mut batch: Vec<Datagram> = Vec::with_capacity(POP_BATCH);
                    let mut upstream_buf: Vec<u8> = Vec::with_capacity(256);
                    let mut wires: Vec<Option<Vec<u8>>> = Vec::with_capacity(POP_BATCH);
                    while ring.pop_batch(&mut batch, POP_BATCH) > 0 {
                        // Serve the whole drain first, then (when the
                        // reply leg is protected) seal every reply in
                        // one batched AEAD pass before emitting.
                        wires.clear();
                        for d in batch.iter() {
                            let wire = self.serve(d, &mut upstream_buf);
                            processed.fetch_add(1, Ordering::Relaxed);
                            match wire {
                                Some(_) => replies.fetch_add(1, Ordering::Relaxed),
                                None => errors.fetch_add(1, Ordering::Relaxed),
                            };
                            wires.push(wire);
                        }
                        if let Some(seal) = &self.seal {
                            wires = seal.seal_replies(&wires);
                        }
                        for (d, wire) in batch.drain(..).zip(wires.drain(..)) {
                            on_reply(Reply {
                                peer: d.peer,
                                seq: d.seq,
                                worker,
                                wire,
                            });
                        }
                    }
                });
            }
            for d in datagrams {
                if ring.push(d).is_err() {
                    break;
                }
            }
            ring.close();
        });
        PoolRunStats {
            processed: processed.load(Ordering::Relaxed),
            replies: replies.load(Ordering::Relaxed),
            errors: errors.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::{build_request, DocMethod};
    use crate::policy::CachePolicy;
    use crate::server::MockUpstream;
    use doc_coap::msg::{Code, MsgType};
    use doc_coap::view::CoapView;
    use doc_dns::{Message, Name, RecordType};
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn ring_is_bounded_fifo() {
        let ring = SpmcRing::new(4);
        assert_eq!(ring.capacity(), 4);
        for i in 0..4 {
            ring.push(i).unwrap();
        }
        assert_eq!(ring.len(), 4);
        assert_eq!(ring.pop(), Some(0));
        assert_eq!(ring.pop(), Some(1));
        ring.push(4).unwrap();
        let mut batch = Vec::new();
        assert_eq!(ring.pop_batch(&mut batch, 8), 3);
        assert_eq!(batch, vec![2, 3, 4]);
        ring.close();
        assert_eq!(ring.pop(), None);
        assert!(ring.push(9).is_err());
    }

    #[test]
    fn ring_full_push_blocks_until_pop() {
        let ring = Arc::new(SpmcRing::new(2));
        ring.push(1u32).unwrap();
        ring.push(2).unwrap();
        let r2 = Arc::clone(&ring);
        let producer = std::thread::spawn(move || r2.push(3).is_ok());
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(ring.pop(), Some(1), "push of 3 must still be parked");
        assert!(producer.join().unwrap());
        assert_eq!(ring.pop(), Some(2));
        assert_eq!(ring.pop(), Some(3));
    }

    #[test]
    fn ring_multi_consumer_partitions_items() {
        let ring = Arc::new(SpmcRing::new(8));
        let seen = Arc::new(Mutex::new(Vec::new()));
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let ring = Arc::clone(&ring);
                let seen = Arc::clone(&seen);
                std::thread::spawn(move || {
                    let mut batch = Vec::new();
                    while ring.pop_batch(&mut batch, 4) > 0 {
                        seen.lock().unwrap().append(&mut batch);
                    }
                })
            })
            .collect();
        for i in 0..100u32 {
            ring.push(i).unwrap();
        }
        ring.close();
        for c in consumers {
            c.join().unwrap();
        }
        let mut got = seen.lock().unwrap().clone();
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>(), "exactly-once delivery");
    }

    fn fetch_wire(name: &str, seq: u64) -> Vec<u8> {
        let mut q = Message::query(0, Name::parse(name).unwrap(), RecordType::Aaaa);
        q.canonicalize_id();
        build_request(
            DocMethod::Fetch,
            &q.encode(),
            MsgType::Con,
            seq as u16,
            vec![seq as u8, (seq >> 8) as u8],
        )
        .unwrap()
        .encode()
    }

    fn pool(workers: usize, names: &[&str]) -> ProxyPool {
        let up = MockUpstream::new(7, 3600, 3600);
        for n in names {
            up.add_aaaa(Name::parse(n).unwrap(), 1);
        }
        ProxyPool::new(
            workers,
            Arc::new(CoapProxy::with_shards(256, 8)),
            Arc::new(DocServer::new(CachePolicy::EolTtls, up)),
        )
    }

    #[test]
    fn pool_serves_all_datagrams_with_matching_exchanges() {
        let names = ["a.example.org", "b.example.org", "c.example.org"];
        let pool = pool(4, &names);
        let total = 300u64;
        let replies = Mutex::new(Vec::new());
        let stats = pool.run(
            16,
            (0..total).map(|seq| Datagram {
                peer: seq % 5,
                seq,
                at: doc_time::Instant::from_millis(seq),
                wire: fetch_wire(names[(seq % 3) as usize], seq),
            }),
            &|r| replies.lock().unwrap().push(r),
        );
        assert_eq!(stats.processed, total);
        assert_eq!(stats.replies, total);
        assert_eq!(stats.errors, 0);
        let replies = replies.lock().unwrap();
        assert_eq!(replies.len(), total as usize);
        for r in replies.iter() {
            // Each reply carries its own request's token and MID — no
            // cross-exchange mix-ups under concurrency.
            let wire = r.wire.as_ref().expect("reply present");
            let v = CoapView::parse(wire).unwrap();
            assert_eq!(v.code, Code::CONTENT, "seq {}", r.seq);
            assert_eq!(v.message_id, r.seq as u16);
            assert_eq!(v.token(), &[r.seq as u8, (r.seq >> 8) as u8]);
        }
        // 3 distinct names with 1-hour TTLs: all but the first touches
        // are proxy cache hits. Concurrent first touches can each miss
        // before the insert lands, so the miss count is bounded by
        // names × workers, not names.
        let p = pool.proxy.stats();
        assert_eq!(p.requests, total as u32);
        assert!(p.cache_hits >= total as u32 - 12, "hits {}", p.cache_hits);
    }

    #[test]
    fn stream_modes_serve_framed_dns() {
        use doc_quic::doq;
        for mode in [ServeMode::Doq, ServeMode::DohLite, ServeMode::Dot] {
            let up = MockUpstream::new(7, 3600, 3600);
            up.add_aaaa(Name::parse("a.example.org").unwrap(), 1);
            let pool = ProxyPool::with_mode(
                2,
                Arc::new(CoapProxy::with_shards(64, 4)),
                Arc::new(DocServer::new(CachePolicy::EolTtls, up)),
                mode,
            );
            assert_eq!(pool.mode(), mode);
            let mut q = Message::query(9, Name::parse("a.example.org").unwrap(), RecordType::Aaaa);
            q.header.rd = true;
            let framed = match mode {
                ServeMode::DohLite => doq::encode_doh_request(&q.encode()),
                _ => doq::encode_doq(&q.encode()),
            };
            let replies = Mutex::new(Vec::new());
            let stats = pool.run(
                8,
                (0..50u64).map(|seq| Datagram {
                    peer: 0,
                    seq,
                    at: doc_time::Instant::from_millis(1),
                    wire: if seq == 13 {
                        vec![0xFF; 3] // malformed framing is dropped
                    } else {
                        framed.clone()
                    },
                }),
                &|r| replies.lock().unwrap().push(r),
            );
            assert_eq!(stats.processed, 50, "{mode:?}");
            assert_eq!(stats.replies, 49, "{mode:?}");
            assert_eq!(stats.errors, 1, "{mode:?}");
            let replies = replies.lock().unwrap();
            let wire = replies
                .iter()
                .find(|r| r.wire.is_some())
                .and_then(|r| r.wire.clone())
                .expect("a reply");
            let dns = match mode {
                ServeMode::DohLite => doq::decode_doh(&wire).unwrap(),
                _ => doq::decode_doq(&wire).unwrap(),
            };
            let resp = Message::decode(dns).unwrap();
            assert_eq!(resp.header.id, 9, "{mode:?}: response echoes the query ID");
            assert_eq!(resp.answers.len(), 1, "{mode:?}");
        }
    }

    #[test]
    fn pool_drops_malformed_datagrams() {
        let pool = pool(2, &["a.example.org"]);
        let errors = AtomicUsize::new(0);
        let stats = pool.run(
            4,
            (0..10u64).map(|seq| Datagram {
                peer: 0,
                seq,
                at: doc_time::Instant::from_millis(0),
                wire: if seq % 2 == 0 {
                    fetch_wire("a.example.org", seq)
                } else {
                    vec![0xFF, 0x00, 0x01] // not a CoAP datagram
                },
            }),
            &|r| {
                if r.wire.is_none() {
                    errors.fetch_add(1, Ordering::Relaxed);
                }
            },
        );
        assert_eq!(stats.processed, 10);
        assert_eq!(stats.replies, 5);
        assert_eq!(stats.errors, 5);
        assert_eq!(errors.load(Ordering::Relaxed), 5);
    }

    /// A panicking worker must propagate out of `run` (via the scope
    /// join), not leave the producer deadlocked on the full ring.
    #[test]
    fn worker_panic_propagates_instead_of_deadlocking() {
        let pool = pool(1, &["a.example.org"]);
        // Far more datagrams than ring slots, so the producer would
        // park on the full ring if the sole (panicked) worker stopped
        // draining without closing it.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(
                4,
                (0..1000u64).map(|seq| Datagram {
                    peer: 0,
                    seq,
                    at: doc_time::Instant::from_millis(0),
                    wire: fetch_wire("a.example.org", seq),
                }),
                &|_| panic!("reply sink failure"),
            )
        }));
        assert!(result.is_err(), "panic must propagate");
    }

    /// A panicking datagram source must propagate out of `run` the
    /// same way a panicking worker does — not leave the workers parked
    /// on the open ring's condvar.
    #[test]
    fn producer_panic_propagates_instead_of_deadlocking() {
        let pool = pool(2, &["a.example.org"]);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(
                4,
                (0..100u64).map(|seq| {
                    if seq == 50 {
                        panic!("load source failure");
                    }
                    Datagram {
                        peer: 0,
                        seq,
                        at: doc_time::Instant::from_millis(0),
                        wire: fetch_wire("a.example.org", seq),
                    }
                }),
                &|_| {},
            )
        }));
        assert!(result.is_err(), "panic must propagate");
    }

    /// With one worker the sealed pool's output must be byte-exactly
    /// what sealing each plaintext reply sequentially would produce.
    #[test]
    fn sealed_replies_match_sequential_seal() {
        let names = ["a.example.org"];
        let key = [0x4Du8; 16];
        let iv = [9, 8, 7, 6];
        let make_load = || {
            (0..40u64).map(|seq| Datagram {
                peer: 0,
                seq,
                at: doc_time::Instant::from_millis(1),
                wire: fetch_wire("a.example.org", seq),
            })
        };
        // Plaintext reference replies (submission order: 1 worker).
        let plain_pool = pool(1, &names);
        let plain = Mutex::new(Vec::new());
        plain_pool.run(8, make_load(), &|r| plain.lock().unwrap().push(r));
        let mut plain = plain.lock().unwrap().clone();
        plain.sort_by_key(|r| r.seq);

        let sealed_pool = pool(1, &names).with_reply_seal(ReplySeal::new(&key, iv, 1));
        let sealed = Mutex::new(Vec::new());
        let stats = sealed_pool.run(8, make_load(), &|r| sealed.lock().unwrap().push(r));
        assert_eq!(stats.replies, 40);
        let mut sealed = sealed.lock().unwrap().clone();
        sealed.sort_by_key(|r| r.seq);

        // One worker drains in submission order, so record seqs are
        // 0..40 in reply order; re-seal the plaintext replies with a
        // fresh cipher and compare byte-for-byte.
        let cipher = CipherState::new(&key, iv);
        for (rec_seq, (p, s)) in plain.iter().zip(sealed.iter()).enumerate() {
            let expect = Record {
                ctype: ContentType::ApplicationData,
                epoch: 1,
                seq: rec_seq as u64,
                payload: cipher
                    .seal(
                        ContentType::ApplicationData,
                        1,
                        rec_seq as u64,
                        p.wire.as_ref().unwrap(),
                    )
                    .unwrap(),
            }
            .encode();
            assert_eq!(s.wire.as_ref().unwrap(), &expect, "reply {}", p.seq);
        }
    }

    /// Multi-worker sealed replies all decrypt to valid responses with
    /// unique record sequence numbers.
    #[test]
    fn sealed_replies_decrypt_under_concurrency() {
        let names = ["a.example.org", "b.example.org"];
        let key = [0x4Du8; 16];
        let iv = [1, 2, 3, 4];
        let pool = pool(4, &names).with_reply_seal(ReplySeal::new(&key, iv, 1));
        let replies = Mutex::new(Vec::new());
        let total = 200u64;
        let stats = pool.run(
            16,
            (0..total).map(|seq| Datagram {
                peer: seq % 3,
                seq,
                at: doc_time::Instant::from_millis(1),
                wire: fetch_wire(names[(seq % 2) as usize], seq),
            }),
            &|r| replies.lock().unwrap().push(r),
        );
        assert_eq!(stats.replies, total);
        let cipher = CipherState::new(&key, iv);
        let mut seen_seqs = Vec::new();
        for r in replies.lock().unwrap().iter() {
            let wire = r.wire.as_ref().expect("reply present");
            let (rec, used) = Record::decode(wire).unwrap();
            assert_eq!(used, wire.len());
            assert_eq!(rec.ctype, ContentType::ApplicationData);
            assert_eq!(rec.epoch, 1);
            seen_seqs.push(rec.seq);
            let inner = cipher
                .open(rec.ctype, rec.epoch, rec.seq, &rec.payload)
                .unwrap();
            let v = CoapView::parse(&inner).unwrap();
            assert_eq!(v.code, Code::CONTENT);
            assert_eq!(v.message_id, r.seq as u16);
        }
        seen_seqs.sort_unstable();
        seen_seqs.dedup();
        assert_eq!(seen_seqs.len(), total as usize, "record seqs unique");
    }

    #[test]
    fn single_and_multi_worker_agree_on_totals() {
        let names = ["x.example.org", "y.example.org"];
        let total = 200u64;
        let run = |workers| {
            let pool = pool(workers, &names);
            // Prime the cache single-threaded so the measured run has
            // no first-touch races; after that, totals are exact and
            // identical for every worker count.
            let mut buf = Vec::new();
            for (i, n) in names.iter().enumerate() {
                pool.serve(
                    &Datagram {
                        peer: 9,
                        seq: 1000 + i as u64,
                        at: doc_time::Instant::from_millis(0),
                        wire: fetch_wire(n, 1000 + i as u64),
                    },
                    &mut buf,
                );
            }
            let stats = pool.run(
                8,
                (0..total).map(|seq| Datagram {
                    peer: 0,
                    seq,
                    at: doc_time::Instant::from_millis(5), // single instant: no TTL churn
                    wire: fetch_wire(names[(seq % 2) as usize], seq),
                }),
                &|_| {},
            );
            (stats, pool.proxy.stats(), pool.server.stats())
        };
        let (s1, p1, sv1) = run(1);
        let (s4, p4, sv4) = run(4);
        assert_eq!(s1, s4);
        assert_eq!(p1.requests, p4.requests);
        assert_eq!(p1.cache_hits, p4.cache_hits);
        assert_eq!(p1.cache_hits, total as u32, "every measured request hits");
        assert_eq!(sv1.full_responses, sv4.full_responses);
    }
}
