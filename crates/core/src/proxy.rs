//! A DoC-agnostic caching CoAP forward proxy — the node `P` of the
//! paper's Fig. 2/3.
//!
//! The proxy never parses DNS. It works purely on the CoAP caching
//! model: cache keys over method/options/payload, Max-Age freshness,
//! and ETag revalidation towards the origin. That is the point of the
//! paper's §4.2 design — and with OSCORE the proxy caches *encrypted*
//! responses it cannot read (Fig. 4b).
//!
//! The proxy is **thread-safe**: every public method takes `&self`, so
//! an `Arc<CoapProxy>` can be shared across the workers of a
//! [`crate::pool`] front-end. Internally the response cache and the
//! outstanding-exchange table are lock-striped
//! ([`ShardedResponseCache`]/[`ShardedCache`]) and the statistics are
//! atomics; single-threaded callers pay only uncontended locks, and
//! with a single shard (the [`CoapProxy::new`] default) behaviour is
//! bit-identical to the historical unsharded proxy, FIFO eviction
//! included.

use doc_coap::cache::{cache_key_view, cache_key_view_reusing, CacheKey, Lookup};
use doc_coap::msg::{CoapMessage, Code};
use doc_coap::opt::{CoapOption, OptionNumber};
use doc_coap::shard::{ShardedCache, ShardedResponseCache};
use doc_coap::view::CoapView;
use doc_coap::CoapError;
// Model-checkable atomics (passthrough to `std` outside `check_gate`
// executions — see `crates/check`).
use doc_check::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// What the proxy decided to do with a client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProxyAction {
    /// Serve this response straight back to the client.
    Respond(Box<CoapMessage>),
    /// Forward this (possibly rewritten) request upstream; correlate
    /// the upstream exchange with `exchange_id`.
    Forward {
        /// Request to send upstream (fresh MID/token set by caller's
        /// endpoint).
        request: Box<CoapMessage>,
        /// Correlation handle for [`CoapProxy::handle_upstream_response`].
        exchange_id: u64,
    },
}

/// What [`CoapProxy::serve_wire`] did with the request.
#[derive(Debug, PartialEq, Eq)]
pub enum WireAction {
    /// The reply wire was encoded into the caller's buffer.
    Responded,
    /// Forward this request upstream — exactly
    /// [`ProxyAction::Forward`].
    Forward {
        /// Request to send upstream.
        request: Box<CoapMessage>,
        /// Correlation handle for [`CoapProxy::handle_upstream_response`].
        exchange_id: u64,
    },
}

/// Reusable per-caller scratch for [`CoapProxy::serve_wire`] — holds
/// the buffers the wire hot path would otherwise allocate per request.
#[derive(Debug, Default)]
pub struct ProxyScratch {
    /// Cache-key bytes, recycled between requests (see
    /// [`cache_key_view_reusing`]).
    key_buf: Vec<u8>,
}

/// Proxy statistics (Fig. 10/11 cache events at `P`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProxyStats {
    /// Client requests processed.
    pub requests: u32,
    /// Served fresh from cache without upstream traffic.
    pub cache_hits: u32,
    /// Upstream revalidations attempted.
    pub revalidations: u32,
    /// `2.03 Valid` received (revalidation succeeded).
    pub revalidated: u32,
    /// Full fetches forwarded upstream.
    pub forwards: u32,
}

struct Outstanding {
    key: CacheKey,
    client_request: CoapMessage,
    client_etag: Option<Vec<u8>>,
    revalidating: bool,
}

/// Lock-free statistics counters behind the [`ProxyStats`] snapshot.
#[derive(Default)]
struct AtomicProxyStats {
    requests: AtomicU32,
    cache_hits: AtomicU32,
    revalidations: AtomicU32,
    revalidated: AtomicU32,
    forwards: AtomicU32,
}

impl AtomicProxyStats {
    fn snapshot(&self) -> ProxyStats {
        ProxyStats {
            requests: self.requests.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            revalidations: self.revalidations.load(Ordering::Relaxed),
            revalidated: self.revalidated.load(Ordering::Relaxed),
            forwards: self.forwards.load(Ordering::Relaxed),
        }
    }
}

/// Bump a counter by one (relaxed: counters are advisory statistics).
fn bump(c: &AtomicU32) {
    c.fetch_add(1, Ordering::Relaxed);
}

/// The caching forward proxy.
pub struct CoapProxy {
    cache: ShardedResponseCache,
    outstanding: ShardedCache<u64, Outstanding>,
    next_exchange: AtomicU64,
    stats: AtomicProxyStats,
}

impl Default for CoapProxy {
    fn default() -> Self {
        Self::new(50)
    }
}

impl CoapProxy {
    /// Create a proxy with a cache of `capacity` entries (the paper's
    /// proxy uses `CONFIG_NANOCOAP_CACHE_ENTRIES = 50`, Table 6) on a
    /// single shard — observationally identical to the historical
    /// unsharded proxy, which the paper-reproduction experiments rely
    /// on.
    pub fn new(capacity: usize) -> Self {
        Self::with_shards(capacity, 1)
    }

    /// Create a proxy whose response cache and exchange table are
    /// striped over `shards` locks — the scale-out configuration used
    /// by the [`crate::pool`] worker front-end. `capacity` is the
    /// *total* cache budget, split evenly across shards.
    pub fn with_shards(capacity: usize, shards: usize) -> Self {
        CoapProxy {
            cache: ShardedResponseCache::new(capacity, shards),
            outstanding: ShardedCache::new(shards),
            next_exchange: AtomicU64::new(0),
            stats: AtomicProxyStats::default(),
        }
    }

    /// A snapshot of the proxy statistics.
    pub fn stats(&self) -> ProxyStats {
        self.stats.snapshot()
    }

    /// Cache statistics from the underlying response cache.
    pub fn cache_stats(&self) -> doc_coap::cache::CacheStats {
        self.cache.stats()
    }

    /// Handle a client request at time `now_ms`.
    ///
    /// Owned-message convenience wrapper over the wire hot path: the
    /// request is encoded once and handled as a borrowed view, so both
    /// entry points exercise exactly the same logic (the serialize pass
    /// is the deliberate price for not maintaining two request
    /// handlers; latency-sensitive callers hold wire bytes already and
    /// use [`CoapProxy::handle_client_request_wire`] directly). A
    /// message that cannot be represented on the wire (e.g. a token
    /// longer than 8 bytes) is answered `4.00 Bad Request` rather than
    /// processed — with the token truncated to 8 bytes so the reply
    /// itself stays encodable.
    pub fn handle_client_request(&self, req: &CoapMessage, now_ms: u64) -> ProxyAction {
        if req.token.len() > 8 {
            bump(&self.stats.requests);
            return ProxyAction::Respond(Box::new(CoapMessage::ack_reply(
                req.message_id,
                req.token[..8].to_vec(),
                Code::BAD_REQUEST,
            )));
        }
        let wire = req.encode();
        match self.handle_client_request_wire(&wire, now_ms) {
            Ok(action) => action,
            Err(_) => {
                bump(&self.stats.requests);
                ProxyAction::Respond(Box::new(CoapMessage::ack_reply(
                    req.message_id,
                    req.token.clone(),
                    Code::BAD_REQUEST,
                )))
            }
        }
    }

    /// Handle a client request straight from its datagram bytes — the
    /// zero-copy hot path. The request is parsed as a borrowed
    /// [`CoapView`]: a fresh cache hit touches no owned message at all
    /// (the key is derived from the view, the reply reuses the cached
    /// entry), and the request is materialized with `to_owned()` only
    /// at the single point where it must outlive the datagram — when it
    /// is forwarded upstream and parked in the outstanding-exchange
    /// table.
    pub fn handle_client_request_wire(
        &self,
        wire: &[u8],
        now_ms: u64,
    ) -> Result<ProxyAction, CoapError> {
        let req = CoapView::parse(wire)?;
        bump(&self.stats.requests);
        // The key (and its FNV hash) is derived from the view exactly
        // once per request; every later consumer — cache lookup, shard
        // selection, the outstanding-exchange entry — reuses it.
        let key = cache_key_view(&req);
        Ok(self.dispatch(key, &req, now_ms))
    }

    /// Wire-in/wire-out hot path: like
    /// [`CoapProxy::handle_client_request_wire`], but a fresh cache hit
    /// encodes the reply *directly into* `out` (cleared at entry) via
    /// the cache's zero-copy hit encoder, and the cache key is derived
    /// into `scratch`'s recycled buffer — so a steady-state hit
    /// allocates nothing at all. Miss/stale/POST requests fall back to
    /// the shared slow path, reusing the already-derived key; a
    /// resulting `Respond` is also encoded into `out`.
    pub fn serve_wire(
        &self,
        wire: &[u8],
        now_ms: u64,
        scratch: &mut ProxyScratch,
        out: &mut Vec<u8>,
    ) -> Result<WireAction, CoapError> {
        let req = CoapView::parse(wire)?;
        bump(&self.stats.requests);
        let key = cache_key_view_reusing(&req, std::mem::take(&mut scratch.key_buf));
        if doc_coap::cache::is_cacheable_method(req.code) {
            let client_etag = req.option(OptionNumber::ETAG).map(|o| o.value);
            if self.cache.serve_hit_into(
                &key,
                now_ms,
                req.message_id,
                req.token(),
                client_etag,
                out,
            ) {
                bump(&self.stats.cache_hits);
                scratch.key_buf = key.into_bytes();
                return Ok(WireAction::Responded);
            }
        }
        // Slow path: identical decision logic to the owned entry point.
        // (A concurrent insert may have landed since the fast-path
        // probe; `dispatch`'s own lookup then serves and counts the
        // fresh hit — never double-counted, since the probe declined
        // without counting.)
        match self.dispatch(key, &req, now_ms) {
            ProxyAction::Respond(resp) => {
                out.clear();
                resp.encode_into(out);
                Ok(WireAction::Responded)
            }
            ProxyAction::Forward {
                request,
                exchange_id,
            } => Ok(WireAction::Forward {
                request,
                exchange_id,
            }),
        }
    }

    /// The proxy's request decision tree, shared by every entry point.
    /// `bump(requests)` has already happened; `key` is the request's
    /// derived cache key, consumed by the forward path.
    fn dispatch(&self, key: CacheKey, req: &CoapView<'_>, now_ms: u64) -> ProxyAction {
        if !doc_coap::cache::is_cacheable_method(req.code) {
            // POST etc.: pure pass-through.
            bump(&self.stats.forwards);
            return self.forward(key, req.to_owned(), None, false);
        }
        match self.cache.lookup(&key, now_ms) {
            Lookup::Fresh(cached) => {
                bump(&self.stats.cache_hits);
                let client_etag = req.option(OptionNumber::ETAG).map(|o| o.value);
                let resp = Self::reply_from_entry(
                    req.message_id,
                    req.token().to_vec(),
                    &cached,
                    client_etag,
                );
                ProxyAction::Respond(Box::new(resp))
            }
            Lookup::Stale { etag, .. } => {
                // Revalidate upstream with the cached ETag.
                bump(&self.stats.revalidations);
                let original = req.to_owned();
                let mut upstream_req = original.clone();
                upstream_req.set_option(CoapOption::new(OptionNumber::ETAG, etag));
                self.forward(key, upstream_req, Some(original), true)
            }
            Lookup::Miss | Lookup::StaleNoEtag => {
                bump(&self.stats.forwards);
                self.forward(key, req.to_owned(), None, false)
            }
        }
    }

    fn forward(
        &self,
        key: CacheKey,
        upstream_req: CoapMessage,
        original: Option<CoapMessage>,
        revalidating: bool,
    ) -> ProxyAction {
        let id = self.next_exchange.fetch_add(1, Ordering::Relaxed);
        let client_request = original.unwrap_or_else(|| upstream_req.clone());
        let client_etag = client_request
            .option(OptionNumber::ETAG)
            .map(|o| o.value.clone());
        self.outstanding.insert(
            id,
            Outstanding {
                key,
                client_request,
                client_etag,
                revalidating,
            },
        );
        ProxyAction::Forward {
            request: Box::new(upstream_req),
            exchange_id: id,
        }
    }

    /// Handle the upstream's response for `exchange_id`; returns the
    /// response to relay to the client (None if the exchange is
    /// unknown).
    pub fn handle_upstream_response(
        &self,
        exchange_id: u64,
        resp: &CoapMessage,
        now_ms: u64,
    ) -> Option<CoapMessage> {
        let mut out = self.outstanding.remove(&exchange_id)?;
        // The exchange state is consumed here: its identifiers move
        // into the reply instead of being cloned.
        let client_mid = out.client_request.message_id;
        let client_token = std::mem::take(&mut out.client_request.token);
        match resp.code {
            Code::VALID if out.revalidating => {
                bump(&self.stats.revalidated);
                let refreshed = self.cache.revalidate(&out.key, resp, now_ms);
                match refreshed {
                    Some(entry) => Some(Self::reply_from_entry(
                        client_mid,
                        client_token,
                        &entry,
                        out.client_etag.as_deref(),
                    )),
                    // Entry evicted meanwhile: degrade to an error the
                    // client will retry.
                    None => Some(CoapMessage::ack_reply(
                        client_mid,
                        client_token,
                        Code::BAD_GATEWAY,
                    )),
                }
            }
            code if code.is_success() => {
                if doc_coap::cache::is_cacheable_method(out.client_request.code)
                    && code == Code::CONTENT
                {
                    self.cache.insert(out.key, resp.clone(), now_ms);
                }
                Some(Self::reply_from_entry(
                    client_mid,
                    client_token,
                    resp,
                    out.client_etag.as_deref(),
                ))
            }
            _ => {
                // Error responses pass through unchanged (re-keyed to
                // the client's exchange).
                let mut relay = resp.clone();
                relay.message_id = client_mid;
                relay.token = client_token;
                Some(relay)
            }
        }
    }

    /// Build the client-facing reply from a cached/fresh entry,
    /// downgrading to `2.03 Valid` when the client already holds the
    /// same representation (its ETag matches). The client token is
    /// taken by value — moved from consumed exchange state or copied
    /// once out of a borrowed request view, never double-cloned.
    fn reply_from_entry(
        client_mid: u16,
        client_token: Vec<u8>,
        entry: &CoapMessage,
        client_etag: Option<&[u8]>,
    ) -> CoapMessage {
        let entry_etag = entry.option(OptionNumber::ETAG).map(|o| o.value.clone());
        if client_etag.is_some() && client_etag == entry_etag.as_deref() {
            let mut v = CoapMessage::ack_reply(client_mid, client_token, Code::VALID);
            if let Some(e) = entry_etag {
                v.set_option(CoapOption::new(OptionNumber::ETAG, e));
            }
            v.set_option(CoapOption::uint(OptionNumber::MAX_AGE, entry.max_age()));
            v
        } else {
            let mut full = entry.clone();
            full.message_id = client_mid;
            full.token = client_token;
            full.mtype = doc_coap::msg::MsgType::Ack;
            full
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::method::{build_request, DocMethod};
    use crate::policy::CachePolicy;
    use crate::server::{DocServer, MockUpstream};
    use doc_coap::msg::MsgType;
    use doc_dns::{Message, Name, RecordType};

    fn name() -> Name {
        Name::parse("name-01234.c.example.org").unwrap()
    }

    fn query_bytes() -> Vec<u8> {
        let mut q = Message::query(0, name(), RecordType::Aaaa);
        q.canonicalize_id();
        q.encode()
    }

    fn fetch_req(mid: u16) -> CoapMessage {
        build_request(
            DocMethod::Fetch,
            &query_bytes(),
            MsgType::Con,
            mid,
            vec![mid as u8, 0xCC],
        )
        .unwrap()
    }

    fn doc_server(policy: CachePolicy, ttl: u32) -> DocServer {
        let up = MockUpstream::new(5, ttl, ttl);
        up.add_aaaa(name(), 1);
        DocServer::new(policy, up)
    }

    /// Drive request → proxy → server → proxy → response.
    fn via_proxy(
        proxy: &CoapProxy,
        server: &DocServer,
        req: &CoapMessage,
        now: u64,
    ) -> CoapMessage {
        match proxy.handle_client_request(req, now) {
            ProxyAction::Respond(resp) => *resp,
            ProxyAction::Forward {
                request,
                exchange_id,
            } => {
                let upstream_resp = server.handle_request(&request, now);
                proxy
                    .handle_upstream_response(exchange_id, &upstream_resp, now)
                    .expect("known exchange")
            }
        }
    }

    #[test]
    fn miss_then_hit() {
        let proxy = CoapProxy::new(8);
        let server = doc_server(CachePolicy::EolTtls, 300);
        let r1 = via_proxy(&proxy, &server, &fetch_req(1), 0);
        assert_eq!(r1.code, Code::CONTENT);
        assert_eq!(proxy.stats().forwards, 1);
        // Second client request: cache hit, no upstream traffic.
        let r2 = via_proxy(&proxy, &server, &fetch_req(2), 10_000);
        assert_eq!(r2.code, Code::CONTENT);
        assert_eq!(proxy.stats().cache_hits, 1);
        assert_eq!(server.stats().requests, 1, "server not contacted again");
        // Max-Age was decremented by the proxy.
        assert_eq!(r2.max_age(), 290);
        // Token/MID belong to the second client exchange.
        assert_eq!(r2.token, fetch_req(2).token);
    }

    /// The wire entry point (borrowed-view hot path) behaves exactly
    /// like the owned one: miss → forward, hit → cached reply with the
    /// second client's exchange identifiers.
    #[test]
    fn miss_then_hit_on_wire_path() {
        let proxy = CoapProxy::new(8);
        let server = doc_server(CachePolicy::EolTtls, 300);
        let wire1 = fetch_req(1).encode();
        let action = proxy.handle_client_request_wire(&wire1, 0).unwrap();
        let r1 = match action {
            ProxyAction::Forward {
                request,
                exchange_id,
            } => {
                let upstream = server.handle_request(&request, 0);
                proxy
                    .handle_upstream_response(exchange_id, &upstream, 0)
                    .unwrap()
            }
            other => panic!("{other:?}"),
        };
        assert_eq!(r1.code, Code::CONTENT);
        // Second request hits the cache without any owned decode.
        let wire2 = fetch_req(2).encode();
        let r2 = match proxy.handle_client_request_wire(&wire2, 10_000).unwrap() {
            ProxyAction::Respond(resp) => *resp,
            other => panic!("{other:?}"),
        };
        assert_eq!(r2.code, Code::CONTENT);
        assert_eq!(proxy.stats().cache_hits, 1);
        assert_eq!(r2.token, fetch_req(2).token);
        assert_eq!(r2.message_id, fetch_req(2).message_id);
        assert_eq!(r2.max_age(), 290);
        // Malformed datagrams are rejected, not panicked on.
        assert!(proxy.handle_client_request_wire(&[0xFF, 0x01], 0).is_err());
    }

    /// `serve_wire` (scratch-threading, wire-direct) must be
    /// observationally identical to `handle_client_request_wire`:
    /// byte-identical replies, same statistics, same forward actions.
    #[test]
    fn serve_wire_matches_wire_entry_point() {
        let mk = || (CoapProxy::new(8), doc_server(CachePolicy::EolTtls, 300));
        let (p_ref, s_ref) = mk();
        let (p_new, s_new) = mk();
        let mut scratch = ProxyScratch::default();
        let mut out = Vec::new();
        let drive_new = |p: &CoapProxy,
                         s: &DocServer,
                         wire: &[u8],
                         now: u64,
                         scratch: &mut ProxyScratch,
                         out: &mut Vec<u8>| {
            match p.serve_wire(wire, now, scratch, out).unwrap() {
                WireAction::Responded => {}
                WireAction::Forward {
                    request,
                    exchange_id,
                } => {
                    let up = s.handle_request(&request, now);
                    let reply = p
                        .handle_upstream_response(exchange_id, &up, now)
                        .expect("known exchange");
                    out.clear();
                    reply.encode_into(out);
                }
            }
        };
        // Miss → hit → ETag-match 2.03 → POST pass-through.
        let mut reqs = vec![
            (fetch_req(1).encode(), 0u64),
            (fetch_req(2).encode(), 10_000),
        ];
        let r1 = via_proxy(&p_ref, &s_ref, &fetch_req(1), 0);
        let _ = via_proxy(&p_ref, &s_ref, &fetch_req(2), 10_000);
        let etag = r1.option(OptionNumber::ETAG).unwrap().value.clone();
        let mut req3 = fetch_req(3);
        req3.set_option(CoapOption::new(OptionNumber::ETAG, etag));
        reqs.push((req3.encode(), 20_000));
        let post = build_request(
            DocMethod::Post,
            &query_bytes(),
            MsgType::Con,
            4,
            vec![4, 0xCC],
        )
        .unwrap();
        reqs.push((post.encode(), 21_000));
        let _ = via_proxy(&p_ref, &s_ref, &req3, 20_000);
        let _ = via_proxy(&p_ref, &s_ref, &post, 21_000);
        // Replay the same sequence through serve_wire on the fresh
        // pair, comparing the reply bytes against the owned path.
        let (p_cmp, s_cmp) = mk();
        for (wire, now) in &reqs {
            drive_new(&p_new, &s_new, wire, *now, &mut scratch, &mut out);
            let req = CoapMessage::decode(wire).unwrap();
            let expect = via_proxy(&p_cmp, &s_cmp, &req, *now);
            assert_eq!(out, expect.encode(), "now {now}");
        }
        assert_eq!(p_new.stats(), p_ref.stats());
        assert_eq!(s_new.stats().requests, s_ref.stats().requests);
        assert_eq!(p_new.cache_stats(), p_ref.cache_stats());
        // Malformed datagrams error out, not panic.
        assert!(p_new
            .serve_wire(&[0xFF, 0x01], 0, &mut scratch, &mut out)
            .is_err());
    }

    #[test]
    fn stale_entry_revalidates_eol() {
        let proxy = CoapProxy::new(8);
        let server = doc_server(CachePolicy::EolTtls, 5);
        via_proxy(&proxy, &server, &fetch_req(1), 0);
        // Another client refreshes the RRset at the origin at t=7 s.
        server.handle_request(&fetch_req(9), 7_000);
        // At t=9 s the proxy entry is stale; EOL TTLs lets the upstream
        // confirm with 2.03 and the proxy serves the cached body.
        let r = via_proxy(&proxy, &server, &fetch_req(2), 9_000);
        assert_eq!(r.code, Code::CONTENT);
        assert!(!r.payload.is_empty());
        assert_eq!(proxy.stats().revalidations, 1);
        assert_eq!(proxy.stats().revalidated, 1);
        assert_eq!(server.stats().validations, 1);
        // Fresh (decayed) Max-Age propagated: 3 s remaining.
        assert_eq!(r.max_age(), 3);
    }

    #[test]
    fn stale_entry_full_fetch_doh_like() {
        let proxy = CoapProxy::new(8);
        let server = doc_server(CachePolicy::DohLike, 5);
        via_proxy(&proxy, &server, &fetch_req(1), 0);
        // Upstream TTL decays via another client's refresh (Fig. 3
        // step 3): the DoH-like payload changes.
        server.handle_request(&fetch_req(9), 7_000);
        let r = via_proxy(&proxy, &server, &fetch_req(2), 9_000);
        assert_eq!(r.code, Code::CONTENT);
        assert_eq!(proxy.stats().revalidations, 1);
        assert_eq!(proxy.stats().revalidated, 0, "DoH-like ETag broke");
        assert_eq!(server.stats().validations, 0);
        assert_eq!(server.stats().full_responses, 3);
    }

    /// Fig. 3 step 5: a client that already holds the representation
    /// (same ETag) gets a tiny 2.03 from the proxy cache.
    #[test]
    fn client_etag_match_gets_203_from_proxy() {
        let proxy = CoapProxy::new(8);
        let server = doc_server(CachePolicy::EolTtls, 300);
        let r1 = via_proxy(&proxy, &server, &fetch_req(1), 0);
        let etag = r1.option(OptionNumber::ETAG).unwrap().value.clone();
        let mut req2 = fetch_req(2);
        req2.set_option(CoapOption::new(OptionNumber::ETAG, etag));
        let r2 = via_proxy(&proxy, &server, &req2, 5_000);
        assert_eq!(r2.code, Code::VALID);
        assert!(r2.payload.is_empty());
        assert_eq!(r2.max_age(), 295);
    }

    #[test]
    fn post_bypasses_cache() {
        let proxy = CoapProxy::new(8);
        let server = doc_server(CachePolicy::EolTtls, 300);
        let mk = |mid: u16| {
            build_request(
                DocMethod::Post,
                &query_bytes(),
                MsgType::Con,
                mid,
                vec![mid as u8],
            )
            .unwrap()
        };
        via_proxy(&proxy, &server, &mk(1), 0);
        via_proxy(&proxy, &server, &mk(2), 1000);
        assert_eq!(proxy.stats().cache_hits, 0);
        assert_eq!(server.stats().requests, 2, "every POST reaches the origin");
    }

    #[test]
    fn error_responses_pass_through() {
        let proxy = CoapProxy::new(8);
        let req = fetch_req(1);
        let action = proxy.handle_client_request(&req, 0);
        let (fwd, id) = match action {
            ProxyAction::Forward {
                request,
                exchange_id,
            } => (request, exchange_id),
            other => panic!("{other:?}"),
        };
        let err = CoapMessage::ack_response(&fwd, Code::NOT_FOUND);
        let relay = proxy.handle_upstream_response(id, &err, 0).unwrap();
        assert_eq!(relay.code, Code::NOT_FOUND);
        assert_eq!(relay.token, req.token);
    }

    #[test]
    fn unknown_exchange_ignored() {
        let proxy = CoapProxy::new(8);
        let resp = CoapMessage::ack_response(&fetch_req(1), Code::CONTENT);
        assert!(proxy.handle_upstream_response(99, &resp, 0).is_none());
    }

    #[test]
    fn different_queries_different_entries() {
        let proxy = CoapProxy::new(8);
        let server = doc_server(CachePolicy::EolTtls, 300);
        server
            .upstream
            .add_aaaa(Name::parse("other.example.org").unwrap(), 1);
        via_proxy(&proxy, &server, &fetch_req(1), 0);
        // A query for a different name must miss.
        let mut q2 = Message::query(
            0,
            Name::parse("other.example.org").unwrap(),
            RecordType::Aaaa,
        );
        q2.canonicalize_id();
        let req2 = build_request(DocMethod::Fetch, &q2.encode(), MsgType::Con, 2, vec![2]).unwrap();
        via_proxy(&proxy, &server, &req2, 100);
        assert_eq!(proxy.stats().forwards, 2);
        assert_eq!(proxy.stats().cache_hits, 0);
    }
}
