//! TTL-integrity protection (paper §7, "How to protect the integrity
//! of the DNS TTLs?").
//!
//! DoC clients decrement DNS TTLs from the CoAP `Max-Age` option — but
//! Max-Age is Unsafe-to-forward and is *rewritten by untrusted
//! proxies*, so "an adversary with malicious intent, or a faulty proxy
//! behavior may impair TTLs on the client by using incorrect Max-Age
//! values". The paper proposes:
//!
//! * **EOL TTLs**: the server additionally includes a *second* Max-Age
//!   value protected by OSCORE (an inner option the proxy cannot see
//!   or alter). The client "compares both Max-Age values, deduces
//!   inconsistent modifications, e.g., larger values than the original
//!   TTLs, and discards the response when the consistency check
//!   fails".
//! * **DoH-like**: the original TTLs are already in the (protected)
//!   payload, so the outer Max-Age is checked against them directly.
//!
//! Either way the check "mitigates the use of outdated DNS records,
//! but still allows for unauthorized reduction of TTLs, which affects
//! the caching performance" — the asymmetric guarantee the tests below
//! pin down.

use crate::policy::CachePolicy;
use doc_coap::msg::CoapMessage;
use doc_coap::opt::{CoapOption, OptionNumber};
use doc_dns::Message;

/// Experimental inner option carrying the OSCORE-protected Max-Age
/// (elective, safe-to-forward; encrypted as a Class-E option when
/// OSCORE wraps the message, so intermediaries can neither read nor
/// modify it).
pub const INNER_MAX_AGE: OptionNumber = OptionNumber(65_000);

/// Result of the consistency check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TtlCheck {
    /// Outer Max-Age is consistent; use it (possibly proxy-decremented).
    Consistent {
        /// The Max-Age value to apply to TTL restoration.
        effective_max_age: u32,
    },
    /// The outer Max-Age exceeds the protected bound: a proxy inflated
    /// freshness. The response must be discarded.
    Inflated {
        /// What the attacker claimed.
        outer: u32,
        /// The protected upper bound.
        bound: u32,
    },
}

/// Server side: attach the protected Max-Age to the *inner* (to-be-
/// OSCORE-encrypted) response message.
pub fn attach_protected_max_age(inner_response: &mut CoapMessage, max_age: u32) {
    inner_response.set_option(CoapOption::uint(INNER_MAX_AGE, max_age));
}

/// Client side: check the (possibly proxy-modified) outer Max-Age
/// against the protected information.
///
/// * Under [`CachePolicy::EolTtls`], `inner_response` must carry the
///   [`INNER_MAX_AGE`] option (falls back to the outer value — i.e. no
///   protection — when the server did not provide one).
/// * Under [`CachePolicy::DohLike`], the payload TTLs themselves bound
///   the legitimate Max-Age.
pub fn check_max_age(
    policy: CachePolicy,
    inner_response: &CoapMessage,
    outer_max_age: u32,
) -> TtlCheck {
    let bound = match policy {
        CachePolicy::EolTtls => inner_response
            .option(INNER_MAX_AGE)
            .map(|o| o.as_uint())
            .unwrap_or(outer_max_age),
        CachePolicy::DohLike => Message::decode(&inner_response.payload)
            .ok()
            .and_then(|m| m.min_ttl())
            .unwrap_or(outer_max_age),
    };
    if outer_max_age > bound {
        TtlCheck::Inflated {
            outer: outer_max_age,
            bound,
        }
    } else {
        TtlCheck::Consistent {
            effective_max_age: outer_max_age,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use doc_coap::msg::{CoapMessage, Code, MsgType};
    use doc_dns::{Name, Rcode, Record, RecordType};

    fn response_with(payload_ttl: u32, inner_max_age: Option<u32>) -> CoapMessage {
        let name = Name::parse("example.org").unwrap();
        let q = Message::query(0, name.clone(), RecordType::Aaaa);
        let resp = Message::response(
            &q,
            Rcode::NoError,
            vec![Record::aaaa(
                name,
                payload_ttl,
                std::net::Ipv6Addr::LOCALHOST,
            )],
        );
        let mut msg = CoapMessage {
            mtype: MsgType::Ack,
            code: Code::CONTENT,
            message_id: 1,
            token: vec![1],
            options: vec![],
            payload: resp.encode(),
        };
        if let Some(ma) = inner_max_age {
            attach_protected_max_age(&mut msg, ma);
        }
        msg
    }

    /// EOL: a proxy-decremented Max-Age (smaller than the protected
    /// one) is consistent; an inflated one is rejected.
    #[test]
    fn eol_inner_max_age_bound() {
        let msg = response_with(0, Some(300));
        assert_eq!(
            check_max_age(CachePolicy::EolTtls, &msg, 120),
            TtlCheck::Consistent {
                effective_max_age: 120
            }
        );
        assert_eq!(
            check_max_age(CachePolicy::EolTtls, &msg, 300),
            TtlCheck::Consistent {
                effective_max_age: 300
            }
        );
        assert_eq!(
            check_max_age(CachePolicy::EolTtls, &msg, 301),
            TtlCheck::Inflated {
                outer: 301,
                bound: 300
            }
        );
    }

    /// DoH-like: the payload TTLs bound the outer Max-Age — no extra
    /// option needed (§7: "responses include the original TTLs, which
    /// can be used to perform consistency checks").
    #[test]
    fn doh_like_payload_ttl_bound() {
        let msg = response_with(250, None);
        assert_eq!(
            check_max_age(CachePolicy::DohLike, &msg, 250),
            TtlCheck::Consistent {
                effective_max_age: 250
            }
        );
        assert_eq!(
            check_max_age(CachePolicy::DohLike, &msg, 9999),
            TtlCheck::Inflated {
                outer: 9999,
                bound: 250
            }
        );
    }

    /// §7's residual weakness is preserved deliberately: *reduction* of
    /// TTLs by a proxy is not detectable (it only hurts caching, not
    /// correctness).
    #[test]
    fn reduction_is_allowed() {
        let msg = response_with(0, Some(300));
        assert!(matches!(
            check_max_age(CachePolicy::EolTtls, &msg, 1),
            TtlCheck::Consistent { .. }
        ));
    }

    /// Without a protected inner option, EOL degrades to no protection
    /// (outer value trusted) rather than rejecting everything.
    #[test]
    fn missing_inner_option_degrades_gracefully() {
        let msg = response_with(0, None);
        assert!(matches!(
            check_max_age(CachePolicy::EolTtls, &msg, 100_000),
            TtlCheck::Consistent { .. }
        ));
    }

    /// End-to-end with real OSCORE: the inner Max-Age survives
    /// protection, and an on-path attacker altering the *outer*
    /// Max-Age is caught.
    #[test]
    fn oscore_protected_inner_max_age() {
        use doc_oscore::context::SecurityContext;
        use doc_oscore::protect::OscoreEndpoint;
        let secret = b"0123456789abcdef";
        let mut client =
            OscoreEndpoint::new(SecurityContext::derive(secret, b"s", &[], &[1]), false);
        let mut server =
            OscoreEndpoint::new(SecurityContext::derive(secret, b"s", &[1], &[]), false);

        let req = CoapMessage::request(Code::FETCH, MsgType::Con, 1, vec![7])
            .with_payload(b"query".to_vec());
        let (outer_req, binding) = client.protect_request(&req).unwrap();
        let (inner_req, s_binding) = server.unprotect_request(&outer_req).unwrap();

        // Server: response with protected inner Max-Age 300.
        let mut resp = CoapMessage::ack_response(&inner_req, Code::CONTENT)
            .with_payload(response_with(0, None).payload);
        attach_protected_max_age(&mut resp, 300);
        let mut outer_resp = server
            .protect_response(&resp, &s_binding, &outer_req)
            .unwrap();

        // On-path attacker sets a bogus *outer* Max-Age of 1 year.
        outer_resp.set_option(CoapOption::uint(OptionNumber::MAX_AGE, 31_536_000));

        let inner_resp = client.unprotect_response(&outer_resp, &binding).unwrap();
        // The inner protected option is intact…
        assert_eq!(inner_resp.option(INNER_MAX_AGE).unwrap().as_uint(), 300);
        // …and the consistency check rejects the outer claim.
        assert_eq!(
            check_max_age(CachePolicy::EolTtls, &inner_resp, 31_536_000),
            TtlCheck::Inflated {
                outer: 31_536_000,
                bound: 300
            }
        );
    }
}
