//! `doc-sixlowpan` — IEEE 802.15.4 framing and 6LoWPAN adaptation
//! (RFC 4944 fragmentation, RFC 6282 IPHC/NHC header compression).
//!
//! This crate supplies the link-layer byte accounting behind the
//! paper's Fig. 6/Fig. 14 packet dissections and the fragmentation
//! behaviour the simulator (`doc-netsim`) models: an IEEE 802.15.4
//! frame carries at most 127 bytes; a UDP datagram whose compressed
//! form exceeds the remaining space is split into FRAG1/FRAGN
//! fragments, and the loss of any fragment loses the whole datagram —
//! the effect that groups the resolution-time CDFs of Fig. 7.
//!
//! Configuration matches the paper's §5.1 setup: stateless address
//! compression (addresses elided into link-layer addresses), traffic
//! class and flow label zero (fully elided), UDP checksum carried
//! inline.

pub mod frag;
pub mod frame;
pub mod iphc;

pub use frag::{FragmentHeader, Fragmenter, Reassembler};
pub use frame::MacHeader;
pub use iphc::CompressedIpUdp;

/// Maximum IEEE 802.15.4 PHY payload (the PDU the paper's Table 2b and
/// the red dashed line of Fig. 6 refer to).
pub const MAX_FRAME: usize = 127;

/// Errors produced by the adaptation layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SixloError {
    /// Frame or header truncated.
    Truncated,
    /// Unknown dispatch byte.
    BadDispatch,
    /// Fragment did not fit the reassembly state.
    BadFragment,
    /// Datagram exceeds the 11-bit datagram-size field.
    TooLarge,
}

impl core::fmt::Display for SixloError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SixloError::Truncated => write!(f, "truncated 6LoWPAN data"),
            SixloError::BadDispatch => write!(f, "unknown 6LoWPAN dispatch"),
            SixloError::BadFragment => write!(f, "fragment mismatch"),
            SixloError::TooLarge => write!(f, "datagram too large"),
        }
    }
}

impl std::error::Error for SixloError {}

/// Per-frame dissection entry: how one link-layer frame decomposes into
/// layers (the stacked bars of Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameDissection {
    /// Total frame bytes on air (≤ 127).
    pub total: usize,
    /// MAC header + FCS bytes.
    pub mac: usize,
    /// 6LoWPAN bytes (IPHC/NHC or fragment header, incl. compressed
    /// IP/UDP fields).
    pub sixlowpan: usize,
    /// Application payload bytes carried in this frame.
    pub payload: usize,
}

/// Plan how a UDP payload of `udp_payload_len` bytes is carried over
/// 802.15.4: returns one dissection per link-layer frame.
///
/// The first frame of a fragmented datagram carries FRAG1 (4 bytes) +
/// the compressed IP/UDP headers; subsequent frames carry FRAGN
/// (5 bytes). Fragment payload sizes are multiples of 8 bytes (RFC
/// 4944).
pub fn fragment_plan(udp_payload_len: usize) -> Vec<FrameDissection> {
    let mac = MacHeader::OVERHEAD;
    let iphc = CompressedIpUdp::HEADER_LEN;
    let unfragmented_total = mac + iphc + udp_payload_len;
    if unfragmented_total <= MAX_FRAME {
        return vec![FrameDissection {
            total: unfragmented_total,
            mac,
            sixlowpan: iphc,
            payload: udp_payload_len,
        }];
    }
    // Fragmented: FRAG1 carries IPHC + leading payload.
    let mut frames = Vec::new();
    let frag1_room = MAX_FRAME - mac - FragmentHeader::FRAG1_LEN - iphc;
    let frag1_payload = frag1_room & !7; // multiple of 8
    let first = frag1_payload.min(udp_payload_len);
    frames.push(FrameDissection {
        total: mac + FragmentHeader::FRAG1_LEN + iphc + first,
        mac,
        sixlowpan: FragmentHeader::FRAG1_LEN + iphc,
        payload: first,
    });
    let mut remaining = udp_payload_len - first;
    while remaining > 0 {
        let room = (MAX_FRAME - mac - FragmentHeader::FRAGN_LEN) & !7;
        let take = room.min(remaining);
        frames.push(FrameDissection {
            total: mac + FragmentHeader::FRAGN_LEN + take,
            mac,
            sixlowpan: FragmentHeader::FRAGN_LEN,
            payload: take,
        });
        remaining -= take;
    }
    frames
}

/// Number of 802.15.4 frames needed for a UDP payload.
pub fn fragment_count(udp_payload_len: usize) -> usize {
    fragment_plan(udp_payload_len).len()
}

/// Total bytes on air for a UDP payload (sum over fragments).
pub fn bytes_on_air(udp_payload_len: usize) -> usize {
    fragment_plan(udp_payload_len).iter().map(|f| f.total).sum()
}

/// The largest UDP payload that still fits a single frame — the
/// "fragmentation limit" line of Fig. 6.
pub fn single_frame_limit() -> usize {
    MAX_FRAME - MacHeader::OVERHEAD - CompressedIpUdp::HEADER_LEN
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_payload_single_frame() {
        let plan = fragment_plan(40);
        assert_eq!(plan.len(), 1);
        assert_eq!(plan[0].payload, 40);
        assert!(plan[0].total <= MAX_FRAME);
        assert_eq!(
            plan[0].total,
            MacHeader::OVERHEAD + CompressedIpUdp::HEADER_LEN + 40
        );
    }

    #[test]
    fn boundary_exactly_fits() {
        let limit = single_frame_limit();
        assert_eq!(fragment_count(limit), 1);
        assert_eq!(fragment_count(limit + 1), 2);
        let plan = fragment_plan(limit);
        assert_eq!(plan[0].total, MAX_FRAME);
    }

    #[test]
    fn fragments_cover_payload_exactly() {
        for len in [0usize, 1, 50, 95, 96, 97, 150, 200, 500, 1000] {
            let plan = fragment_plan(len);
            let covered: usize = plan.iter().map(|f| f.payload).sum();
            assert_eq!(covered, len, "payload {len}");
            for f in &plan {
                assert!(f.total <= MAX_FRAME, "frame of {} bytes", f.total);
                assert_eq!(f.total, f.mac + f.sixlowpan + f.payload);
            }
        }
    }

    #[test]
    fn intermediate_fragments_are_8_aligned() {
        let plan = fragment_plan(400);
        for f in &plan[..plan.len() - 1] {
            assert_eq!(f.payload % 8, 0);
        }
    }

    /// The paper's Fig. 6 fragmentation regimes: the UDP query (42 B)
    /// and A response (58 B) fit one frame, the AAAA response (70 B)
    /// and every DTLS/GET/CoAPS/OSCORE PDU fragment.
    #[test]
    fn paper_fig6_fragmentation_regimes() {
        let limit = single_frame_limit();
        assert_eq!(limit, 69, "single-frame UDP payload budget");
        assert_eq!(fragment_count(42), 1, "UDP query");
        assert_eq!(fragment_count(58), 1, "UDP A response");
        assert_eq!(fragment_count(70), 2, "UDP AAAA response fragments");
        assert_eq!(fragment_count(42 + 29), 2, "DTLS query fragments");
    }

    #[test]
    fn bytes_on_air_monotone() {
        let mut last = 0;
        for len in 0..400 {
            let b = bytes_on_air(len);
            assert!(b >= last);
            last = b;
        }
    }
}
