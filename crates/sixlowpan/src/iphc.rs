//! 6LoWPAN IPv6/UDP header compression (RFC 6282 IPHC + UDP NHC).
//!
//! The paper's §5.1 configuration deactivates *stateful* (context-
//! based) address compression and routes with RPL across multiple
//! hops, so the compressed header is:
//!
//! * **IPHC (2 bytes)**: dispatch `011` + TF=11 (traffic class and flow
//!   label elided — "we … set the traffic class and flow label IPv6
//!   header fields to 0, so they are elided"), NH=1 (next header
//!   compressed via NHC), HLIM=10 (hop limit 64), SAC=0/SAM=01 and
//!   DAC=0/DAM=01: global unicast addresses whose 64-bit IIDs are
//!   carried **inline** (16 bytes) because stateful compression is
//!   off and the prefixes are link-local-derived defaults.
//! * **RPL hop-by-hop option (8 bytes)**: RFC 6553 mandates the RPL
//!   Option in data-plane datagrams; as 6LoWPAN NHC extension header:
//!   NHC-EXT(1) + length(1) + option type/len(2) + flags/instance/
//!   sender-rank(4).
//! * **UDP NHC (7 bytes)**: `11110_C_PP` with P=00 (both ports carried
//!   as 16 bits — DNS/CoAP ports are outside the 0xF0Bx short range),
//!   C=0 (checksum carried): 1 + 2 + 2 + 2.
//!
//! Total: 33 bytes of compressed IP/RPL/UDP — which together with the
//! 25-byte MAC overhead leaves 69 bytes of single-frame UDP payload,
//! reproducing exactly the fragmentation regimes of Fig. 6 (UDP A
//! response fits, UDP AAAA response fragments, FETCH query fits, GET /
//! DTLS / CoAPS / OSCORE queries fragment).

// Binary literals in this module are grouped by IPHC/NHC bit-field
// boundary (e.g. `0b011_11_1_00` = dispatch/TF/NH/HLIM), not by nibble.
#![allow(clippy::unusual_byte_groupings)]

use crate::SixloError;

/// Compressed IPv6 + RPL-HbH + UDP header for the global-unicast,
/// stateless-compression case of the paper's testbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompressedIpUdp {
    /// Hop limit (compressed to a 2-bit code when 1/64/255).
    pub hop_limit: u8,
    /// Source interface identifier (carried inline, SAM=01).
    pub src_iid: u64,
    /// Destination interface identifier (carried inline, DAM=01).
    pub dst_iid: u64,
    /// RPL instance ID (RFC 6553 option).
    pub rpl_instance: u8,
    /// RPL sender rank (RFC 6553 option).
    pub sender_rank: u16,
    /// UDP source port.
    pub src_port: u16,
    /// UDP destination port.
    pub dst_port: u16,
    /// UDP checksum (carried inline; computed over the pseudo-header by
    /// the caller or zeroed in simulation).
    pub checksum: u16,
}

impl CompressedIpUdp {
    /// Compressed header length: IPHC(2) + IIDs(16) + RPL HbH(8) +
    /// UDP NHC(1) + ports(4) + cksum(2) = 33.
    pub const HEADER_LEN: usize = 33;

    /// Encode the compressed headers followed by `payload`.
    pub fn encode(&self, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::HEADER_LEN + payload.len());
        // IPHC byte 1: 011 TF=11 NH=1 HLIM (01=1, 10=64, 11=255).
        let hlim_bits = match self.hop_limit {
            1 => 0b01,
            64 => 0b10,
            255 => 0b11,
            // Inline hop limit not needed in these experiments; encode
            // 64 as the closest behaviour.
            _ => 0b10,
        };
        out.push(0b011_11_1_00 | hlim_bits);
        // IPHC byte 2: CID=0 SAC=0 SAM=01 M=0 DAC=0 DAM=01.
        out.push(0b0_0_01_0_0_01);
        out.extend_from_slice(&self.src_iid.to_be_bytes());
        out.extend_from_slice(&self.dst_iid.to_be_bytes());
        // RPL hop-by-hop extension header (RFC 6553) as NHC extension:
        // NHC-EXT 1110_000_1 (EID=0 HbH, NH=1 compressed next header).
        out.push(0b1110_0001);
        out.push(6); // header length: the option bytes below
        out.push(0x63); // RPL Option type
        out.push(4); // option data length
        out.push(0); // flags (O/R/F)
        out.push(self.rpl_instance);
        out.extend_from_slice(&self.sender_rank.to_be_bytes());
        // UDP NHC: 11110 C=0 P=00.
        out.push(0b11110_0_00);
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&self.checksum.to_be_bytes());
        out.extend_from_slice(payload);
        out
    }

    /// Decode compressed headers; returns (header, payload).
    pub fn decode(data: &[u8]) -> Result<(Self, &[u8]), SixloError> {
        if data.len() < Self::HEADER_LEN {
            return Err(SixloError::Truncated);
        }
        if data[0] >> 5 != 0b011 {
            return Err(SixloError::BadDispatch);
        }
        let hop_limit = match data[0] & 0b11 {
            0b01 => 1,
            0b10 => 64,
            0b11 => 255,
            _ => return Err(SixloError::BadDispatch), // inline unsupported
        };
        if data[1] != 0b0_0_01_0_0_01 {
            return Err(SixloError::BadDispatch);
        }
        let src_iid = u64::from_be_bytes(data[2..10].try_into().expect("8 bytes"));
        let dst_iid = u64::from_be_bytes(data[10..18].try_into().expect("8 bytes"));
        if data[18] != 0b1110_0001 || data[19] != 6 || data[20] != 0x63 || data[21] != 4 {
            return Err(SixloError::BadDispatch);
        }
        let rpl_instance = data[23];
        let sender_rank = u16::from_be_bytes([data[24], data[25]]);
        if data[26] != 0b11110_0_00 {
            return Err(SixloError::BadDispatch);
        }
        let src_port = u16::from_be_bytes([data[27], data[28]]);
        let dst_port = u16::from_be_bytes([data[29], data[30]]);
        let checksum = u16::from_be_bytes([data[31], data[32]]);
        Ok((
            CompressedIpUdp {
                hop_limit,
                src_iid,
                dst_iid,
                rpl_instance,
                sender_rank,
                src_port,
                dst_port,
                checksum,
            },
            &data[Self::HEADER_LEN..],
        ))
    }

    /// Savings versus the uncompressed IPv6 (40) + HbH w/ RPL option
    /// (8) + UDP (8) headers.
    pub fn savings() -> usize {
        40 + 8 + 8 - Self::HEADER_LEN
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let h = CompressedIpUdp {
            hop_limit: 64,
            src_iid: 0x0123456789ABCDEF,
            dst_iid: 0xFEDCBA9876543210,
            rpl_instance: 0,
            sender_rank: 256,
            src_port: 5683,
            dst_port: 53,
            checksum: 0xBEEF,
        };
        let wire = h.encode(b"dns payload");
        assert_eq!(wire.len(), CompressedIpUdp::HEADER_LEN + 11);
        let (back, payload) = CompressedIpUdp::decode(&wire).unwrap();
        assert_eq!(back, h);
        assert_eq!(payload, b"dns payload");
    }

    #[test]
    fn hop_limit_codes() {
        for hl in [1u8, 64, 255] {
            let h = CompressedIpUdp {
                hop_limit: hl,
                src_iid: 1,
                dst_iid: 2,
                rpl_instance: 0,
                sender_rank: 0,
                src_port: 1,
                dst_port: 2,
                checksum: 0,
            };
            let (back, _) = CompressedIpUdp::decode(&h.encode(&[])).unwrap();
            assert_eq!(back.hop_limit, hl);
        }
    }

    #[test]
    fn compression_saves_23_bytes() {
        // 56 uncompressed -> 33 compressed.
        assert_eq!(CompressedIpUdp::savings(), 23);
    }

    #[test]
    fn reject_bad_dispatch() {
        let h = CompressedIpUdp {
            hop_limit: 64,
            src_iid: 1,
            dst_iid: 2,
            rpl_instance: 0,
            sender_rank: 0,
            src_port: 1,
            dst_port: 2,
            checksum: 0,
        };
        let mut wire = h.encode(&[]);
        wire[0] = 0x41; // ESC-like dispatch
        assert_eq!(CompressedIpUdp::decode(&wire), Err(SixloError::BadDispatch));
    }

    #[test]
    fn reject_truncated() {
        assert_eq!(
            CompressedIpUdp::decode(&[0x7A, 0x33]),
            Err(SixloError::Truncated)
        );
    }
}
