//! IEEE 802.15.4 data-frame codec (simplified to the fields the
//! experiments need).
//!
//! The frame layout matches RIOT's configuration on the FIT IoT-LAB
//! M3 nodes: 2.4 GHz O-QPSK PHY, data frames with 16-bit PAN IDs and
//! 64-bit extended (EUI-64) addresses:
//!
//! ```text
//! FCF(2) | Seq(1) | Dst PAN(2) | Dst(8) | Src PAN(2) | Src(8) | payload … | FCS(2)
//! ```

use crate::SixloError;

/// 64-bit extended (EUI-64) link-layer address.
pub type LongAddr = u64;

/// Decoded MAC header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MacHeader {
    /// Sequence number.
    pub seq: u8,
    /// Destination PAN identifier.
    pub pan_id: u16,
    /// Destination address.
    pub dst: LongAddr,
    /// Source address.
    pub src: LongAddr,
}

impl MacHeader {
    /// Header bytes: FCF 2 + Seq 1 + DstPAN 2 + Dst 8 + SrcPAN 2 +
    /// Src 8.
    pub const HEADER_LEN: usize = 23;
    /// Trailing frame check sequence.
    pub const FCS_LEN: usize = 2;
    /// Total non-payload bytes per frame.
    pub const OVERHEAD: usize = Self::HEADER_LEN + Self::FCS_LEN;

    /// Frame Control Field for a data frame, long addresses, no PAN-ID
    /// compression, ACK requested (the paper's radios "automatically
    /// handle link layer retransmissions and acknowledgments").
    /// Bits: type=001 (data), AR=1, dst-mode=11 (long), version=01,
    /// src-mode=11 (long).
    const FCF: [u8; 2] = [0x21, 0xDC];

    /// Encode header + payload + (zeroed placeholder) FCS.
    pub fn encode_frame(&self, payload: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::OVERHEAD + payload.len());
        out.extend_from_slice(&Self::FCF);
        out.push(self.seq);
        out.extend_from_slice(&self.pan_id.to_le_bytes());
        out.extend_from_slice(&self.dst.to_le_bytes());
        out.extend_from_slice(&self.pan_id.to_le_bytes()); // src PAN
        out.extend_from_slice(&self.src.to_le_bytes());
        out.extend_from_slice(payload);
        // FCS (CRC-16) — the simulator treats corruption explicitly, so
        // a CRC over the bytes is computed for realism.
        let crc = crc16(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decode a frame into (header, payload); verifies the FCS.
    pub fn decode_frame(frame: &[u8]) -> Result<(Self, &[u8]), SixloError> {
        if frame.len() < Self::OVERHEAD {
            return Err(SixloError::Truncated);
        }
        let body_len = frame.len() - Self::FCS_LEN;
        let (body, fcs) = frame.split_at(body_len);
        let expect = crc16(body);
        let got = u16::from_le_bytes([fcs[0], fcs[1]]);
        if expect != got {
            return Err(SixloError::BadFragment);
        }
        if body[0..2] != Self::FCF {
            return Err(SixloError::BadDispatch);
        }
        let seq = body[2];
        let pan_id = u16::from_le_bytes([body[3], body[4]]);
        let dst = LongAddr::from_le_bytes(body[5..13].try_into().expect("8 bytes"));
        // body[13..15] is the source PAN (same PAN in these setups).
        let src = LongAddr::from_le_bytes(body[15..23].try_into().expect("8 bytes"));
        Ok((
            MacHeader {
                seq,
                pan_id,
                dst,
                src,
            },
            &body[Self::HEADER_LEN..],
        ))
    }

    /// Maximum payload bytes one frame can carry.
    pub fn max_payload() -> usize {
        crate::MAX_FRAME - Self::OVERHEAD
    }
}

/// CRC-16/CCITT (the 802.15.4 FCS polynomial 0x1021, LSB-first variant
/// "KERMIT" as used by the standard).
pub fn crc16(data: &[u8]) -> u16 {
    let mut crc: u16 = 0x0000;
    for &b in data {
        crc ^= b as u16;
        for _ in 0..8 {
            if crc & 1 != 0 {
                crc = (crc >> 1) ^ 0x8408;
            } else {
                crc >>= 1;
            }
        }
    }
    crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip() {
        let hdr = MacHeader {
            seq: 42,
            pan_id: 0x23,
            dst: 0x1122334455667788,
            src: 0x8877665544332211,
        };
        let payload = b"compressed ipv6 here";
        let frame = hdr.encode_frame(payload);
        assert_eq!(frame.len(), MacHeader::OVERHEAD + payload.len());
        let (back, p) = MacHeader::decode_frame(&frame).unwrap();
        assert_eq!(back, hdr);
        assert_eq!(p, payload);
    }

    #[test]
    fn fcs_detects_corruption() {
        let hdr = MacHeader {
            seq: 1,
            pan_id: 1,
            dst: 2,
            src: 3,
        };
        let mut frame = hdr.encode_frame(b"data");
        frame[10] ^= 0x01;
        assert_eq!(
            MacHeader::decode_frame(&frame),
            Err(SixloError::BadFragment)
        );
    }

    #[test]
    fn reject_truncated() {
        assert_eq!(
            MacHeader::decode_frame(&[0u8; 10]),
            Err(SixloError::Truncated)
        );
    }

    #[test]
    fn max_payload_is_102() {
        // 127 - 25 bytes of overhead.
        assert_eq!(MacHeader::max_payload(), 102);
    }

    #[test]
    fn crc16_kermit_vector() {
        // Known KERMIT check value for "123456789" is 0x2189.
        assert_eq!(crc16(b"123456789"), 0x2189);
    }

    #[test]
    fn empty_payload_frame() {
        let hdr = MacHeader {
            seq: 0,
            pan_id: 0,
            dst: 0,
            src: 0,
        };
        let frame = hdr.encode_frame(&[]);
        let (back, p) = MacHeader::decode_frame(&frame).unwrap();
        assert_eq!(back, hdr);
        assert!(p.is_empty());
    }
}
