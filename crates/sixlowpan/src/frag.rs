//! 6LoWPAN fragmentation (RFC 4944 §5.3).
//!
//! FRAG1: `11000dddddddddd (size 11 bits) || tag(16)` — 4 bytes.
//! FRAGN: FRAG1 fields + `offset(8)` (in 8-octet units) — 5 bytes.
//!
//! The paper leans on this mechanism twice: 6LoWPAN fragmentation
//! *causes* the resolution-time groups of Fig. 7 (lose one fragment →
//! retransmit the whole datagram after CoAP timeout), and CoAP
//! block-wise transfer (Fig. 14/15) exists precisely to avoid it.

use crate::SixloError;

/// A fragment header (FRAG1 when `offset == 0` on first fragment).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FragmentHeader {
    /// Total size of the unfragmented datagram (11 bits).
    pub datagram_size: u16,
    /// Datagram tag, shared by all fragments.
    pub tag: u16,
    /// Offset of this fragment in 8-octet units (0 for FRAG1).
    pub offset_units: u8,
    /// Whether this is a FRAG1 (first) header.
    pub is_first: bool,
}

impl FragmentHeader {
    /// FRAG1 header length.
    pub const FRAG1_LEN: usize = 4;
    /// FRAGN header length.
    pub const FRAGN_LEN: usize = 5;

    /// Encode, appending to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        let dispatch: u16 = if self.is_first { 0b11000 } else { 0b11100 };
        let word = (dispatch << 11) | (self.datagram_size & 0x07FF);
        out.extend_from_slice(&word.to_be_bytes());
        out.extend_from_slice(&self.tag.to_be_bytes());
        if !self.is_first {
            out.push(self.offset_units);
        }
    }

    /// Decode from the front of `data`; returns (header, header_len).
    pub fn decode(data: &[u8]) -> Result<(Self, usize), SixloError> {
        if data.len() < Self::FRAG1_LEN {
            return Err(SixloError::Truncated);
        }
        let word = u16::from_be_bytes([data[0], data[1]]);
        let dispatch = word >> 11;
        let datagram_size = word & 0x07FF;
        let tag = u16::from_be_bytes([data[2], data[3]]);
        match dispatch {
            0b11000 => Ok((
                FragmentHeader {
                    datagram_size,
                    tag,
                    offset_units: 0,
                    is_first: true,
                },
                Self::FRAG1_LEN,
            )),
            0b11100 => {
                let offset = *data.get(4).ok_or(SixloError::Truncated)?;
                Ok((
                    FragmentHeader {
                        datagram_size,
                        tag,
                        offset_units: offset,
                        is_first: false,
                    },
                    Self::FRAGN_LEN,
                ))
            }
            _ => Err(SixloError::BadDispatch),
        }
    }
}

/// Splits a (compressed) datagram into link-layer fragment payloads.
pub struct Fragmenter {
    next_tag: u16,
}

impl Default for Fragmenter {
    fn default() -> Self {
        Self::new()
    }
}

impl Fragmenter {
    /// New fragmenter with tag counter at 0.
    pub fn new() -> Self {
        Fragmenter { next_tag: 0 }
    }

    /// Fragment `datagram` (already 6LoWPAN-compressed bytes) into MAC
    /// payloads of at most `mtu` bytes each. Returns the raw fragment
    /// payloads (header + slice). A datagram that fits `mtu` is
    /// returned unfragmented (no fragment header).
    pub fn fragment(&mut self, datagram: &[u8], mtu: usize) -> Result<Vec<Vec<u8>>, SixloError> {
        if datagram.len() <= mtu {
            return Ok(vec![datagram.to_vec()]);
        }
        if datagram.len() > 0x07FF {
            return Err(SixloError::TooLarge);
        }
        let tag = self.next_tag;
        self.next_tag = self.next_tag.wrapping_add(1);
        let size = datagram.len() as u16;
        let mut frames = Vec::new();
        // FRAG1.
        let first_room = (mtu - FragmentHeader::FRAG1_LEN) & !7;
        let mut hdr = Vec::new();
        FragmentHeader {
            datagram_size: size,
            tag,
            offset_units: 0,
            is_first: true,
        }
        .encode(&mut hdr);
        hdr.extend_from_slice(&datagram[..first_room]);
        frames.push(hdr);
        // FRAGN.
        let mut sent = first_room;
        while sent < datagram.len() {
            let room = (mtu - FragmentHeader::FRAGN_LEN) & !7;
            let take = room.min(datagram.len() - sent);
            let mut f = Vec::new();
            FragmentHeader {
                datagram_size: size,
                tag,
                offset_units: (sent / 8) as u8,
                is_first: false,
            }
            .encode(&mut f);
            f.extend_from_slice(&datagram[sent..sent + take]);
            frames.push(f);
            sent += take;
        }
        Ok(frames)
    }
}

/// Reassembles fragments back into datagrams (single-datagram state per
/// (tag), mirroring `REASSEMBLY_BUFFER_COUNT = 1` of RIOT's defaults).
#[derive(Default)]
pub struct Reassembler {
    current: Option<Pending>,
    /// Completed-datagram counter (for stats).
    pub completed: u32,
    /// Dropped/aborted reassembly counter.
    pub dropped: u32,
}

struct Pending {
    tag: u16,
    size: usize,
    buf: Vec<u8>,
    received: Vec<(usize, usize)>, // (offset, len)
}

impl Reassembler {
    /// New, empty reassembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed one MAC payload. Returns a complete datagram when finished.
    /// Payloads without a fragment dispatch are returned immediately.
    ///
    /// Datagram payloads are expected to start with a non-fragment
    /// 6LoWPAN dispatch (e.g. IPHC `0b011…`), as every real 6LoWPAN
    /// datagram does; an unfragmented payload whose first byte fell in
    /// the FRAG1/FRAGN dispatch space would be misparsed (such values
    /// are reserved precisely to avoid this).
    pub fn push(&mut self, payload: &[u8]) -> Result<Option<Vec<u8>>, SixloError> {
        // Fragment dispatches start 0b11000/0b11100.
        let is_frag = !payload.is_empty() && (payload[0] >> 3) >= 0b11000;
        if !is_frag {
            return Ok(Some(payload.to_vec()));
        }
        let (hdr, hlen) = FragmentHeader::decode(payload)?;
        let data = &payload[hlen..];
        let offset = hdr.offset_units as usize * 8;
        if offset + data.len() > hdr.datagram_size as usize {
            return Err(SixloError::BadFragment);
        }
        let pending = match &mut self.current {
            Some(p) if p.tag == hdr.tag && p.size == hdr.datagram_size as usize => p,
            Some(_) => {
                // A different datagram interleaved: RIOT's single
                // reassembly buffer drops the old one.
                self.dropped += 1;
                self.current = Some(Pending {
                    tag: hdr.tag,
                    size: hdr.datagram_size as usize,
                    buf: vec![0; hdr.datagram_size as usize],
                    received: Vec::new(),
                });
                self.current.as_mut().expect("just set")
            }
            None => {
                self.current = Some(Pending {
                    tag: hdr.tag,
                    size: hdr.datagram_size as usize,
                    buf: vec![0; hdr.datagram_size as usize],
                    received: Vec::new(),
                });
                self.current.as_mut().expect("just set")
            }
        };
        // Duplicate fragment?
        if pending.received.iter().any(|&(o, _)| o == offset) {
            return Ok(None);
        }
        pending.buf[offset..offset + data.len()].copy_from_slice(data);
        pending.received.push((offset, data.len()));
        let covered: usize = pending.received.iter().map(|&(_, l)| l).sum();
        if covered == pending.size {
            let done = self.current.take().expect("pending present");
            self.completed += 1;
            return Ok(Some(done.buf));
        }
        Ok(None)
    }

    /// Abort any in-progress reassembly (timeout path).
    pub fn flush(&mut self) {
        if self.current.take().is_some() {
            self.dropped += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let frag1 = FragmentHeader {
            datagram_size: 300,
            tag: 7,
            offset_units: 0,
            is_first: true,
        };
        let mut wire = Vec::new();
        frag1.encode(&mut wire);
        assert_eq!(wire.len(), FragmentHeader::FRAG1_LEN);
        let (back, len) = FragmentHeader::decode(&wire).unwrap();
        assert_eq!(back, frag1);
        assert_eq!(len, 4);

        let fragn = FragmentHeader {
            datagram_size: 300,
            tag: 7,
            offset_units: 12,
            is_first: false,
        };
        let mut wire = Vec::new();
        fragn.encode(&mut wire);
        assert_eq!(wire.len(), FragmentHeader::FRAGN_LEN);
        let (back, len) = FragmentHeader::decode(&wire).unwrap();
        assert_eq!(back, fragn);
        assert_eq!(len, 5);
    }

    #[test]
    fn fragment_and_reassemble() {
        let mut fragger = Fragmenter::new();
        let datagram: Vec<u8> = (0..300u16).map(|i| i as u8).collect();
        let frames = fragger.fragment(&datagram, 104).unwrap();
        assert!(frames.len() >= 3);
        let mut reasm = Reassembler::new();
        let mut result = None;
        for f in &frames {
            if let Some(d) = reasm.push(f).unwrap() {
                result = Some(d);
            }
        }
        assert_eq!(result.unwrap(), datagram);
        assert_eq!(reasm.completed, 1);
    }

    #[test]
    fn out_of_order_reassembly() {
        let mut fragger = Fragmenter::new();
        let datagram = vec![0xA5u8; 250];
        let mut frames = fragger.fragment(&datagram, 104).unwrap();
        frames.reverse();
        let mut reasm = Reassembler::new();
        let mut result = None;
        for f in &frames {
            if let Some(d) = reasm.push(f).unwrap() {
                result = Some(d);
            }
        }
        assert_eq!(result.unwrap(), datagram);
    }

    #[test]
    fn small_datagram_passthrough() {
        let mut fragger = Fragmenter::new();
        let d = vec![1u8; 50];
        let frames = fragger.fragment(&d, 104).unwrap();
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0], d);
        let mut reasm = Reassembler::new();
        assert_eq!(reasm.push(&frames[0]).unwrap().unwrap(), d);
    }

    #[test]
    fn duplicate_fragment_ignored() {
        let mut fragger = Fragmenter::new();
        let d = vec![9u8; 250];
        let frames = fragger.fragment(&d, 104).unwrap();
        let mut reasm = Reassembler::new();
        assert!(reasm.push(&frames[0]).unwrap().is_none());
        assert!(reasm.push(&frames[0]).unwrap().is_none()); // dup
        for f in &frames[1..] {
            let _ = reasm.push(f).unwrap();
        }
        assert_eq!(reasm.completed, 1);
    }

    #[test]
    fn interleaved_datagram_drops_first() {
        let mut fragger = Fragmenter::new();
        let d1 = vec![1u8; 250];
        let d2 = vec![2u8; 250];
        let f1 = fragger.fragment(&d1, 104).unwrap();
        let f2 = fragger.fragment(&d2, 104).unwrap();
        let mut reasm = Reassembler::new();
        assert!(reasm.push(&f1[0]).unwrap().is_none());
        // A fragment of a different datagram arrives: buffer switches.
        assert!(reasm.push(&f2[0]).unwrap().is_none());
        assert_eq!(reasm.dropped, 1);
        let mut done = None;
        for f in &f2[1..] {
            if let Some(d) = reasm.push(f).unwrap() {
                done = Some(d);
            }
        }
        assert_eq!(done.unwrap(), d2);
    }

    #[test]
    fn oversized_datagram_rejected() {
        let mut fragger = Fragmenter::new();
        let d = vec![0u8; 3000];
        assert_eq!(fragger.fragment(&d, 104), Err(SixloError::TooLarge));
    }

    #[test]
    fn bogus_fragment_rejected() {
        let mut reasm = Reassembler::new();
        // FRAGN claiming data beyond datagram_size.
        let hdr = FragmentHeader {
            datagram_size: 16,
            tag: 0,
            offset_units: 2,
            is_first: false,
        };
        let mut wire = Vec::new();
        hdr.encode(&mut wire);
        wire.extend_from_slice(&[0u8; 8]);
        assert_eq!(reasm.push(&wire), Err(SixloError::BadFragment));
    }

    #[test]
    fn flush_drops_pending() {
        let mut fragger = Fragmenter::new();
        let d = vec![3u8; 250];
        let frames = fragger.fragment(&d, 104).unwrap();
        let mut reasm = Reassembler::new();
        reasm.push(&frames[0]).unwrap();
        reasm.flush();
        assert_eq!(reasm.dropped, 1);
        // Remaining fragments no longer complete anything.
        let mut done = false;
        for f in &frames[1..] {
            if reasm.push(f).unwrap().is_some() {
                done = true;
            }
        }
        assert!(!done);
    }
}
