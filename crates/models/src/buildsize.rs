//! Build-size cost model (Fig. 5 / Fig. 8).
//!
//! The paper measures RIOT firmware images on a Cortex-M3 (§5.2,
//! Appendix C): per-module `.text`+`.data` (ROM) and `.data`+`.bss`
//! (RAM), grouped into sock / CoAP / DTLS / OSCORE / DNS / Application
//! / CoAP-example-app. We encode those groups as a cost table
//! calibrated to the published numbers and derive every configuration
//! from it. The §5.2 claims are invariants of this model and are
//! asserted in the tests:
//!
//! * encrypted transports add ≈24 kB (DTLS) / ≈11 kB (OSCORE) of ROM;
//! * the DTLS part is more than double the OSCORE part;
//! * GET support adds ≈2 kB ROM (≈1 kB of it the URI-template
//!   processor) and 173 B RAM;
//! * the DoC DNS part (≈4 kB) exceeds the other DNS implementations;
//! * with a CoAP app already present, OSCORE is the cheapest encrypted
//!   transport (the abstract's ">10 kBytes saved vs DTLS");
//! * QUIC (Quant + TLS) needs nearly double the ROM of any IoT
//!   transport (Fig. 8) and stays bigger even after the ≈20 kB of
//!   optimizations proposed in the Quant paper.

use doc_core::transport::TransportKind;

/// A firmware module group (the stacked segments of Fig. 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Module {
    /// `sock` API incl. the TinyDTLS sock adapter when DTLS is used.
    Sock,
    /// gCoAP + CoAP message handling + URI parsing.
    Coap,
    /// TinyDTLS.
    Dtls,
    /// libOSCORE incl. dependencies.
    Oscore,
    /// DNS-over-X message handling (without GET support).
    Dns,
    /// Extra DNS code for the GET method (incl. URI-template
    /// processor).
    DnsGetOverhead,
    /// The DNS requester application.
    Application,
    /// The standard RIOT gCoAP example app (server+client).
    CoapExampleApp,
}

impl Module {
    /// Fig. 5 legend label.
    pub fn name(self) -> &'static str {
        match self {
            Module::Sock => "sock",
            Module::Coap => "CoAP",
            Module::Dtls => "DTLS",
            Module::Oscore => "OSCORE",
            Module::Dns => "DNS (w/o GET)",
            Module::DnsGetOverhead => "DNS (GET overhead)",
            Module::Application => "Application",
            Module::CoapExampleApp => "CoAP example app",
        }
    }

    /// (ROM bytes, RAM bytes) for this module — calibrated to §5.2.
    pub fn cost(self) -> (usize, usize) {
        match self {
            Module::Sock => (2_600, 900),
            Module::Coap => (12_500, 4_200),
            Module::Dtls => (24_000, 1_500),
            Module::Oscore => (11_000, 700),
            Module::Dns => (1_900, 550),
            Module::DnsGetOverhead => (2_000, 173),
            Module::Application => (3_200, 3_800),
            Module::CoapExampleApp => (7_800, 2_600),
        }
    }

    /// Extra ROM the DoC (CoAP-based) DNS implementation adds over the
    /// plain DNS message handling: "the comparably young DNS part for
    /// DoC … is with around 4 kBytes significantly larger than the
    /// other DNS transport implementations".
    pub const DOC_DNS_EXTRA_ROM: usize = 2_100;
}

/// One configuration's build decomposition.
#[derive(Debug, Clone)]
pub struct BuildProfile {
    /// The transport.
    pub transport: TransportKind,
    /// Whether GET support is compiled in.
    pub with_get: bool,
    /// (module, rom, ram) rows in stacking order.
    pub rows: Vec<(Module, usize, usize)>,
}

impl BuildProfile {
    /// Total ROM bytes.
    pub fn rom(&self) -> usize {
        self.rows.iter().map(|r| r.1).sum()
    }
    /// Total RAM bytes.
    pub fn ram(&self) -> usize {
        self.rows.iter().map(|r| r.2).sum()
    }
    /// ROM of one module group (0 if absent).
    pub fn module_rom(&self, m: Module) -> usize {
        self.rows.iter().filter(|r| r.0 == m).map(|r| r.1).sum()
    }
}

/// Alias matching the figure terminology.
pub type TransportBuild = BuildProfile;

/// Build the Fig. 5 profile for a transport (always includes the CoAP
/// example app, as the figure does).
pub fn build_profile(transport: TransportKind, with_get: bool) -> BuildProfile {
    let mut rows: Vec<(Module, usize, usize)> = Vec::new();
    fn push(rows: &mut Vec<(Module, usize, usize)>, m: Module) {
        let (rom, ram) = m.cost();
        rows.push((m, rom, ram));
    }
    push(&mut rows, Module::Sock);
    push(&mut rows, Module::Coap); // the example app brings gCoAP in
    match transport {
        TransportKind::Udp | TransportKind::Coap => {}
        TransportKind::Dtls | TransportKind::Coaps => push(&mut rows, Module::Dtls),
        TransportKind::Oscore => push(&mut rows, Module::Oscore),
        // The stream transports are not part of Fig. 5; their build
        // cost is approximated by the DTLS crypto substrate they share
        // (AES-CCM record protection) so the profile stays total.
        TransportKind::Quic | TransportKind::DohLite | TransportKind::Dot => {
            push(&mut rows, Module::Dtls)
        }
    }
    // DNS message handling.
    let (dns_rom, dns_ram) = Module::Dns.cost();
    let dns_rom = if transport.coap_based() {
        dns_rom + Module::DOC_DNS_EXTRA_ROM
    } else {
        dns_rom
    };
    rows.push((Module::Dns, dns_rom, dns_ram));
    if with_get && transport.coap_based() {
        push(&mut rows, Module::DnsGetOverhead);
    }
    push(&mut rows, Module::Application);
    push(&mut rows, Module::CoapExampleApp);
    BuildProfile {
        transport,
        with_get,
        rows,
    }
}

/// Fig. 8 categories for the UDP-based comparison with QUIC (the paper
/// intentionally omits the UDP layer and the sock part).
#[derive(Debug, Clone)]
pub struct Fig8Profile {
    /// Bar label.
    pub label: &'static str,
    /// "DNS Transport (w/o UDP & Crypto)" ROM bytes.
    pub transport_rom: usize,
    /// "Crypto (DTLS / TLS / OSCORE)" ROM bytes.
    pub crypto_rom: usize,
    /// "Application" ROM bytes.
    pub application_rom: usize,
}

impl Fig8Profile {
    /// Total ROM.
    pub fn total(&self) -> usize {
        self.transport_rom + self.crypto_rom + self.application_rom
    }
}

/// Quant's published sizes (Eggert, DISS 2020, the paper's ref. 19):
/// the QUIC transport
/// itself plus its TLS stack, each in the high-30-kB range, with ≈20 kB
/// of proposed (but unrealized) optimizations per that reference.
pub const QUANT_QUIC_ROM: usize = 38_000;
/// TLS part of Quant.
pub const QUANT_TLS_ROM: usize = 36_000;
/// Optimization headroom claimed in the Quant paper.
pub const QUANT_OPTIMIZATION_SAVINGS: usize = 20_000;

/// The six bars of Fig. 8.
pub fn fig8_profiles() -> Vec<Fig8Profile> {
    let app = Module::Application.cost().0;
    let dns = Module::Dns.cost().0;
    let coap = Module::Coap.cost().0 + dns + Module::DOC_DNS_EXTRA_ROM;
    vec![
        Fig8Profile {
            label: "UDP",
            transport_rom: dns,
            crypto_rom: 0,
            application_rom: app,
        },
        Fig8Profile {
            label: "DTLSv1.2",
            transport_rom: dns,
            crypto_rom: Module::Dtls.cost().0,
            application_rom: app,
        },
        Fig8Profile {
            label: "CoAP",
            transport_rom: coap,
            crypto_rom: 0,
            application_rom: app,
        },
        Fig8Profile {
            label: "CoAPSv1.2",
            transport_rom: coap,
            crypto_rom: Module::Dtls.cost().0,
            application_rom: app,
        },
        Fig8Profile {
            label: "OSCORE",
            transport_rom: coap,
            crypto_rom: Module::Oscore.cost().0,
            application_rom: app,
        },
        Fig8Profile {
            label: "QUIC",
            transport_rom: QUANT_QUIC_ROM,
            crypto_rom: QUANT_TLS_ROM,
            application_rom: app,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// §5.2: "The encrypted transports add a considerable amount of
    /// ROM—about 24 kBytes in the case of DTLS and about 11 kBytes in
    /// the case of OSCORE—and in the case of DTLS also about 1.5
    /// kBytes of RAM."
    #[test]
    fn encryption_rom_deltas() {
        let coap = build_profile(TransportKind::Coap, false);
        let coaps = build_profile(TransportKind::Coaps, false);
        let oscore = build_profile(TransportKind::Oscore, false);
        let dtls_delta = coaps.rom() - coap.rom();
        let oscore_delta = oscore.rom() - coap.rom();
        assert!((23_000..=25_000).contains(&dtls_delta), "{dtls_delta}");
        assert!((10_000..=12_000).contains(&oscore_delta), "{oscore_delta}");
        assert_eq!(coaps.ram() - coap.ram(), 1_500);
    }

    /// §5.2: "the DTLS part of the firmware expects more than double
    /// the memory space of the OSCORE part".
    #[test]
    fn dtls_more_than_double_oscore() {
        assert!(Module::Dtls.cost().0 > 2 * Module::Oscore.cost().0);
    }

    /// §5.2: "GET support adds about 2 kBytes of ROM and 173 bytes of
    /// RAM … About 1 kByte of this ROM contributes the URI template
    /// processor."
    #[test]
    fn get_overhead() {
        let without = build_profile(TransportKind::Coap, false);
        let with = build_profile(TransportKind::Coap, true);
        assert_eq!(with.rom() - without.rom(), 2_000);
        assert_eq!(with.ram() - without.ram(), 173);
        // GET does not apply to non-CoAP transports.
        let udp = build_profile(TransportKind::Udp, true);
        assert_eq!(udp.module_rom(Module::DnsGetOverhead), 0);
    }

    /// Abstract: "With OSCORE, we can save more than 10 kBytes of code
    /// memory compared to DTLS, when a CoAP application is already
    /// present."
    #[test]
    fn oscore_saves_over_10k_vs_dtls() {
        let coaps = build_profile(TransportKind::Coaps, false);
        let oscore = build_profile(TransportKind::Oscore, false);
        assert!(coaps.rom() - oscore.rom() > 10_000);
    }

    /// §5.2: "for unencrypted transport, UDP remains the clear choice
    /// … For encrypted DNS communication, DTLS is the most efficient
    /// transport solution, with OSCORE being a close second" (without a
    /// pre-existing CoAP app, DoDTLS avoids the DoC DNS extra code).
    #[test]
    fn udp_smallest_overall() {
        let udp = build_profile(TransportKind::Udp, false);
        for t in [
            TransportKind::Dtls,
            TransportKind::Coap,
            TransportKind::Coaps,
            TransportKind::Oscore,
        ] {
            assert!(udp.rom() < build_profile(t, false).rom(), "{t:?}");
            assert!(udp.ram() <= build_profile(t, false).ram(), "{t:?}");
        }
    }

    /// §5.2: the DoC DNS part is ≈4 kB, "significantly larger than the
    /// other DNS transport implementations".
    #[test]
    fn doc_dns_part_is_4k() {
        let doc = build_profile(TransportKind::Coap, false);
        let udp = build_profile(TransportKind::Udp, false);
        assert_eq!(doc.module_rom(Module::Dns), 4_000);
        assert!(doc.module_rom(Module::Dns) > 2 * udp.module_rom(Module::Dns));
    }

    /// Fig. 5 bars stay within the figure's 0–60 kB axis.
    #[test]
    fn totals_within_figure_axis() {
        for t in [
            TransportKind::Udp,
            TransportKind::Dtls,
            TransportKind::Coap,
            TransportKind::Coaps,
            TransportKind::Oscore,
        ] {
            let p = build_profile(t, true);
            assert!(p.rom() < 60_000, "{t:?} ROM {}", p.rom());
            assert!(p.ram() < 60_000, "{t:?} RAM {}", p.ram());
            assert!(p.rom() > 25_000, "{t:?} ROM {} too small", p.rom());
        }
    }

    /// §5.5/Fig. 8: "QUIC, including TLS, uses nearly double the ROM as
    /// any of the common IoT transports" and stays bigger than DNS over
    /// CoAP even after the proposed ≈20 kB optimization.
    #[test]
    fn quic_nearly_double() {
        let profiles = fig8_profiles();
        let quic = profiles
            .iter()
            .find(|p| p.label == "QUIC")
            .expect("QUIC bar");
        for p in &profiles {
            if p.label != "QUIC" {
                assert!(
                    quic.total() as f64 >= 1.7 * p.total() as f64,
                    "QUIC {} vs {} {}",
                    quic.total(),
                    p.label,
                    p.total()
                );
            }
        }
        let coap = profiles
            .iter()
            .find(|p| p.label == "CoAP")
            .expect("CoAP bar");
        assert!(quic.total() - QUANT_OPTIMIZATION_SAVINGS > coap.total());
        // CoAPS (full CoAP client+server+DTLS) still under QUIC
        // (client-only), as the paper stresses.
        let coaps = profiles
            .iter()
            .find(|p| p.label == "CoAPSv1.2")
            .expect("bar");
        assert!(quic.total() > coaps.total());
    }

    #[test]
    fn profile_row_accounting() {
        let p = build_profile(TransportKind::Oscore, true);
        let rom_sum: usize = p.rows.iter().map(|r| r.1).sum();
        assert_eq!(rom_sum, p.rom());
        assert!(p.module_rom(Module::Oscore) == 11_000);
        assert!(p.module_rom(Module::Dtls) == 0);
    }
}
