//! DNS-over-QUIC packet-size model (§5.5 / Fig. 9).
//!
//! QUIC headers vary: 0-RTT packets use the long header (flags,
//! version, variable-length connection IDs, token length, length,
//! packet number), 1-RTT packets the short header (flags, destination
//! CID, packet number); every protected packet also carries a 16-byte
//! AEAD tag and the DNS-over-QUIC STREAM frame framing. The paper
//! sweeps the resulting total header size — 40–88 bytes for 0-RTT,
//! 24–64 bytes for 1-RTT — and compares the link-layer bytes DoQ needs
//! against the measured DTLSv1.2 / CoAPSv1.2 / OSCORE packets.

use doc_core::method::DocMethod;
use doc_core::transport::{dissect, PacketItem, TransportKind};
use doc_sixlowpan::bytes_on_air;

/// QUIC handshake mode (selects the header-size range of Fig. 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuicHandshake {
    /// 0-RTT: long headers.
    ZeroRtt,
    /// 1-RTT: short headers.
    OneRtt,
}

impl QuicHandshake {
    /// The header-size sweep range of Fig. 9 (inclusive), in bytes.
    pub fn header_range(self) -> (usize, usize) {
        match self {
            QuicHandshake::ZeroRtt => (40, 88),
            QuicHandshake::OneRtt => (24, 64),
        }
    }

    /// Figure label.
    pub fn name(self) -> &'static str {
        match self {
            QuicHandshake::ZeroRtt => "0-RTT packet",
            QuicHandshake::OneRtt => "1-RTT packet",
        }
    }
}

/// Structural lower bound on the QUIC overhead: short header with
/// zero-length CID (1 flags + 1 packet number) + 16-byte tag + STREAM
/// frame (type 1 + stream id 1 + length 2) + DoQ 2-byte length prefix.
pub const QUIC_MIN_OVERHEAD: usize = 24;

/// Link-layer bytes a DoQ packet with `header` bytes of QUIC overhead
/// needs for a DNS message of `dns_len` bytes.
pub fn doq_bytes_on_air(dns_len: usize, header: usize) -> usize {
    bytes_on_air(dns_len + header)
}

/// Number of 802.15.4 frames the DoQ packet needs.
pub fn doq_frames(dns_len: usize, header: usize) -> usize {
    doc_sixlowpan::fragment_count(dns_len + header)
}

/// Fig. 9's y-value: DoQ's link-layer bytes as a percentage of the
/// compared transport's bytes for the same DNS message.
pub fn quic_penalty(compared: TransportKind, item: PacketItem, header: usize) -> f64 {
    let base = dissect(compared, DocMethod::Fetch, item);
    let doq = doq_bytes_on_air(base.dns, header);
    doq as f64 / base.total as f64 * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    const COMPARED: [TransportKind; 3] = [
        TransportKind::Dtls,
        TransportKind::Coaps,
        TransportKind::Oscore,
    ];
    const ITEMS: [PacketItem; 3] = [
        PacketItem::Query,
        PacketItem::ResponseA,
        PacketItem::ResponseAaaa,
    ];

    /// §5.5: "In the best case, i.e., 1-RTT handshakes with small
    /// headers, DNS over QUIC is comparable to DNS over CoAP, but in
    /// the majority of cases DNS over CoAPS, DTLS, and OSCORE
    /// outperform DNS over QUIC."
    #[test]
    fn majority_of_1rtt_cases_favor_iot_transports() {
        let (lo, hi) = QuicHandshake::OneRtt.header_range();
        let mut above_100 = 0usize;
        let mut total = 0usize;
        for h in (lo..=hi).step_by(8) {
            for kind in COMPARED {
                for item in ITEMS {
                    total += 1;
                    if quic_penalty(kind, item, h) > 100.0 {
                        above_100 += 1;
                    }
                }
            }
        }
        assert!(
            above_100 * 2 > total,
            "only {above_100}/{total} cases above 100%"
        );
        // Best case: minimal header is competitive (can dip below 100%).
        let best = COMPARED
            .iter()
            .flat_map(|&k| ITEMS.iter().map(move |&i| quic_penalty(k, i, lo)))
            .fold(f64::MAX, f64::min);
        assert!(best < 100.0, "best 1-RTT case {best}%");
    }

    /// §5.5: "In case of 0-RTT QUIC handshakes, efficiency of DNS over
    /// QUIC decreases even more."
    #[test]
    fn zero_rtt_worse_than_one_rtt() {
        let (lo0, hi0) = QuicHandshake::ZeroRtt.header_range();
        let (lo1, hi1) = QuicHandshake::OneRtt.header_range();
        for kind in COMPARED {
            for item in ITEMS {
                let mid0 = quic_penalty(kind, item, (lo0 + hi0) / 2);
                let mid1 = quic_penalty(kind, item, (lo1 + hi1) / 2);
                assert!(
                    mid0 >= mid1,
                    "{kind:?}/{item:?}: 0-RTT {mid0} < 1-RTT {mid1}"
                );
            }
        }
    }

    /// §5.5: "Requesting an IPv6 address in max header scenarios will
    /// trigger fragmentation into 3 fragments to carry the AAAA
    /// response over QUIC." Our fragmentation budget (64 + 96 payload
    /// bytes for two fragments) puts the 70+88-byte packet right at the
    /// 2/3-fragment boundary; a few more bytes of DoQ stream framing
    /// (which the paper's sweep includes) tip it to 3.
    #[test]
    fn max_0rtt_header_aaaa_fragments_heavily() {
        let (_, hi) = QuicHandshake::ZeroRtt.header_range();
        let base = dissect(
            TransportKind::Udp,
            DocMethod::Fetch,
            PacketItem::ResponseAaaa,
        );
        let frames = doq_frames(base.dns, hi);
        assert!((2..=3).contains(&frames), "frames = {frames}");
        // With the DoQ 2-byte length prefix and a minimal STREAM frame
        // on top of the swept header, the packet needs 3 fragments.
        assert_eq!(doq_frames(base.dns, hi + 5), 3);
    }

    /// Penalty is monotone in the header size.
    #[test]
    fn penalty_monotone_in_header() {
        for kind in COMPARED {
            let mut last = 0.0;
            for h in (24..=88).step_by(4) {
                let p = quic_penalty(kind, PacketItem::Query, h);
                assert!(p >= last, "{kind:?} header {h}: {p} < {last}");
                last = p;
            }
        }
    }

    /// The figure's y-axis spans 80–160%: the computed values fall in
    /// that window for the swept ranges.
    #[test]
    fn penalties_within_figure_axis() {
        for hs in [QuicHandshake::ZeroRtt, QuicHandshake::OneRtt] {
            let (lo, hi) = hs.header_range();
            for h in [lo, (lo + hi) / 2, hi] {
                for kind in COMPARED {
                    for item in ITEMS {
                        let p = quic_penalty(kind, item, h);
                        assert!(
                            (60.0..=180.0).contains(&p),
                            "{}/{kind:?}/{item:?}@{h}: {p}%",
                            hs.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn header_ranges_match_figure() {
        assert_eq!(QuicHandshake::ZeroRtt.header_range(), (40, 88));
        assert_eq!(QuicHandshake::OneRtt.header_range(), (24, 64));
        assert!(QUIC_MIN_OVERHEAD <= QuicHandshake::OneRtt.header_range().0);
    }
}
