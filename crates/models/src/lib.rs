//! `doc-models` — calibrated analytical models for the paper's
//! non-packet-trace evaluations:
//!
//! * [`buildsize`] — the ROM/RAM build-size decomposition of Fig. 5 and
//!   Fig. 8. The paper dissects RIOT firmware images (`.text`/`.data`/
//!   `.bss` sections); this workspace cannot compile RIOT, so the
//!   per-module costs are encoded as a calibrated cost model whose
//!   *relations* (the claims of §5.2/§5.5) are asserted by tests:
//!   DTLS ≈ 24 kB ROM vs OSCORE ≈ 11 kB, GET support ≈ +2 kB ROM /
//!   +173 B RAM, QUIC ≈ 2× the ROM of the IoT transports.
//! * [`quic`] — the DNS-over-QUIC packet-size model of §5.5/Fig. 9:
//!   variable 0-RTT/1-RTT header sizes swept against the measured
//!   DTLS/CoAPS/OSCORE packet sizes.
//! * [`features`] — the transport feature matrix of Table 1 and the
//!   method matrix of Table 5, cross-checked against the actual
//!   implementation behaviour.

pub mod buildsize;
pub mod features;
pub mod quic;

pub use buildsize::{build_profile, BuildProfile, Module, TransportBuild};
pub use features::{transport_features, FeatureMatrix};
pub use quic::{quic_penalty, QuicHandshake};
