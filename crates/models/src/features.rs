//! The DNS-transport feature matrix of Table 1, cross-checked against
//! this workspace's actual implementations where possible.

/// One transport's feature row (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeatureMatrix {
    /// Column label ("UDP", "TCP", …).
    pub transport: &'static str,
    /// Message segmentation above the link layer.
    pub segmentation: bool,
    /// Message authentication.
    pub authentication: bool,
    /// Message encryption.
    pub encryption: bool,
    /// Message format multiplexing (Content-Type / Content-Format).
    pub format_multiplexing: bool,
    /// Shares its protocol with the application.
    pub shares_protocol_with_app: bool,
    /// Suitability for the constrained IoT.
    pub iot_suitable: bool,
    /// Content secure en-route caching.
    pub secure_enroute_caching: bool,
}

/// All nine columns of Table 1, in the paper's order.
pub fn transport_features() -> Vec<FeatureMatrix> {
    vec![
        FeatureMatrix {
            transport: "UDP",
            segmentation: false,
            authentication: true,
            encryption: false,
            format_multiplexing: false,
            shares_protocol_with_app: false,
            iot_suitable: true,
            secure_enroute_caching: false,
        },
        FeatureMatrix {
            transport: "TCP",
            segmentation: true,
            authentication: true,
            encryption: false,
            format_multiplexing: false,
            shares_protocol_with_app: false,
            iot_suitable: false,
            secure_enroute_caching: false,
        },
        FeatureMatrix {
            transport: "DTLS",
            segmentation: false,
            authentication: true,
            encryption: true,
            format_multiplexing: false,
            shares_protocol_with_app: false,
            iot_suitable: true,
            secure_enroute_caching: false,
        },
        FeatureMatrix {
            transport: "TLS",
            segmentation: true,
            authentication: true,
            encryption: true,
            format_multiplexing: false,
            shares_protocol_with_app: false,
            iot_suitable: false,
            secure_enroute_caching: false,
        },
        FeatureMatrix {
            transport: "QUIC",
            segmentation: true,
            authentication: true,
            encryption: true,
            format_multiplexing: false,
            shares_protocol_with_app: false,
            iot_suitable: false,
            secure_enroute_caching: false,
        },
        FeatureMatrix {
            transport: "HTTPS",
            segmentation: true,
            authentication: true,
            encryption: true,
            format_multiplexing: true,
            shares_protocol_with_app: true,
            iot_suitable: false,
            secure_enroute_caching: false,
        },
        FeatureMatrix {
            transport: "CoAP",
            segmentation: true,
            authentication: true,
            encryption: false,
            format_multiplexing: true,
            shares_protocol_with_app: true,
            iot_suitable: true,
            secure_enroute_caching: false,
        },
        FeatureMatrix {
            transport: "CoAPS",
            segmentation: true,
            authentication: true,
            encryption: true,
            format_multiplexing: true,
            shares_protocol_with_app: true,
            iot_suitable: true,
            secure_enroute_caching: false,
        },
        FeatureMatrix {
            transport: "OSCORE",
            segmentation: true,
            authentication: true,
            encryption: true,
            format_multiplexing: true,
            shares_protocol_with_app: true,
            iot_suitable: true,
            secure_enroute_caching: true,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use doc_core::method::DocMethod;
    use doc_core::transport::TransportKind;

    #[test]
    fn nine_columns_in_order() {
        let t = transport_features();
        let names: Vec<&str> = t.iter().map(|f| f.transport).collect();
        assert_eq!(
            names,
            vec!["UDP", "TCP", "DTLS", "TLS", "QUIC", "HTTPS", "CoAP", "CoAPS", "OSCORE"]
        );
    }

    /// Table 1's punchline: OSCORE is the only transport with content
    /// secure en-route caching.
    #[test]
    fn only_oscore_caches_securely_enroute() {
        for f in transport_features() {
            assert_eq!(
                f.secure_enroute_caching,
                f.transport == "OSCORE",
                "{}",
                f.transport
            );
        }
    }

    /// The encryption column must agree with the implementation's
    /// [`TransportKind::encrypted`].
    #[test]
    fn encryption_column_matches_implementation() {
        let map = [
            ("UDP", TransportKind::Udp),
            ("DTLS", TransportKind::Dtls),
            ("CoAP", TransportKind::Coap),
            ("CoAPS", TransportKind::Coaps),
            ("OSCORE", TransportKind::Oscore),
        ];
        let features = transport_features();
        for (label, kind) in map {
            let row = features
                .iter()
                .find(|f| f.transport == label)
                .expect("row exists");
            assert_eq!(row.encryption, kind.encrypted(), "{label}");
        }
    }

    /// CoAP-family segmentation = block-wise transfer, which the
    /// implementation really provides.
    #[test]
    fn coap_segmentation_is_blockwise() {
        let features = transport_features();
        for label in ["CoAP", "CoAPS", "OSCORE"] {
            assert!(
                features
                    .iter()
                    .find(|f| f.transport == label)
                    .expect("row")
                    .segmentation,
                "{label}"
            );
        }
        // And the implementation supports it for FETCH/POST queries.
        assert!(DocMethod::Fetch.blockwise_query());
        assert!(DocMethod::Post.blockwise_query());
        // DTLS/UDP rows have no segmentation — and indeed the paper's
        // DoDTLS "does not provide means for message segmentation".
        assert!(
            !features
                .iter()
                .find(|f| f.transport == "DTLS")
                .expect("row")
                .segmentation
        );
        assert!(
            !features
                .iter()
                .find(|f| f.transport == "UDP")
                .expect("row")
                .segmentation
        );
    }

    /// IoT suitability: UDP, DTLS and the CoAP family only.
    #[test]
    fn iot_suitability_column() {
        for f in transport_features() {
            let expect = matches!(f.transport, "UDP" | "DTLS" | "CoAP" | "CoAPS" | "OSCORE");
            assert_eq!(f.iot_suitable, expect, "{}", f.transport);
        }
    }

    /// Format multiplexing requires an application-layer content type —
    /// HTTPS and the CoAP family.
    #[test]
    fn format_multiplexing_column() {
        for f in transport_features() {
            let expect = matches!(f.transport, "HTTPS" | "CoAP" | "CoAPS" | "OSCORE");
            assert_eq!(f.format_multiplexing, expect, "{}", f.transport);
        }
    }
}
