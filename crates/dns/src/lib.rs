//! `doc-dns` — DNS message substrate for the DNS-over-CoAP reproduction.
//!
//! Implements the DNS wire format (RFC 1035) with everything the DoC
//! protocol needs:
//!
//! * [`name`] — domain names, label validation, wire encoding with
//!   message-compression pointers, and loop-safe decompression.
//! * [`rr`] — resource-record types/classes and typed RDATA for the
//!   record types observed in the paper's empirical study (Table 4):
//!   A, AAAA, ANY, HTTPS, NS, PTR, SRV, TXT (+ CNAME, SOA, OPT).
//! * [`message`] — full messages: header, question/answer/authority/
//!   additional sections, encode/decode, and the DoC-specific
//!   canonicalization helpers (ID ← 0, TTL rewriting for the paper's
//!   *EOL TTLs* caching scheme, TTL restoration from CoAP `Max-Age`).
//! * [`cbor_fmt`] — the compressed `application/dns+cbor` representation
//!   sketched in §7 of the paper (draft-lenders-dns-cbor): a DNS query
//!   becomes a CBOR array `[name, ?type, ?class]` (type/class elided for
//!   AAAA/IN), a response becomes the answer section as a CBOR array.
//! * [`view`] — borrowed, zero-allocation [`MessageView`]s over wire
//!   bytes for the decode hot path: lazy question/record iterators that
//!   resolve compression pointers against the original buffer, with
//!   `to_owned()` escape hatches back to the owned types.
//!
//! The crate is `std`-only but allocation-light; all parsers are total
//! (no panics on arbitrary input), which the property tests assert.
//!
//! # Example
//!
//! Round-trip an AAAA response through the RFC 1035 wire format, then
//! compare against the compressed `application/dns+cbor` encoding:
//!
//! ```
//! use doc_dns::{cbor_fmt, Message, Name, Question, Rcode, Record, RecordType};
//!
//! let name = Name::parse("sensor.example.org").unwrap();
//! let query = Message::query(0x1234, name.clone(), RecordType::Aaaa);
//! let answer = Record::aaaa(name.clone(), 300, "2001:db8::1".parse().unwrap());
//! let response = Message::response(&query, Rcode::NoError, vec![answer]);
//!
//! // RFC 1035 wire format round-trips.
//! let wire = response.encode();
//! assert_eq!(Message::decode(&wire).unwrap(), response);
//!
//! // The dns+cbor representation is never larger for AAAA answers.
//! let q = Question::new(name, RecordType::Aaaa);
//! let cbor = cbor_fmt::encode_response(&response, &q);
//! assert!(cbor.len() <= wire.len());
//! assert_eq!(cbor_fmt::decode_response(&cbor, &q).unwrap().answers, response.answers);
//! ```

pub mod cbor_fmt;
pub mod dnssd;
pub mod message;
pub mod name;
pub mod rr;
pub mod view;

pub use message::{Header, Message, Opcode, Question, Rcode, Section};
pub use name::{CompressionMap, Name};
pub use rr::{Record, RecordClass, RecordData, RecordType};
pub use view::{MessageView, NameRef, QuestionView, RecordView};

/// Errors produced when encoding or decoding DNS data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DnsError {
    /// Input ended before the structure was complete.
    Truncated,
    /// A domain-name label exceeded 63 bytes or the name 255 bytes.
    NameTooLong,
    /// A compression pointer chain looped or pointed forward.
    BadPointer,
    /// A label contained an invalid length octet.
    BadLabel,
    /// RDATA did not match the declared RDLENGTH or record type.
    BadRdata,
    /// The CBOR representation was not a valid dns+cbor item.
    BadCbor,
    /// A count field or length was inconsistent with the message size.
    Inconsistent,
}

impl core::fmt::Display for DnsError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DnsError::Truncated => write!(f, "truncated DNS data"),
            DnsError::NameTooLong => write!(f, "domain name too long"),
            DnsError::BadPointer => write!(f, "invalid compression pointer"),
            DnsError::BadLabel => write!(f, "invalid label"),
            DnsError::BadRdata => write!(f, "invalid RDATA"),
            DnsError::BadCbor => write!(f, "invalid dns+cbor item"),
            DnsError::Inconsistent => write!(f, "inconsistent DNS message"),
        }
    }
}

impl std::error::Error for DnsError {}
