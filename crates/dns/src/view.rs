//! Borrowed, zero-copy views over DNS wire messages.
//!
//! [`MessageView`] is the decode-side counterpart of the zero-copy
//! encode layer: where [`Message::decode`](crate::Message::decode)
//! materializes one `Vec` per label, record and section, a view walks
//! the wire bytes **in place** — compression pointers are resolved
//! against the original buffer, names stay as offsets, RDATA stays as a
//! slice. Parsing validates the entire message up front (the same
//! accept/reject decisions as the owned decoder, property-tested in
//! `tests/properties.rs`), so the lazy iterators afterwards are
//! infallible and never re-check bounds.
//!
//! Use a view when the message does not need to outlive its datagram —
//! the proxy/server request hot path, cache-key derivation, OSCORE
//! unprotection. Use [`MessageView::to_owned`] (or the owned decoder
//! directly) at the single point where it must: cache insertion,
//! retransmission queues, anything stored across packets.

use crate::message::{Header, Message, Opcode, Question, Rcode, Section};
use crate::name::{Name, MAX_NAME_LEN};
use crate::rr::{Record, RecordClass, RecordData, RecordType};
use crate::DnsError;

/// A borrowed domain name: an offset into the original message bytes.
///
/// Labels are yielded by [`NameRef::labels`] directly from the wire
/// (following compression pointers), without materializing any `Vec`.
/// Comparisons are case-insensitive, matching the owned [`Name`]'s
/// lowercase-on-decode semantics.
#[derive(Debug, Clone, Copy)]
pub struct NameRef<'a> {
    msg: &'a [u8],
    offset: usize,
}

impl<'a> NameRef<'a> {
    /// Iterate the labels of this name in order, as raw wire slices
    /// (original case — compare case-insensitively).
    pub fn labels(&self) -> LabelIter<'a> {
        LabelIter {
            msg: self.msg,
            cursor: self.offset,
            min_pointer: usize::MAX,
        }
    }

    /// Number of labels (0 for the root).
    pub fn label_count(&self) -> usize {
        self.labels().count()
    }

    /// Uncompressed wire length of this name (labels + length octets +
    /// root terminator).
    pub fn wire_len(&self) -> usize {
        self.labels().map(|l| l.len() + 1).sum::<usize>() + 1
    }

    /// Materialize an owned (lowercased) [`Name`].
    pub fn to_owned(&self) -> Name {
        let labels: Vec<&[u8]> = self.labels().collect();
        // lint:allow(no-panic-in-parsers): labels were bounds- and length-checked by skip_name before this view existed
        Name::from_labels(&labels).expect("validated on parse")
    }

    /// Case-insensitive equality against an owned name.
    pub fn eq_name(&self, other: &Name) -> bool {
        let mut ours = self.labels();
        let mut theirs = other.labels().iter();
        loop {
            match (ours.next(), theirs.next()) {
                (None, None) => return true,
                (Some(a), Some(b)) if a.eq_ignore_ascii_case(b) => {}
                _ => return false,
            }
        }
    }
}

impl PartialEq for NameRef<'_> {
    fn eq(&self, other: &Self) -> bool {
        let mut a = self.labels();
        let mut b = other.labels();
        loop {
            match (a.next(), b.next()) {
                (None, None) => return true,
                (Some(x), Some(y)) if x.eq_ignore_ascii_case(y) => {}
                _ => return false,
            }
        }
    }
}

impl PartialEq<Name> for NameRef<'_> {
    fn eq(&self, other: &Name) -> bool {
        self.eq_name(other)
    }
}

impl core::fmt::Display for NameRef<'_> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let mut first = true;
        for label in self.labels() {
            if !first {
                write!(f, ".")?;
            }
            first = false;
            for &b in label {
                let lower = b.to_ascii_lowercase();
                if lower.is_ascii_graphic() && lower != b'.' && lower != b'\\' {
                    write!(f, "{}", lower as char)?;
                } else {
                    write!(f, "\\{lower:03}")?;
                }
            }
        }
        if first {
            write!(f, ".")?;
        }
        Ok(())
    }
}

/// Iterator over the labels of a [`NameRef`], resolving compression
/// pointers against the original message. Total by construction: the
/// walk was validated at parse time, and the pointer guards are kept so
/// the iterator is safe even on a view forged from unvalidated offsets.
#[derive(Debug, Clone)]
pub struct LabelIter<'a> {
    msg: &'a [u8],
    cursor: usize,
    min_pointer: usize,
}

impl<'a> Iterator for LabelIter<'a> {
    type Item = &'a [u8];

    fn next(&mut self) -> Option<&'a [u8]> {
        loop {
            let len_octet = *self.msg.get(self.cursor)?;
            match len_octet {
                0 => return None,
                1..=63 => {
                    let l = len_octet as usize;
                    let label = self.msg.get(self.cursor + 1..self.cursor + 1 + l)?;
                    self.cursor += 1 + l;
                    return Some(label);
                }
                0xC0..=0xFF => {
                    let second = *self.msg.get(self.cursor + 1)?;
                    let target = (((len_octet & 0x3F) as usize) << 8) | second as usize;
                    if target >= self.cursor || target >= self.min_pointer {
                        return None; // invalid; parse would have rejected
                    }
                    self.min_pointer = target;
                    self.cursor = target;
                }
                _ => return None,
            }
        }
    }
}

/// Walk one (possibly compressed) name at `*pos`, validating with the
/// exact rules of [`Name::decode`] but materializing nothing.
fn skip_name(msg: &[u8], pos: &mut usize) -> Result<(), DnsError> {
    let mut cursor = *pos;
    let mut followed_pointer = false;
    let mut min_pointer = usize::MAX;
    let mut total_len = 0usize;
    loop {
        let len_octet = *msg.get(cursor).ok_or(DnsError::Truncated)?;
        match len_octet {
            0 => {
                if !followed_pointer {
                    *pos = cursor + 1;
                }
                return Ok(());
            }
            1..=63 => {
                let l = len_octet as usize;
                if msg.get(cursor + 1..cursor + 1 + l).is_none() {
                    return Err(DnsError::Truncated);
                }
                total_len += l + 1;
                if total_len + 1 > MAX_NAME_LEN {
                    return Err(DnsError::NameTooLong);
                }
                cursor += 1 + l;
            }
            0xC0..=0xFF => {
                let second = *msg.get(cursor + 1).ok_or(DnsError::Truncated)?;
                let target = (((len_octet & 0x3F) as usize) << 8) | second as usize;
                if !followed_pointer {
                    *pos = cursor + 2;
                    followed_pointer = true;
                }
                if target >= cursor || target >= min_pointer {
                    return Err(DnsError::BadPointer);
                }
                min_pointer = target;
                cursor = target;
            }
            _ => return Err(DnsError::BadLabel),
        }
    }
}

/// Validate RDATA of `rtype` in place — the allocation-free twin of
/// [`RecordData::decode`], accepting and rejecting exactly the same
/// inputs (kept adjacent in spirit; the equivalence is property-tested).
fn validate_rdata(
    rtype: RecordType,
    msg: &[u8],
    rdata_start: usize,
    rdlen: usize,
) -> Result<(), DnsError> {
    let end = rdata_start.checked_add(rdlen).ok_or(DnsError::Truncated)?;
    let slice = msg.get(rdata_start..end).ok_or(DnsError::Truncated)?;
    match rtype {
        RecordType::A if slice.len() != 4 => return Err(DnsError::BadRdata),
        RecordType::Aaaa if slice.len() != 16 => return Err(DnsError::BadRdata),
        RecordType::A | RecordType::Aaaa => {}
        RecordType::Ns | RecordType::Cname | RecordType::Ptr => {
            let mut pos = rdata_start;
            skip_name(msg, &mut pos)?;
            if pos > end {
                return Err(DnsError::BadRdata);
            }
        }
        RecordType::Txt => {
            let mut i = 0usize;
            while let Some(&l) = slice.get(i) {
                let l = l as usize;
                if slice.get(i + 1..i + 1 + l).is_none() {
                    return Err(DnsError::BadRdata);
                }
                i += 1 + l;
            }
        }
        RecordType::Srv => {
            if slice.len() < 7 {
                return Err(DnsError::BadRdata);
            }
            let mut pos = rdata_start + 6;
            skip_name(msg, &mut pos)?;
            if pos > end {
                return Err(DnsError::BadRdata);
            }
        }
        RecordType::Soa => {
            let mut pos = rdata_start;
            skip_name(msg, &mut pos)?;
            skip_name(msg, &mut pos)?;
            if msg.get(pos..pos + 20).is_none() {
                return Err(DnsError::BadRdata);
            }
            if pos + 20 > end {
                return Err(DnsError::BadRdata);
            }
        }
        RecordType::Https => {
            if slice.len() < 3 {
                return Err(DnsError::BadRdata);
            }
            let mut pos = rdata_start + 2;
            skip_name(msg, &mut pos)?;
            if pos > end {
                return Err(DnsError::BadRdata);
            }
        }
        _ => {}
    }
    Ok(())
}

/// A borrowed question-section entry.
#[derive(Debug, Clone, Copy)]
pub struct QuestionView<'a> {
    /// Queried name (borrowed).
    pub qname: NameRef<'a>,
    /// Queried type.
    pub qtype: RecordType,
    /// Queried class.
    pub qclass: RecordClass,
}

impl QuestionView<'_> {
    /// Materialize an owned [`Question`].
    pub fn to_owned(&self) -> Question {
        Question {
            qname: self.qname.to_owned(),
            qtype: self.qtype,
            qclass: self.qclass,
        }
    }
}

/// A borrowed resource record: fixed fields decoded, owner name and
/// RDATA left as references into the message.
#[derive(Debug, Clone, Copy)]
pub struct RecordView<'a> {
    msg: &'a [u8],
    /// Owner name (borrowed).
    pub name: NameRef<'a>,
    /// Record type.
    pub rtype: RecordType,
    /// Record class.
    pub rclass: RecordClass,
    /// Time to live in seconds.
    pub ttl: u32,
    rdata_start: usize,
    rdlen: usize,
}

impl RecordView<'_> {
    /// Raw RDATA bytes (undecoded; names inside may be compressed).
    pub fn rdata(&self) -> &[u8] {
        // lint:allow(no-panic-in-parsers): rdata_start..+rdlen was bounds-checked by validate_rdata before this view existed
        &self.msg[self.rdata_start..self.rdata_start + self.rdlen]
    }

    /// Decode the typed RDATA (allocates — the escape hatch).
    pub fn data(&self) -> RecordData {
        RecordData::decode(self.rtype, self.msg, self.rdata_start, self.rdlen)
            // lint:allow(no-panic-in-parsers): validate_rdata accepted exactly this RDATA at parse; decode cannot fail
            .expect("validated on parse")
    }

    /// Materialize an owned [`Record`].
    pub fn to_owned(&self) -> Record {
        Record {
            name: self.name.to_owned(),
            rtype: self.rtype,
            rclass: self.rclass,
            ttl: self.ttl,
            data: self.data(),
        }
    }
}

/// A validated, borrowed view of a DNS wire message.
#[derive(Debug, Clone, Copy)]
pub struct MessageView<'a> {
    msg: &'a [u8],
    header: Header,
    qdcount: usize,
    ancount: usize,
    nscount: usize,
    arcount: usize,
    /// Offset of the first question (always 12).
    questions_start: usize,
    /// Offset of the first answer record.
    answers_start: usize,
}

impl<'a> MessageView<'a> {
    /// Parse and fully validate `msg`, accepting and rejecting exactly
    /// the inputs [`Message::decode`] does, without allocating.
    pub fn parse(msg: &'a [u8]) -> Result<Self, DnsError> {
        let (fixed, _) = msg.split_first_chunk::<12>().ok_or(DnsError::Truncated)?;
        let &[id_hi, id_lo, f_hi, f_lo, qd_hi, qd_lo, an_hi, an_lo, ns_hi, ns_lo, ar_hi, ar_lo] =
            fixed;
        let id = u16::from_be_bytes([id_hi, id_lo]);
        let flags = u16::from_be_bytes([f_hi, f_lo]);
        let header = Header {
            id,
            qr: flags & (1 << 15) != 0,
            opcode: Opcode::from_u8((flags >> 11) as u8),
            aa: flags & (1 << 10) != 0,
            tc: flags & (1 << 9) != 0,
            rd: flags & (1 << 8) != 0,
            ra: flags & (1 << 7) != 0,
            rcode: Rcode::from_u8(flags as u8),
        };
        let qdcount = u16::from_be_bytes([qd_hi, qd_lo]) as usize;
        let ancount = u16::from_be_bytes([an_hi, an_lo]) as usize;
        let nscount = u16::from_be_bytes([ns_hi, ns_lo]) as usize;
        let arcount = u16::from_be_bytes([ar_hi, ar_lo]) as usize;
        let min_len = 12 + qdcount * 5 + (ancount + nscount + arcount) * 11;
        if min_len > msg.len() {
            return Err(DnsError::Inconsistent);
        }

        let mut pos = 12usize;
        for _ in 0..qdcount {
            skip_name(msg, &mut pos)?;
            if msg.get(pos..pos + 4).is_none() {
                return Err(DnsError::Truncated);
            }
            pos += 4;
        }
        let answers_start = pos;
        for _ in 0..ancount + nscount + arcount {
            skip_record(msg, &mut pos)?;
        }
        Ok(MessageView {
            msg,
            header,
            qdcount,
            ancount,
            nscount,
            arcount,
            questions_start: 12,
            answers_start,
        })
    }

    /// The raw message bytes this view borrows.
    pub fn as_bytes(&self) -> &'a [u8] {
        self.msg
    }

    /// The decoded header.
    pub fn header(&self) -> Header {
        self.header
    }

    /// Number of questions.
    pub fn question_count(&self) -> usize {
        self.qdcount
    }

    /// Number of answer records.
    pub fn answer_count(&self) -> usize {
        self.ancount
    }

    /// Number of records across all three RR sections.
    pub fn record_count(&self) -> usize {
        self.ancount + self.nscount + self.arcount
    }

    /// Iterate the question section lazily.
    pub fn questions(&self) -> QuestionIter<'a> {
        QuestionIter {
            msg: self.msg,
            pos: self.questions_start,
            remaining: self.qdcount,
        }
    }

    /// First question, if any (the common single-question DoC shape).
    pub fn question(&self) -> Option<QuestionView<'a>> {
        self.questions().next()
    }

    /// Iterate every resource record lazily, tagged with its section.
    pub fn records(&self) -> RecordIter<'a> {
        RecordIter {
            msg: self.msg,
            pos: self.answers_start,
            in_answers: self.ancount,
            in_authority: self.nscount,
            in_additional: self.arcount,
        }
    }

    /// Minimum TTL across all records — the view twin of
    /// [`Message::min_ttl`].
    pub fn min_ttl(&self) -> Option<u32> {
        self.records().map(|(_, r)| r.ttl).min()
    }

    /// Materialize a fully owned [`Message`] — the escape hatch for the
    /// moment a message must outlive its datagram.
    pub fn to_owned(&self) -> Message {
        Message {
            header: self.header,
            questions: self.questions().map(|q| q.to_owned()).collect(),
            answers: self
                .records()
                .filter(|(s, _)| *s == Section::Answer)
                .map(|(_, r)| r.to_owned())
                .collect(),
            authority: self
                .records()
                .filter(|(s, _)| *s == Section::Authority)
                .map(|(_, r)| r.to_owned())
                .collect(),
            additional: self
                .records()
                .filter(|(s, _)| *s == Section::Additional)
                .map(|(_, r)| r.to_owned())
                .collect(),
        }
    }
}

/// Validate one record and advance `*pos` past it.
fn skip_record(msg: &[u8], pos: &mut usize) -> Result<(), DnsError> {
    skip_name(msg, pos)?;
    let Some(&[t_hi, t_lo, _, _, _, _, _, _, l_hi, l_lo]) = msg.get(*pos..*pos + 10) else {
        return Err(DnsError::Truncated);
    };
    let rtype = RecordType::from_u16(u16::from_be_bytes([t_hi, t_lo]));
    let rdlen = u16::from_be_bytes([l_hi, l_lo]) as usize;
    *pos += 10;
    validate_rdata(rtype, msg, *pos, rdlen)?;
    *pos += rdlen;
    Ok(())
}

/// Read the record at `*pos` (already validated) as a view. `None` is
/// unreachable after `MessageView::parse` succeeded, but the checked
/// reads keep this total on any input.
fn read_record<'a>(msg: &'a [u8], pos: &mut usize) -> Option<RecordView<'a>> {
    let name = NameRef { msg, offset: *pos };
    skip_name(msg, pos).ok()?;
    let Some(&[t_hi, t_lo, c_hi, c_lo, ttl0, ttl1, ttl2, ttl3, l_hi, l_lo]) =
        msg.get(*pos..*pos + 10)
    else {
        return None;
    };
    let rtype = RecordType::from_u16(u16::from_be_bytes([t_hi, t_lo]));
    let rclass = RecordClass::from_u16(u16::from_be_bytes([c_hi, c_lo]));
    let ttl = u32::from_be_bytes([ttl0, ttl1, ttl2, ttl3]);
    let rdlen = u16::from_be_bytes([l_hi, l_lo]) as usize;
    *pos += 10;
    let rdata_start = *pos;
    *pos += rdlen;
    Some(RecordView {
        msg,
        name,
        rtype,
        rclass,
        ttl,
        rdata_start,
        rdlen,
    })
}

/// Lazy iterator over the question section.
#[derive(Debug, Clone)]
pub struct QuestionIter<'a> {
    msg: &'a [u8],
    pos: usize,
    remaining: usize,
}

impl<'a> Iterator for QuestionIter<'a> {
    type Item = QuestionView<'a>;

    fn next(&mut self) -> Option<QuestionView<'a>> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let qname = NameRef {
            msg: self.msg,
            offset: self.pos,
        };
        skip_name(self.msg, &mut self.pos).ok()?;
        let Some(&[t_hi, t_lo, c_hi, c_lo]) = self.msg.get(self.pos..self.pos + 4) else {
            return None;
        };
        self.pos += 4;
        Some(QuestionView {
            qname,
            qtype: RecordType::from_u16(u16::from_be_bytes([t_hi, t_lo])),
            qclass: RecordClass::from_u16(u16::from_be_bytes([c_hi, c_lo])),
        })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

/// Lazy iterator over all resource records, tagged with their section.
#[derive(Debug, Clone)]
pub struct RecordIter<'a> {
    msg: &'a [u8],
    pos: usize,
    in_answers: usize,
    in_authority: usize,
    in_additional: usize,
}

impl<'a> Iterator for RecordIter<'a> {
    type Item = (Section, RecordView<'a>);

    fn next(&mut self) -> Option<(Section, RecordView<'a>)> {
        let section = if self.in_answers > 0 {
            self.in_answers -= 1;
            Section::Answer
        } else if self.in_authority > 0 {
            self.in_authority -= 1;
            Section::Authority
        } else if self.in_additional > 0 {
            self.in_additional -= 1;
            Section::Additional
        } else {
            return None;
        };
        let record = read_record(self.msg, &mut self.pos)?;
        Some((section, record))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.in_answers + self.in_authority + self.in_additional;
        (n, Some(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Rcode;
    use std::net::Ipv6Addr;

    fn example_response(n: usize) -> Message {
        let q = Message::query(
            0x1234,
            Name::parse("name0123456.iot.example.org").unwrap(),
            RecordType::Aaaa,
        );
        let name = q.questions[0].qname.clone();
        let answers = (0..n)
            .map(|i| {
                Record::aaaa(
                    name.clone(),
                    300,
                    Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, i as u16 + 1),
                )
            })
            .collect();
        Message::response(&q, Rcode::NoError, answers)
    }

    #[test]
    fn view_agrees_with_owned_decode() {
        for msg in [example_response(0), example_response(4)] {
            let wire = msg.encode();
            let view = MessageView::parse(&wire).unwrap();
            let owned = Message::decode(&wire).unwrap();
            assert_eq!(view.to_owned(), owned);
            assert_eq!(view.header(), owned.header);
            assert_eq!(view.question_count(), owned.questions.len());
            assert_eq!(view.answer_count(), owned.answers.len());
        }
    }

    #[test]
    fn name_ref_follows_compression_pointers() {
        let wire = example_response(3).encode();
        let view = MessageView::parse(&wire).unwrap();
        let qname = view.question().unwrap().qname;
        assert_eq!(qname.label_count(), 4);
        assert_eq!(qname.to_string(), "name0123456.iot.example.org");
        for (_, rec) in view.records() {
            // Answer owner names are compression pointers to the
            // question name; the view resolves them in place.
            assert!(rec.name == qname);
            assert!(rec
                .name
                .eq_name(&Name::parse("name0123456.iot.example.org").unwrap()));
            assert_eq!(rec.rdata().len(), 16);
        }
    }

    #[test]
    fn name_ref_case_insensitive() {
        let mut wire = Vec::new();
        Name::parse("a.b").unwrap().encode(&mut wire);
        // Manually uppercase the first label on the wire.
        wire[1] = b'A';
        let name = NameRef {
            msg: &wire,
            offset: 0,
        };
        assert!(name.eq_name(&Name::parse("a.b").unwrap()));
        assert_eq!(name.to_owned(), Name::parse("a.b").unwrap());
        assert_eq!(name.to_string(), "a.b");
    }

    #[test]
    fn view_rejects_what_owned_rejects() {
        // Truncated header.
        assert_eq!(
            MessageView::parse(&[0u8; 11]).unwrap_err(),
            DnsError::Truncated
        );
        // Inflated counts.
        let mut wire = example_response(1).encode();
        wire[6] = 0x03;
        wire[7] = 0xE8;
        assert!(MessageView::parse(&wire).is_err());
        assert!(Message::decode(&wire).is_err());
        // Truncated tail.
        let wire = example_response(2).encode();
        for cut in 0..wire.len() {
            let slice = &wire[..cut];
            assert_eq!(
                MessageView::parse(slice).is_ok(),
                Message::decode(slice).is_ok(),
                "divergence at cut {cut}"
            );
        }
    }

    #[test]
    fn min_ttl_matches() {
        let mut msg = example_response(3);
        msg.answers[1].ttl = 42;
        let wire = msg.encode();
        let view = MessageView::parse(&wire).unwrap();
        assert_eq!(view.min_ttl(), msg.min_ttl());
        let q = Message::query(1, Name::parse("x.y").unwrap(), RecordType::A);
        let wire = q.encode();
        assert_eq!(MessageView::parse(&wire).unwrap().min_ttl(), None);
    }

    #[test]
    fn record_sections_tagged() {
        let mut msg = example_response(2);
        msg.authority.push(msg.answers[0].clone());
        msg.additional.push(msg.answers[1].clone());
        let wire = msg.encode();
        let view = MessageView::parse(&wire).unwrap();
        let sections: Vec<Section> = view.records().map(|(s, _)| s).collect();
        assert_eq!(
            sections,
            vec![
                Section::Answer,
                Section::Answer,
                Section::Authority,
                Section::Additional
            ]
        );
        assert_eq!(view.record_count(), 4);
    }

    #[test]
    fn parse_never_panics_on_fuzz_corpus() {
        let mut state = 0x9E3779B97F4A7C15u64;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 33) as u8
            })
            .collect();
        for start in (0..data.len() - 128).step_by(11) {
            for len in [0usize, 4, 12, 13, 29, 64, 128] {
                let slice = &data[start..start + len];
                let view = MessageView::parse(slice);
                let owned = Message::decode(slice);
                assert_eq!(view.is_ok(), owned.is_ok());
                if let Ok(v) = view {
                    // Iterators must be total on whatever parsed.
                    for q in v.questions() {
                        let _ = q.qname.label_count();
                    }
                    for (_, r) in v.records() {
                        let _ = (r.name.wire_len(), r.rdata().len());
                    }
                }
            }
        }
    }

    #[test]
    fn rdata_accessor_decodes_typed_data() {
        let wire = example_response(1).encode();
        let view = MessageView::parse(&wire).unwrap();
        let (_, rec) = view.records().next().unwrap();
        match rec.data() {
            RecordData::Aaaa(addr) => {
                assert_eq!(addr, Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 1));
            }
            other => panic!("expected AAAA, got {other:?}"),
        }
    }
}
