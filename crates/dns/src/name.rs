//! Domain names: presentation↔wire conversion, compression pointers.
//!
//! Wire format per RFC 1035 §3.1: a sequence of labels, each preceded by
//! a length octet, terminated by the root label (0). Compression
//! pointers (§4.1.4) are two octets with the top bits `11`, pointing at
//! a prior offset in the message. Decompression is loop-safe: pointers
//! must strictly decrease.

use crate::DnsError;

/// Maximum length of one label.
pub const MAX_LABEL_LEN: usize = 63;
/// Maximum wire length of a full name (RFC 1035 §2.3.4).
pub const MAX_NAME_LEN: usize = 255;
/// Upper bound on labels per name (each label costs ≥ 2 wire bytes).
pub const MAX_LABELS: usize = MAX_NAME_LEN / 2;

/// Highest message offset a compression pointer can address (14 bits).
const MAX_POINTER: usize = 0x3FFF;

/// Fixed-capacity suffix→offset map used by [`Name::encode_compressed`].
///
/// Each registered suffix is stored as a 64-bit hash of its labels plus
/// the message offset where it was encoded. Lookups compare candidate
/// hashes first and then verify the labels **against the message bytes
/// in place** (following compression pointers), so no suffix `Name` is
/// ever materialized and the map itself never touches the heap — it is
/// a plain inline array that lives on the encoder's stack.
///
/// The capacity bounds work, not correctness: once full, further
/// suffixes simply are not registered, which can only cost compression
/// opportunities, never produce an invalid message.
#[derive(Debug, Clone)]
pub struct CompressionMap {
    len: usize,
    entries: [(u64, u16); Self::CAPACITY],
}

impl Default for CompressionMap {
    fn default() -> Self {
        Self::new()
    }
}

impl CompressionMap {
    /// Registered-suffix capacity. 64 suffixes cover every answer name
    /// of the largest responses the figures exercise; overflow only
    /// degrades compression.
    pub const CAPACITY: usize = 64;

    /// An empty map.
    pub fn new() -> Self {
        CompressionMap {
            len: 0,
            entries: [(0, 0); Self::CAPACITY],
        }
    }

    /// Drop all registered suffixes (for buffer-reuse encode loops).
    pub fn clear(&mut self) {
        self.len = 0;
    }

    /// Number of registered suffixes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no suffix is registered yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Register `hash` at `offset` (ignored past the pointer limit or
    /// when full).
    fn insert(&mut self, hash: u64, offset: usize) {
        if offset <= MAX_POINTER && self.len < Self::CAPACITY {
            self.entries[self.len] = (hash, offset as u16);
            self.len += 1;
        }
    }

    /// Find a registered suffix equal to `labels`, verifying candidate
    /// offsets against `msg` in place.
    fn find(&self, hash: u64, msg: &[u8], labels: &[Vec<u8>]) -> Option<u16> {
        self.entries[..self.len]
            .iter()
            .find(|&&(h, off)| h == hash && suffix_matches(msg, off as usize, labels))
            .map(|&(_, off)| off)
    }
}

/// Compare the label sequence encoded in `msg` at `offset` (following
/// compression pointers) against `labels`. Message bytes are lowercase
/// by construction, so a direct byte comparison suffices.
fn suffix_matches(msg: &[u8], mut offset: usize, labels: &[Vec<u8>]) -> bool {
    let mut next = 0usize;
    // Pointers strictly decrease in well-formed output; the guard makes
    // the walk total even on a corrupted buffer.
    let mut guard = 0usize;
    loop {
        guard += 1;
        if guard > MAX_LABELS + 8 {
            return false;
        }
        let Some(&len_octet) = msg.get(offset) else {
            return false;
        };
        match len_octet {
            0 => return next == labels.len(),
            1..=63 => {
                let l = len_octet as usize;
                let Some(wire_label) = msg.get(offset + 1..offset + 1 + l) else {
                    return false;
                };
                if next >= labels.len() || labels[next] != wire_label {
                    return false;
                }
                next += 1;
                offset += 1 + l;
            }
            0xC0..=0xFF => {
                let Some(&second) = msg.get(offset + 1) else {
                    return false;
                };
                let target = (((len_octet & 0x3F) as usize) << 8) | second as usize;
                if target >= offset {
                    return false;
                }
                offset = target;
            }
            _ => return false,
        }
    }
}

/// FNV-1a over one label's bytes.
fn label_hash(label: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in label {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Combine a label hash with the hash of the suffix to its right.
/// Asymmetric so that label order matters.
fn suffix_hash(label: &[u8], rest: u64) -> u64 {
    rest.rotate_left(23)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(label_hash(label))
}

/// A fully-qualified domain name stored as lowercase labels.
///
/// Comparison and hashing are case-insensitive by construction: labels
/// are lowercased on creation (DNS name matching is case-insensitive,
/// RFC 1035 §2.3.3; lowercasing also gives the deterministic cache keys
/// that DoC requires, §4.2 of the paper).
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Name {
    labels: Vec<Vec<u8>>,
}

impl Name {
    /// The root name (zero labels).
    pub fn root() -> Self {
        Name { labels: Vec::new() }
    }

    /// Parse a presentation-format name (`example.org`, trailing dot
    /// optional). Empty string or `"."` yields the root.
    pub fn parse(s: &str) -> Result<Self, DnsError> {
        let s = s.strip_suffix('.').unwrap_or(s);
        if s.is_empty() {
            return Ok(Name::root());
        }
        let mut labels = Vec::new();
        for label in s.split('.') {
            if label.is_empty() || label.len() > MAX_LABEL_LEN {
                return Err(DnsError::BadLabel);
            }
            labels.push(label.as_bytes().to_ascii_lowercase());
        }
        let name = Name { labels };
        if name.wire_len() > MAX_NAME_LEN {
            return Err(DnsError::NameTooLong);
        }
        Ok(name)
    }

    /// Build from raw label byte slices.
    pub fn from_labels<L: AsRef<[u8]>>(labels: &[L]) -> Result<Self, DnsError> {
        let mut out = Vec::with_capacity(labels.len());
        for l in labels {
            let l = l.as_ref();
            if l.is_empty() || l.len() > MAX_LABEL_LEN {
                return Err(DnsError::BadLabel);
            }
            out.push(l.to_ascii_lowercase());
        }
        let name = Name { labels: out };
        if name.wire_len() > MAX_NAME_LEN {
            return Err(DnsError::NameTooLong);
        }
        Ok(name)
    }

    /// The labels of this name, root-less, in order.
    pub fn labels(&self) -> &[Vec<u8>] {
        &self.labels
    }

    /// Number of labels (0 for the root).
    pub fn label_count(&self) -> usize {
        self.labels.len()
    }

    /// Presentation format length in characters (dots between labels,
    /// no trailing dot) — the quantity the paper's Table 3 statistics
    /// describe ("name length in characters").
    pub fn presentation_len(&self) -> usize {
        if self.labels.is_empty() {
            return 0;
        }
        self.labels.iter().map(|l| l.len()).sum::<usize>() + self.labels.len() - 1
    }

    /// Uncompressed wire length: one length octet per label + label
    /// bytes + terminating root octet.
    pub fn wire_len(&self) -> usize {
        self.labels.iter().map(|l| l.len() + 1).sum::<usize>() + 1
    }

    /// Append the uncompressed wire form to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        for label in &self.labels {
            out.push(label.len() as u8);
            out.extend_from_slice(label);
        }
        out.push(0);
    }

    /// Append the wire form, compressing against names already encoded
    /// in `msg` (suffix offsets recorded in `table`).
    ///
    /// `table` maps previously encoded *suffixes* to their message
    /// offsets; new suffixes of this name are registered as a side
    /// effect. Offsets beyond 0x3FFF are not registered (pointer limit).
    /// The whole operation is allocation-free: suffixes are keyed by
    /// hash and verified against `msg` in place.
    pub fn encode_compressed(&self, msg: &mut Vec<u8>, table: &mut CompressionMap) {
        let n = self.labels.len();
        debug_assert!(n <= MAX_LABELS, "wire_len bound implies label bound");
        // Hash every suffix right-to-left in one pass.
        let mut hashes = [0u64; MAX_LABELS];
        let mut h = 0u64;
        for i in (0..n).rev() {
            h = suffix_hash(&self.labels[i], h);
            hashes[i] = h;
        }
        // Longest known suffix = smallest skip.
        let mut skip = n;
        let mut pointer = None;
        for (s, &h) in hashes[..n].iter().enumerate() {
            if let Some(off) = table.find(h, msg, &self.labels[s..]) {
                skip = s;
                pointer = Some(off);
                break;
            }
        }
        // Emit the unshared leading labels, registering their suffixes.
        for (i, label) in self.labels[..skip].iter().enumerate() {
            table.insert(hashes[i], msg.len());
            msg.push(label.len() as u8);
            msg.extend_from_slice(label);
        }
        match pointer {
            Some(off) => {
                msg.push(0xC0 | ((off >> 8) as u8));
                msg.push(off as u8);
            }
            None => msg.push(0),
        }
    }

    /// Decode a (possibly compressed) name from `msg` starting at
    /// `*pos`. `*pos` is advanced past the name's in-place bytes.
    pub fn decode(msg: &[u8], pos: &mut usize) -> Result<Self, DnsError> {
        let mut labels = Vec::new();
        let mut cursor = *pos;
        let mut followed_pointer = false;
        let mut min_pointer = usize::MAX; // pointers must strictly decrease
        let mut total_len = 0usize;
        loop {
            let len_octet = *msg.get(cursor).ok_or(DnsError::Truncated)?;
            match len_octet {
                0 => {
                    if !followed_pointer {
                        *pos = cursor + 1;
                    }
                    return Ok(Name { labels });
                }
                1..=63 => {
                    let l = len_octet as usize;
                    let label = msg
                        .get(cursor + 1..cursor + 1 + l)
                        .ok_or(DnsError::Truncated)?;
                    total_len += l + 1;
                    if total_len + 1 > MAX_NAME_LEN {
                        return Err(DnsError::NameTooLong);
                    }
                    labels.push(label.to_ascii_lowercase());
                    cursor += 1 + l;
                }
                0xC0..=0xFF => {
                    let second = *msg.get(cursor + 1).ok_or(DnsError::Truncated)?;
                    let target = (((len_octet & 0x3F) as usize) << 8) | second as usize;
                    if !followed_pointer {
                        *pos = cursor + 2;
                        followed_pointer = true;
                    }
                    // Loop protection: each pointer must point strictly
                    // before the previous pointer target (and before the
                    // original position).
                    if target >= cursor || target >= min_pointer {
                        return Err(DnsError::BadPointer);
                    }
                    min_pointer = target;
                    cursor = target;
                }
                _ => return Err(DnsError::BadLabel), // 0x40..0xBF reserved
            }
        }
    }

    /// Whether `other` is a suffix of (or equal to) this name.
    pub fn ends_with(&self, other: &Name) -> bool {
        if other.labels.len() > self.labels.len() {
            return false;
        }
        let skip = self.labels.len() - other.labels.len();
        self.labels[skip..] == other.labels[..]
    }
}

impl core::fmt::Display for Name {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.labels.is_empty() {
            return write!(f, ".");
        }
        for (i, label) in self.labels.iter().enumerate() {
            if i > 0 {
                write!(f, ".")?;
            }
            for &b in label {
                if b.is_ascii_graphic() && b != b'.' && b != b'\\' {
                    write!(f, "{}", b as char)?;
                } else {
                    write!(f, "\\{b:03}")?;
                }
            }
        }
        Ok(())
    }
}

impl std::str::FromStr for Name {
    type Err = DnsError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Name::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display() {
        let n = Name::parse("Example.ORG").unwrap();
        assert_eq!(n.to_string(), "example.org");
        assert_eq!(n.label_count(), 2);
        assert_eq!(n.presentation_len(), 11);
    }

    #[test]
    fn root_name() {
        assert_eq!(Name::parse("").unwrap(), Name::root());
        assert_eq!(Name::parse(".").unwrap(), Name::root());
        assert_eq!(Name::root().wire_len(), 1);
        assert_eq!(Name::root().presentation_len(), 0);
        assert_eq!(Name::root().to_string(), ".");
    }

    #[test]
    fn trailing_dot_equivalence() {
        assert_eq!(
            Name::parse("example.org.").unwrap(),
            Name::parse("example.org").unwrap()
        );
    }

    #[test]
    fn wire_roundtrip() {
        let n = Name::parse("a.bc.def.example.org").unwrap();
        let mut wire = Vec::new();
        n.encode(&mut wire);
        assert_eq!(wire.len(), n.wire_len());
        let mut pos = 0;
        let back = Name::decode(&wire, &mut pos).unwrap();
        assert_eq!(back, n);
        assert_eq!(pos, wire.len());
    }

    #[test]
    fn reject_bad_labels() {
        assert!(Name::parse("a..b").is_err());
        let long = "x".repeat(64);
        assert!(Name::parse(&long).is_err());
        assert!(Name::parse(&"x".repeat(63)).is_ok());
    }

    #[test]
    fn reject_name_too_long() {
        // 4 * 63 + dots > 255 wire bytes
        let label = "x".repeat(63);
        let name = format!("{label}.{label}.{label}.{label}");
        assert!(Name::parse(&name).is_err());
    }

    #[test]
    fn compression_shares_suffix() {
        let mut msg = vec![0u8; 12]; // fake header
        let mut table = CompressionMap::new();
        let n1 = Name::parse("www.example.org").unwrap();
        let n2 = Name::parse("mail.example.org").unwrap();
        n1.encode_compressed(&mut msg, &mut table);
        let len_after_first = msg.len();
        n2.encode_compressed(&mut msg, &mut table);
        // Second name should be 4(mail)+1(len)+2(pointer) = 7 bytes.
        assert_eq!(msg.len() - len_after_first, 7);
        // Decode both back.
        let mut pos = 12;
        assert_eq!(Name::decode(&msg, &mut pos).unwrap(), n1);
        assert_eq!(Name::decode(&msg, &mut pos).unwrap(), n2);
        assert_eq!(pos, msg.len());
    }

    #[test]
    fn identical_name_compresses_to_pointer() {
        let mut msg = Vec::new();
        let mut table = CompressionMap::new();
        let n = Name::parse("example.org").unwrap();
        n.encode_compressed(&mut msg, &mut table);
        let first = msg.len();
        n.encode_compressed(&mut msg, &mut table);
        assert_eq!(msg.len() - first, 2); // just a pointer
        let mut pos = first;
        assert_eq!(Name::decode(&msg, &mut pos).unwrap(), n);
    }

    #[test]
    fn pointer_loop_rejected() {
        // A pointer at offset 0 pointing to itself.
        let msg = [0xC0u8, 0x00];
        let mut pos = 0;
        assert_eq!(Name::decode(&msg, &mut pos), Err(DnsError::BadPointer));
    }

    #[test]
    fn mutual_pointer_loop_rejected() {
        // offset 0 -> 2, offset 2 -> 0.
        let msg = [0xC0u8, 0x02, 0xC0, 0x00];
        let mut pos = 0;
        assert_eq!(Name::decode(&msg, &mut pos), Err(DnsError::BadPointer));
        let mut pos = 2;
        // 2 -> 0 is backwards, then 0 -> 2 is >= min_pointer: rejected.
        assert_eq!(Name::decode(&msg, &mut pos), Err(DnsError::BadPointer));
    }

    #[test]
    fn forward_pointer_rejected() {
        let msg = [0xC0u8, 0x04, 0, 0, 1, b'a', 0];
        let mut pos = 0;
        assert_eq!(Name::decode(&msg, &mut pos), Err(DnsError::BadPointer));
    }

    #[test]
    fn truncated_rejected() {
        let msg = [3u8, b'a', b'b'];
        let mut pos = 0;
        assert_eq!(Name::decode(&msg, &mut pos), Err(DnsError::Truncated));
        let msg2 = [0xC0u8];
        let mut pos = 0;
        assert_eq!(Name::decode(&msg2, &mut pos), Err(DnsError::Truncated));
    }

    #[test]
    fn reserved_label_type_rejected() {
        let msg = [0x40u8, 0x00];
        let mut pos = 0;
        assert_eq!(Name::decode(&msg, &mut pos), Err(DnsError::BadLabel));
    }

    #[test]
    fn case_insensitive_equality() {
        let a = Name::parse("ExAmPlE.Org").unwrap();
        let b = Name::parse("example.ORG").unwrap();
        assert_eq!(a, b);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h1 = DefaultHasher::new();
        let mut h2 = DefaultHasher::new();
        a.hash(&mut h1);
        b.hash(&mut h2);
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn ends_with_suffix() {
        let n = Name::parse("www.example.org").unwrap();
        assert!(n.ends_with(&Name::parse("example.org").unwrap()));
        assert!(n.ends_with(&Name::parse("org").unwrap()));
        assert!(n.ends_with(&n));
        assert!(n.ends_with(&Name::root()));
        assert!(!n.ends_with(&Name::parse("example.com").unwrap()));
        assert!(!Name::parse("org").unwrap().ends_with(&n));
    }

    #[test]
    fn display_escapes_nonprintable() {
        let n = Name::from_labels(&[&[0x01u8, 0x02][..]]).unwrap();
        assert_eq!(n.to_string(), "\\001\\002");
    }

    #[test]
    fn from_labels_validation() {
        assert!(Name::from_labels(&[&b""[..]]).is_err());
        assert!(Name::from_labels(&[&[b'a'; 64][..]]).is_err());
        let n = Name::from_labels(&[b"a", b"b"]).unwrap();
        assert_eq!(n.to_string(), "a.b");
    }

    #[test]
    fn partial_suffix_match_emits_labels_plus_pointer() {
        // "a.b.example.org" after "example.org": 1+1 + 1+1 + pointer.
        let mut msg = Vec::new();
        let mut table = CompressionMap::new();
        let base = Name::parse("example.org").unwrap();
        let sub = Name::parse("a.b.example.org").unwrap();
        base.encode_compressed(&mut msg, &mut table);
        let first = msg.len();
        sub.encode_compressed(&mut msg, &mut table);
        assert_eq!(msg.len() - first, 2 + 2 + 2);
        let mut pos = first;
        assert_eq!(Name::decode(&msg, &mut pos).unwrap(), sub);
        // The new suffixes are themselves registered: "b.example.org"
        // now compresses to a single pointer.
        let prev = msg.len();
        Name::parse("b.example.org")
            .unwrap()
            .encode_compressed(&mut msg, &mut table);
        assert_eq!(msg.len() - prev, 2);
        let mut pos = prev;
        assert_eq!(
            Name::decode(&msg, &mut pos).unwrap(),
            Name::parse("b.example.org").unwrap()
        );
    }

    #[test]
    fn compression_map_overflow_degrades_gracefully() {
        // More distinct suffixes than CAPACITY: later names cannot all
        // be registered, but every encoding must still decode exactly.
        let mut msg = Vec::new();
        let mut table = CompressionMap::new();
        let names: Vec<Name> = (0..CompressionMap::CAPACITY + 10)
            .map(|i| Name::parse(&format!("h{i}.d{i}.example.org")).unwrap())
            .collect();
        let mut offsets = Vec::new();
        for n in &names {
            offsets.push(msg.len());
            n.encode_compressed(&mut msg, &mut table);
        }
        for (n, &off) in names.iter().zip(&offsets) {
            let mut pos = off;
            assert_eq!(&Name::decode(&msg, &mut pos).unwrap(), n);
        }
    }

    #[test]
    fn equal_hash_different_labels_not_confused() {
        // find() verifies labels against message bytes, so even if two
        // suffixes collided in hash, the wrong offset is rejected. Use
        // names that share length but not content to exercise the
        // verification path.
        let mut msg = Vec::new();
        let mut table = CompressionMap::new();
        let a = Name::parse("aa.example.org").unwrap();
        let b = Name::parse("ab.example.org").unwrap();
        a.encode_compressed(&mut msg, &mut table);
        let first = msg.len();
        b.encode_compressed(&mut msg, &mut table);
        // "ab" must be emitted literally (3 bytes) + pointer (2).
        assert_eq!(msg.len() - first, 5);
        let mut pos = first;
        assert_eq!(Name::decode(&msg, &mut pos).unwrap(), b);
    }

    #[test]
    fn compression_map_clear_reuses_buffer() {
        let mut table = CompressionMap::new();
        let n = Name::parse("www.example.org").unwrap();
        let mut msg = Vec::new();
        n.encode_compressed(&mut msg, &mut table);
        assert_eq!(table.len(), 3);
        assert!(!table.is_empty());
        table.clear();
        msg.clear();
        assert!(table.is_empty());
        // A cleared table must not point into the cleared buffer.
        n.encode_compressed(&mut msg, &mut table);
        assert_eq!(msg.len(), n.wire_len());
        let mut pos = 0;
        assert_eq!(Name::decode(&msg, &mut pos).unwrap(), n);
    }

    #[test]
    fn offsets_beyond_pointer_limit_not_registered() {
        let mut msg = vec![0u8; 0x4000]; // padding past the 14-bit limit
        let mut table = CompressionMap::new();
        let n = Name::parse("example.org").unwrap();
        n.encode_compressed(&mut msg, &mut table);
        assert!(table.is_empty());
        let before = msg.len();
        // Re-encoding cannot point at the unregistered copy.
        n.encode_compressed(&mut msg, &mut table);
        assert_eq!(msg.len() - before, n.wire_len());
    }
}
