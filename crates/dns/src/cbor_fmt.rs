//! `application/dns+cbor` — the compressed DNS message format sketched
//! in §7 of the paper (draft-lenders-dns-cbor).
//!
//! The paper's proposal exploits the transactional context of CoAP:
//!
//! * A **query** is a CBOR array of up to three entries: the name (text
//!   string), an optional record type (unsigned integer) and an
//!   optional record class (unsigned integer). "If record type and
//!   class are elided, DoC implies AAAA and IN."
//! * A **response** "could use only one CBOR array, which contains the
//!   DNS answer section" because it can be matched to its request. Each
//!   answer entry carries a TTL, optionally a name (elided when equal
//!   to the question name), an optional type (elided when equal to the
//!   question type), and the RDATA as a byte string.
//!
//! §7 verifies "the wire-format of an AAAA response packet compresses
//! from 70 bytes down to 24 bytes—a reduction by 66%"; the tests at the
//! bottom of this module reproduce exactly that number from real
//! encodings.

use crate::message::{Message, Question, Rcode};
use crate::name::Name;
use crate::rr::{Record, RecordClass, RecordData, RecordType};
use crate::DnsError;
use doc_crypto::cbor::Value;

/// CoAP Content-Format number provisionally used for
/// `application/dns+cbor` in this workspace (the draft has no IANA
/// allocation; 65053 lies in the experimental range).
pub const CONTENT_FORMAT_DNS_CBOR: u16 = 65053;

/// Encode a DNS query (single question) as dns+cbor.
///
/// Elision rules per §7: type omitted when AAAA, class omitted when IN
/// (class can only be present when type is).
pub fn encode_query(q: &Question) -> Vec<u8> {
    let mut items = vec![Value::Text(q.qname.to_string())];
    let class_elidable = q.qclass == RecordClass::In;
    let type_elidable = q.qtype == RecordType::Aaaa && class_elidable;
    if !type_elidable {
        items.push(Value::Uint(q.qtype.to_u16() as u64));
        if !class_elidable {
            items.push(Value::Uint(q.qclass.to_u16() as u64));
        }
    }
    Value::Array(items).encode()
}

/// Decode a dns+cbor query back into a [`Question`].
pub fn decode_query(data: &[u8]) -> Result<Question, DnsError> {
    let v = Value::decode(data).map_err(|_| DnsError::BadCbor)?;
    let items = v.as_array().ok_or(DnsError::BadCbor)?;
    if items.is_empty() || items.len() > 3 {
        return Err(DnsError::BadCbor);
    }
    let name_text = items[0].as_text().ok_or(DnsError::BadCbor)?;
    let qname = Name::parse(name_text)?;
    let qtype = match items.get(1) {
        Some(v) => RecordType::from_u16(
            u16::try_from(v.as_uint().ok_or(DnsError::BadCbor)?).map_err(|_| DnsError::BadCbor)?,
        ),
        None => RecordType::Aaaa,
    };
    let qclass = match items.get(2) {
        Some(v) => RecordClass::from_u16(
            u16::try_from(v.as_uint().ok_or(DnsError::BadCbor)?).map_err(|_| DnsError::BadCbor)?,
        ),
        None => RecordClass::In,
    };
    Ok(Question {
        qname,
        qtype,
        qclass,
    })
}

/// Encode the answer section of `msg` as a dns+cbor response, eliding
/// data derivable from the request context `q`.
///
/// Answer-entry shape: `[?name(text), ttl(uint), ?type(uint),
/// rdata(bytes)]` — name elided when equal to the question name, type
/// elided when equal to the question type; class is always IN in this
/// profile (matching the paper's data: Table 4 contains only IN).
pub fn encode_response(msg: &Message, q: &Question) -> Vec<u8> {
    let answers: Vec<Value> = msg
        .answers
        .iter()
        .map(|rec| {
            let mut items = Vec::with_capacity(4);
            if rec.name != q.qname {
                items.push(Value::Text(rec.name.to_string()));
            }
            items.push(Value::Uint(rec.ttl as u64));
            if rec.rtype != q.qtype {
                items.push(Value::Uint(rec.rtype.to_u16() as u64));
            }
            let mut rdata = Vec::new();
            rec.data.encode(&mut rdata);
            items.push(Value::Bytes(rdata));
            Value::Array(items)
        })
        .collect();
    Value::Array(answers).encode()
}

/// Decode a dns+cbor response into a full [`Message`], reconstructing
/// elided fields from the request context `q`.
pub fn decode_response(data: &[u8], q: &Question) -> Result<Message, DnsError> {
    let v = Value::decode(data).map_err(|_| DnsError::BadCbor)?;
    let entries = v.as_array().ok_or(DnsError::BadCbor)?;
    let mut answers = Vec::with_capacity(entries.len());
    for entry in entries {
        let items = entry.as_array().ok_or(DnsError::BadCbor)?;
        let mut idx = 0usize;
        // Optional leading name.
        let name = if let Some(Value::Text(t)) = items.first() {
            idx = 1;
            Name::parse(t)?
        } else {
            q.qname.clone()
        };
        let ttl_v = items.get(idx).ok_or(DnsError::BadCbor)?;
        let ttl = u32::try_from(ttl_v.as_uint().ok_or(DnsError::BadCbor)?)
            .map_err(|_| DnsError::BadCbor)?;
        idx += 1;
        // Optional type before the rdata bytes.
        let rtype = if let Some(Value::Uint(t)) = items.get(idx) {
            idx += 1;
            RecordType::from_u16(u16::try_from(*t).map_err(|_| DnsError::BadCbor)?)
        } else {
            q.qtype
        };
        let rdata_bytes = items
            .get(idx)
            .and_then(|v| v.as_bytes())
            .ok_or(DnsError::BadCbor)?;
        if idx + 1 != items.len() {
            return Err(DnsError::BadCbor);
        }
        // Typed decode: RDATA was encoded uncompressed, so it parses as
        // a standalone message slice.
        let data = RecordData::decode(rtype, rdata_bytes, 0, rdata_bytes.len())?;
        answers.push(Record {
            name,
            rtype,
            rclass: RecordClass::In,
            ttl,
            data,
        });
    }
    let query_msg = Message {
        header: crate::message::Header::query(0),
        questions: vec![q.clone()],
        answers: Vec::new(),
        authority: Vec::new(),
        additional: Vec::new(),
    };
    Ok(Message::response(&query_msg, Rcode::NoError, answers))
}

/// Compression ratio (CBOR size / wire size) for a response.
pub fn compression_ratio(msg: &Message, q: &Question) -> f64 {
    let wire = msg.encode().len() as f64;
    let cbor = encode_response(msg, q).len() as f64;
    cbor / wire
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::Ipv6Addr;

    fn q24() -> Question {
        // 24-character name — the paper's canonical median name length.
        let name = Name::parse("name-01234.doc.example.c").unwrap();
        assert_eq!(name.presentation_len(), 24);
        Question::new(name, RecordType::Aaaa)
    }

    fn aaaa_response(q: &Question, ttl: u32) -> Message {
        let query = Message::query(0, q.qname.clone(), q.qtype);
        Message::response(
            &query,
            Rcode::NoError,
            vec![Record::aaaa(
                q.qname.clone(),
                ttl,
                Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, 1),
            )],
        )
    }

    /// Reproduces the paper's §7 numbers: a 70-byte AAAA wire response
    /// compresses to 24 bytes — a 66% reduction.
    #[test]
    fn paper_section7_seventy_to_24_bytes() {
        let q = q24();
        // TTL > 0xFFFF so its CBOR encoding takes the 5-byte form the
        // paper's example implies (e.g. a day-long TTL).
        let resp = aaaa_response(&q, 86_400);
        let wire = resp.encode();
        assert_eq!(wire.len(), 70, "DNS wire format of the AAAA response");
        let cbor = encode_response(&resp, &q);
        assert_eq!(cbor.len(), 24, "dns+cbor encoding of the same response");
        let reduction = 1.0 - cbor.len() as f64 / wire.len() as f64;
        assert!(
            (reduction - 0.657).abs() < 0.01,
            "≈66% reduction, got {reduction}"
        );
    }

    /// Short TTLs compress even further ("up to 70%", abstract).
    #[test]
    fn short_ttl_reduction_up_to_70_percent() {
        let q = q24();
        let resp = aaaa_response(&q, 20); // 1-byte CBOR TTL
        let cbor = encode_response(&resp, &q);
        assert_eq!(cbor.len(), 20);
        let reduction = 1.0 - cbor.len() as f64 / resp.encode().len() as f64;
        assert!(reduction > 0.70, "reduction {reduction} should exceed 70%");
    }

    #[test]
    fn query_elides_aaaa_in() {
        let q = q24();
        let enc = encode_query(&q);
        // array(1) + text header (1 + 1 len byte for 24 chars) + 24
        assert_eq!(enc.len(), 1 + 2 + 24);
        let back = decode_query(&enc).unwrap();
        assert_eq!(back, q);
    }

    #[test]
    fn query_with_explicit_type() {
        let q = Question::new(Name::parse("example.org").unwrap(), RecordType::A);
        let enc = encode_query(&q);
        let back = decode_query(&enc).unwrap();
        assert_eq!(back.qtype, RecordType::A);
        assert_eq!(back.qclass, RecordClass::In);
    }

    #[test]
    fn query_with_explicit_class() {
        let q = Question {
            qname: Name::parse("example.org").unwrap(),
            qtype: RecordType::Txt,
            qclass: RecordClass::Other(3),
        };
        let back = decode_query(&encode_query(&q)).unwrap();
        assert_eq!(back, q);
    }

    #[test]
    fn response_roundtrip_name_and_type_elided() {
        let q = q24();
        let resp = aaaa_response(&q, 300);
        let back = decode_response(&encode_response(&resp, &q), &q).unwrap();
        assert_eq!(back.answers, resp.answers);
        assert_eq!(back.questions, resp.questions);
    }

    #[test]
    fn response_roundtrip_explicit_name_and_type() {
        let q = q24();
        let query = Message::query(0, q.qname.clone(), q.qtype);
        let other_name = Name::parse("cdn.example.net").unwrap();
        let resp = Message::response(
            &query,
            Rcode::NoError,
            vec![
                Record {
                    name: q.qname.clone(),
                    rtype: RecordType::Cname,
                    rclass: RecordClass::In,
                    ttl: 60,
                    data: RecordData::Cname(other_name.clone()),
                },
                Record::aaaa(other_name, 120, "2001:db8::2".parse().unwrap()),
            ],
        );
        let back = decode_response(&encode_response(&resp, &q), &q).unwrap();
        assert_eq!(back.answers, resp.answers);
    }

    #[test]
    fn multi_answer_roundtrip() {
        let q = q24();
        let query = Message::query(0, q.qname.clone(), q.qtype);
        let answers: Vec<Record> = (1..=4u16)
            .map(|i| {
                Record::aaaa(
                    q.qname.clone(),
                    300,
                    Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, i),
                )
            })
            .collect();
        let resp = Message::response(&query, Rcode::NoError, answers);
        let back = decode_response(&encode_response(&resp, &q), &q).unwrap();
        assert_eq!(back.answers.len(), 4);
        assert_eq!(back.answers, resp.answers);
    }

    #[test]
    fn reject_malformed() {
        let q = q24();
        assert!(decode_query(&[0xff]).is_err());
        assert!(decode_query(&Value::Uint(5).encode()).is_err());
        assert!(decode_response(&[0x81, 0x05], &q).is_err()); // answer not array
                                                              // Answer array with trailing garbage element.
        let bad = Value::Array(vec![Value::Array(vec![
            Value::Uint(60),
            Value::Bytes(vec![0u8; 16]),
            Value::Uint(9),
        ])])
        .encode();
        assert!(decode_response(&bad, &q).is_err());
    }

    #[test]
    fn reject_oversized_numbers() {
        let bad = Value::Array(vec![
            Value::Text("example.org".into()),
            Value::Uint(70000), // > u16 type
        ])
        .encode();
        assert!(decode_query(&bad).is_err());
    }

    #[test]
    fn compression_ratio_sane() {
        let q = q24();
        let resp = aaaa_response(&q, 86_400);
        let ratio = compression_ratio(&resp, &q);
        assert!(ratio > 0.2 && ratio < 0.5);
    }
}
