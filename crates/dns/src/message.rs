//! Full DNS messages: header, four sections, encode/decode, and the
//! DoC-specific canonicalization helpers from §4.2 of the paper.

use crate::name::{CompressionMap, Name};
use crate::rr::{Record, RecordClass, RecordType};
use crate::DnsError;

/// DNS opcodes (RFC 1035 §4.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Opcode {
    /// Standard query (0).
    Query,
    /// Anything else, preserved numerically (1..=15).
    Other(u8),
}

impl Opcode {
    fn to_u8(self) -> u8 {
        match self {
            Opcode::Query => 0,
            Opcode::Other(v) => v & 0x0F,
        }
    }
    pub(crate) fn from_u8(v: u8) -> Self {
        match v & 0x0F {
            0 => Opcode::Query,
            other => Opcode::Other(other),
        }
    }
}

/// DNS response codes (RFC 1035 §4.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rcode {
    /// No error (0).
    NoError,
    /// Format error (1).
    FormErr,
    /// Server failure (2).
    ServFail,
    /// Name error / NXDOMAIN (3).
    NxDomain,
    /// Not implemented (4).
    NotImp,
    /// Refused (5).
    Refused,
    /// Anything else (6..=15).
    Other(u8),
}

impl Rcode {
    fn to_u8(self) -> u8 {
        match self {
            Rcode::NoError => 0,
            Rcode::FormErr => 1,
            Rcode::ServFail => 2,
            Rcode::NxDomain => 3,
            Rcode::NotImp => 4,
            Rcode::Refused => 5,
            Rcode::Other(v) => v & 0x0F,
        }
    }
    pub(crate) fn from_u8(v: u8) -> Self {
        match v & 0x0F {
            0 => Rcode::NoError,
            1 => Rcode::FormErr,
            2 => Rcode::ServFail,
            3 => Rcode::NxDomain,
            4 => Rcode::NotImp,
            5 => Rcode::Refused,
            other => Rcode::Other(other),
        }
    }
}

/// The 12-byte DNS message header (RFC 1035 §4.1.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Transaction identifier. DoC sets this to 0 for encrypted
    /// transports to keep the CoAP cache key deterministic (§4.2).
    pub id: u16,
    /// Query (false) or response (true).
    pub qr: bool,
    /// Operation code.
    pub opcode: Opcode,
    /// Authoritative answer.
    pub aa: bool,
    /// Truncation flag.
    pub tc: bool,
    /// Recursion desired.
    pub rd: bool,
    /// Recursion available.
    pub ra: bool,
    /// Response code.
    pub rcode: Rcode,
}

impl Header {
    /// A recursion-desired query header with the given ID.
    pub fn query(id: u16) -> Self {
        Header {
            id,
            qr: false,
            opcode: Opcode::Query,
            aa: false,
            tc: false,
            rd: true,
            ra: false,
            rcode: Rcode::NoError,
        }
    }

    /// A response header answering `query`.
    pub fn response_to(query: &Header, rcode: Rcode) -> Self {
        Header {
            id: query.id,
            qr: true,
            opcode: query.opcode,
            aa: false,
            tc: false,
            rd: query.rd,
            ra: true,
            rcode,
        }
    }
}

/// A question-section entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Question {
    /// Queried name.
    pub qname: Name,
    /// Queried type.
    pub qtype: RecordType,
    /// Queried class.
    pub qclass: RecordClass,
}

impl Question {
    /// An `IN`-class question.
    pub fn new(qname: Name, qtype: RecordType) -> Self {
        Question {
            qname,
            qtype,
            qclass: RecordClass::In,
        }
    }
}

/// Which RR section a record lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Section {
    /// Answer section.
    Answer,
    /// Authority section.
    Authority,
    /// Additional section.
    Additional,
}

/// A complete DNS message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Message header.
    pub header: Header,
    /// Question section. The paper (§3.2) observes real questions
    /// sections always contain exactly 1 entry; this type permits any
    /// count but [`Message::query`] builds the 1-entry form.
    pub questions: Vec<Question>,
    /// Answer section.
    pub answers: Vec<Record>,
    /// Authority section. §3.2: "unsolicited NS records serve little
    /// purpose in a constrained environment and should be omitted" —
    /// [`Message::strip_optional_sections`] implements that lesson.
    pub authority: Vec<Record>,
    /// Additional section.
    pub additional: Vec<Record>,
}

impl Message {
    /// Build a single-question query (the common DoC request shape).
    pub fn query(id: u16, qname: Name, qtype: RecordType) -> Self {
        Message {
            header: Header::query(id),
            questions: vec![Question::new(qname, qtype)],
            answers: Vec::new(),
            authority: Vec::new(),
            additional: Vec::new(),
        }
    }

    /// Build a response to `query` carrying `answers`.
    pub fn response(query: &Message, rcode: Rcode, answers: Vec<Record>) -> Self {
        Message {
            header: Header::response_to(&query.header, rcode),
            questions: query.questions.clone(),
            answers,
            authority: Vec::new(),
            additional: Vec::new(),
        }
    }

    /// Encode to the RFC 1035 wire format (with name compression).
    pub fn encode(&self) -> Vec<u8> {
        // The uncompressed size is an exact upper bound, so the buffer
        // never reallocates while encoding.
        let mut msg = Vec::with_capacity(self.uncompressed_len());
        self.encode_into(&mut msg);
        msg
    }

    /// Wire size this message would have with *no* name compression —
    /// an exact upper bound on (and capacity hint for) the compressed
    /// encoding.
    pub fn uncompressed_len(&self) -> usize {
        12 + self
            .questions
            .iter()
            .map(|q| q.qname.wire_len() + 4)
            .sum::<usize>()
            + self
                .records()
                .map(|(_, r)| r.uncompressed_len())
                .sum::<usize>()
    }

    /// Append the RFC 1035 wire format (with name compression) to an
    /// existing buffer. With a reused (cleared) `out`, the whole encode
    /// performs no heap allocation beyond buffer growth: the
    /// compression state lives in a stack-resident [`CompressionMap`].
    ///
    /// Compression pointers are message-relative, so the zero-copy path
    /// requires the message to start at offset 0. Appending to a
    /// non-empty buffer is still correct — the message is then built
    /// standalone and copied, costing one allocation.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        if !out.is_empty() {
            out.extend_from_slice(&self.encode());
            return;
        }
        let msg = out;
        self.encode_header_into(msg);
        let mut table = CompressionMap::new();
        for q in &self.questions {
            q.qname.encode_compressed(msg, &mut table);
            msg.extend_from_slice(&q.qtype.to_u16().to_be_bytes());
            msg.extend_from_slice(&q.qclass.to_u16().to_be_bytes());
        }
        for rec in self
            .answers
            .iter()
            .chain(&self.authority)
            .chain(&self.additional)
        {
            rec.encode(msg, &mut table);
        }
    }

    /// Encode with *no* name compression: exactly
    /// [`Message::uncompressed_len`] bytes — the baseline wire form the
    /// compression analyses and property tests compare against.
    pub fn encode_uncompressed(&self) -> Vec<u8> {
        let mut msg = Vec::with_capacity(self.uncompressed_len());
        self.encode_header_into(&mut msg);
        for q in &self.questions {
            q.qname.encode(&mut msg);
            msg.extend_from_slice(&q.qtype.to_u16().to_be_bytes());
            msg.extend_from_slice(&q.qclass.to_u16().to_be_bytes());
        }
        for rec in self
            .answers
            .iter()
            .chain(&self.authority)
            .chain(&self.additional)
        {
            rec.encode_uncompressed(&mut msg);
        }
        msg
    }

    /// The 12-byte header: id, flag word, section counts.
    fn encode_header_into(&self, msg: &mut Vec<u8>) {
        msg.extend_from_slice(&self.header.id.to_be_bytes());
        let mut flags = 0u16;
        if self.header.qr {
            flags |= 1 << 15;
        }
        flags |= (self.header.opcode.to_u8() as u16) << 11;
        if self.header.aa {
            flags |= 1 << 10;
        }
        if self.header.tc {
            flags |= 1 << 9;
        }
        if self.header.rd {
            flags |= 1 << 8;
        }
        if self.header.ra {
            flags |= 1 << 7;
        }
        flags |= self.header.rcode.to_u8() as u16;
        msg.extend_from_slice(&flags.to_be_bytes());
        msg.extend_from_slice(&(self.questions.len() as u16).to_be_bytes());
        msg.extend_from_slice(&(self.answers.len() as u16).to_be_bytes());
        msg.extend_from_slice(&(self.authority.len() as u16).to_be_bytes());
        msg.extend_from_slice(&(self.additional.len() as u16).to_be_bytes());
    }

    /// Decode from wire format.
    pub fn decode(msg: &[u8]) -> Result<Self, DnsError> {
        if msg.len() < 12 {
            return Err(DnsError::Truncated);
        }
        let id = u16::from_be_bytes([msg[0], msg[1]]);
        let flags = u16::from_be_bytes([msg[2], msg[3]]);
        let header = Header {
            id,
            qr: flags & (1 << 15) != 0,
            opcode: Opcode::from_u8((flags >> 11) as u8),
            aa: flags & (1 << 10) != 0,
            tc: flags & (1 << 9) != 0,
            rd: flags & (1 << 8) != 0,
            ra: flags & (1 << 7) != 0,
            rcode: Rcode::from_u8(flags as u8),
        };
        let qdcount = u16::from_be_bytes([msg[4], msg[5]]) as usize;
        let ancount = u16::from_be_bytes([msg[6], msg[7]]) as usize;
        let nscount = u16::from_be_bytes([msg[8], msg[9]]) as usize;
        let arcount = u16::from_be_bytes([msg[10], msg[11]]) as usize;
        // Cheap sanity bound: each question needs >= 5 bytes, each RR >= 11.
        let min_len = 12 + qdcount * 5 + (ancount + nscount + arcount) * 11;
        if min_len > msg.len() {
            return Err(DnsError::Inconsistent);
        }

        let mut pos = 12usize;
        let mut questions = Vec::with_capacity(qdcount);
        for _ in 0..qdcount {
            let qname = Name::decode(msg, &mut pos)?;
            let fixed = msg.get(pos..pos + 4).ok_or(DnsError::Truncated)?;
            questions.push(Question {
                qname,
                qtype: RecordType::from_u16(u16::from_be_bytes([fixed[0], fixed[1]])),
                qclass: RecordClass::from_u16(u16::from_be_bytes([fixed[2], fixed[3]])),
            });
            pos += 4;
        }
        let read_section = |count: usize, pos: &mut usize| -> Result<Vec<Record>, DnsError> {
            let mut recs = Vec::with_capacity(count);
            for _ in 0..count {
                recs.push(Record::decode(msg, pos)?);
            }
            Ok(recs)
        };
        let answers = read_section(ancount, &mut pos)?;
        let authority = read_section(nscount, &mut pos)?;
        let additional = read_section(arcount, &mut pos)?;
        Ok(Message {
            header,
            questions,
            answers,
            authority,
            additional,
        })
    }

    /// Iterate all resource records with their section.
    pub fn records(&self) -> impl Iterator<Item = (Section, &Record)> {
        self.answers
            .iter()
            .map(|r| (Section::Answer, r))
            .chain(self.authority.iter().map(|r| (Section::Authority, r)))
            .chain(self.additional.iter().map(|r| (Section::Additional, r)))
    }

    /// Mutable iteration over all records.
    pub fn records_mut(&mut self) -> impl Iterator<Item = &mut Record> {
        self.answers
            .iter_mut()
            .chain(self.authority.iter_mut())
            .chain(self.additional.iter_mut())
    }

    // ------------------------------------------------------------------
    // DoC canonicalization helpers (paper §4.2 / §7)
    // ------------------------------------------------------------------

    /// Set the transaction ID to 0.
    ///
    /// §4.2: "we propose to set this ID to 0 for either encrypted CoAP
    /// mode. This yields a deterministic wire format" — the CoAP cache
    /// key covers the payload (FETCH) or URI (GET), so a varying ID
    /// would defeat en-route caching.
    pub fn canonicalize_id(&mut self) {
        self.header.id = 0;
    }

    /// Minimum TTL across all records, if any record exists.
    ///
    /// The DoC server sets the CoAP `Max-Age` option to this value
    /// (§4.2, both the DoH-like and EOL TTLs schemes).
    pub fn min_ttl(&self) -> Option<u32> {
        self.records().map(|(_, r)| r.ttl).min()
    }

    /// Set every TTL to `ttl`.
    ///
    /// With `ttl = 0` this is the paper's *EOL TTLs* rewrite: "a DoC
    /// server sets the Max-Age CoAP option to the minimum TTL of the
    /// resource records in the DNS response and rewrites all DNS TTLs
    /// to 0", making the payload — and hence the ETag — stable across
    /// TTL decay.
    pub fn set_all_ttls(&mut self, ttl: u32) {
        for r in self.records_mut() {
            r.ttl = ttl;
        }
    }

    /// Subtract `delta` seconds from every TTL (saturating), as a DNS
    /// cache does while content ages (DoH-like scheme, client side).
    pub fn decrement_ttls(&mut self, delta: u32) {
        for r in self.records_mut() {
            r.ttl = r.ttl.saturating_sub(delta);
        }
    }

    /// Add `max_age` seconds to every TTL. A DoC client receiving an
    /// *EOL TTLs* response "copies the CoAP Max-Age into the DNS
    /// resource records to restore the correctly decremented TTL
    /// values" (§4.2).
    pub fn restore_ttls_from_max_age(&mut self, max_age: u32) {
        for r in self.records_mut() {
            r.ttl = r.ttl.saturating_add(max_age);
        }
    }

    /// Drop authority and additional sections (§3.2 lesson: "the
    /// authority and additional sections must only be provided if
    /// necessary").
    pub fn strip_optional_sections(&mut self) {
        self.authority.clear();
        self.additional.clear();
    }

    /// Sort answer records deterministically (by type, then RDATA wire
    /// bytes). §7: "One approach to support load balancing without
    /// altering the message is to sort incoming records at the DoC
    /// server and randomize records at the DoC client."
    pub fn sort_answers(&mut self) {
        self.answers.sort_by(|a, b| {
            a.rtype.to_u16().cmp(&b.rtype.to_u16()).then_with(|| {
                let mut wa = Vec::new();
                let mut wb = Vec::new();
                a.data.encode(&mut wa);
                b.data.encode(&mut wb);
                wa.cmp(&wb).then_with(|| a.name.cmp(&b.name))
            })
        });
    }

    /// Shuffle answers with the given RNG-like permutation seed —
    /// client-side counterpart of [`Message::sort_answers`] (simple LCG
    /// permutation; deterministic per seed for reproducibility).
    pub fn shuffle_answers(&mut self, seed: u64) {
        let n = self.answers.len();
        let mut state = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        for i in (1..n).rev() {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let j = (state >> 33) as usize % (i + 1);
            self.answers.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{Ipv4Addr, Ipv6Addr};

    fn example_query() -> Message {
        Message::query(
            0x1234,
            Name::parse("name0123456.iot.example.org").unwrap(),
            RecordType::Aaaa,
        )
    }

    fn v6(i: u16) -> Ipv6Addr {
        Ipv6Addr::new(0x2001, 0xdb8, 0, 0, 0, 0, 0, i)
    }

    fn example_response(ttl: u32, n: usize) -> Message {
        let q = example_query();
        let name = q.questions[0].qname.clone();
        let answers = (0..n)
            .map(|i| Record::aaaa(name.clone(), ttl, v6(i as u16 + 1)))
            .collect();
        Message::response(&q, Rcode::NoError, answers)
    }

    #[test]
    fn query_roundtrip() {
        let q = example_query();
        let wire = q.encode();
        assert_eq!(Message::decode(&wire).unwrap(), q);
    }

    /// A query for a 24-character name must be 12 (header) + name wire
    /// + 4 bytes = 42 bytes, matching the paper's Fig. 6 query sizes.
    #[test]
    fn query_size_24_char_name() {
        // "name0123456.iot.example.org" is 27 chars; build the paper's
        // canonical 24-char name instead.
        let name = Name::parse("name-012345.doc.example.org").unwrap();
        assert_eq!(name.presentation_len(), 27);
        let name24 = Name::parse("name-0123.c.example.org").unwrap();
        assert_eq!(name24.presentation_len(), 23);
        let q = Message::query(
            0,
            Name::parse("name-01234.c.example.org").unwrap(),
            RecordType::A,
        );
        assert_eq!(q.questions[0].qname.presentation_len(), 24);
        let wire = q.encode();
        // header 12 + name (24 chars + 2 extra length/terminator bytes
        // beyond the dots: wire_len = 24 + 2) + qtype/qclass 4
        assert_eq!(wire.len(), 12 + 26 + 4);
    }

    #[test]
    fn response_roundtrip_multiple_answers() {
        let r = example_response(300, 4);
        let wire = r.encode();
        let back = Message::decode(&wire).unwrap();
        assert_eq!(back, r);
        assert_eq!(back.answers.len(), 4);
    }

    #[test]
    fn encode_into_nonempty_buffer_keeps_pointers_valid() {
        // Appending after framing bytes must not skew compression
        // pointers (they are message-relative, not buffer-relative).
        let r = example_response(300, 4);
        let mut buf = vec![0xAB, 0xCD, 0xEF];
        r.encode_into(&mut buf);
        assert_eq!(Message::decode(&buf[3..]).unwrap(), r);
        assert_eq!(&buf[..3], &[0xAB, 0xCD, 0xEF]);
    }

    #[test]
    fn uncompressed_len_is_exact_upper_bound() {
        for msg in [example_query(), example_response(300, 4)] {
            let wire = msg.encode();
            assert!(wire.len() <= msg.uncompressed_len());
            let flat = msg.encode_uncompressed();
            assert_eq!(flat.len(), msg.uncompressed_len());
            // The uncompressed wire decodes to the same message.
            assert_eq!(Message::decode(&flat).unwrap(), msg);
        }
        // A single-question query has nothing to compress: exact.
        let q = example_query();
        assert_eq!(q.encode().len(), q.uncompressed_len());
    }

    #[test]
    fn compression_reduces_size() {
        let r = example_response(300, 4);
        let wire = r.encode();
        // Without compression each answer would repeat the 29-byte name;
        // with pointers each answer's owner is 2 bytes.
        let name_wire = r.questions[0].qname.wire_len();
        let uncompressed_estimate = 12 + name_wire + 4 + 4 * (name_wire + 10 + 16);
        assert!(wire.len() < uncompressed_estimate - 3 * (name_wire - 2));
    }

    #[test]
    fn header_flags_roundtrip() {
        let mut m = example_query();
        m.header.qr = true;
        m.header.aa = true;
        m.header.tc = true;
        m.header.ra = true;
        m.header.rcode = Rcode::NxDomain;
        m.header.opcode = Opcode::Other(2);
        let back = Message::decode(&m.encode()).unwrap();
        assert_eq!(back.header, m.header);
    }

    #[test]
    fn rcode_mapping() {
        for (code, val) in [
            (Rcode::NoError, 0u8),
            (Rcode::FormErr, 1),
            (Rcode::ServFail, 2),
            (Rcode::NxDomain, 3),
            (Rcode::NotImp, 4),
            (Rcode::Refused, 5),
            (Rcode::Other(9), 9),
        ] {
            assert_eq!(code.to_u8(), val);
            assert_eq!(Rcode::from_u8(val), code);
        }
    }

    #[test]
    fn canonicalize_id_zeroes() {
        let mut q = example_query();
        q.canonicalize_id();
        assert_eq!(q.header.id, 0);
        // Two queries for the same name now have identical wire bytes —
        // the deterministic cache key property of §4.2.
        let mut q2 = Message::query(0x9999, q.questions[0].qname.clone(), RecordType::Aaaa);
        q2.canonicalize_id();
        assert_eq!(q.encode(), q2.encode());
    }

    #[test]
    fn min_ttl_and_rewrite() {
        let mut r = example_response(300, 3);
        r.answers[1].ttl = 42;
        assert_eq!(r.min_ttl(), Some(42));
        r.set_all_ttls(0);
        assert!(r.records().all(|(_, rec)| rec.ttl == 0));
        assert_eq!(r.min_ttl(), Some(0));
        assert_eq!(example_query().min_ttl(), None);
    }

    #[test]
    fn eol_ttl_rewrite_stabilizes_wire_format() {
        // Same answer set, different TTLs -> different wire bytes with
        // DoH-like, identical wire bytes after EOL rewrite.
        let mut r1 = example_response(300, 2);
        let mut r2 = example_response(25, 2);
        assert_ne!(r1.encode(), r2.encode());
        r1.set_all_ttls(0);
        r2.set_all_ttls(0);
        assert_eq!(r1.encode(), r2.encode());
    }

    #[test]
    fn ttl_decrement_saturates() {
        let mut r = example_response(10, 1);
        r.decrement_ttls(25);
        assert_eq!(r.answers[0].ttl, 0);
    }

    #[test]
    fn ttl_restore_from_max_age() {
        let mut r = example_response(300, 2);
        r.set_all_ttls(0);
        r.restore_ttls_from_max_age(123);
        assert!(r.answers.iter().all(|rec| rec.ttl == 123));
    }

    #[test]
    fn strip_optional_sections() {
        let mut r = example_response(60, 1);
        r.authority.push(Record {
            name: Name::parse("example.org").unwrap(),
            rtype: RecordType::Ns,
            rclass: RecordClass::In,
            ttl: 3600,
            data: crate::rr::RecordData::Ns(Name::parse("ns1.example.org").unwrap()),
        });
        r.additional.push(Record::a(
            Name::parse("ns1.example.org").unwrap(),
            3600,
            Ipv4Addr::new(192, 0, 2, 53),
        ));
        let before = r.encode().len();
        r.strip_optional_sections();
        assert!(r.authority.is_empty() && r.additional.is_empty());
        assert!(r.encode().len() < before);
    }

    #[test]
    fn sort_then_shuffle_preserves_set() {
        let mut r = example_response(60, 5);
        r.answers.reverse();
        let mut sorted = r.clone();
        sorted.sort_answers();
        // Sorting is canonical: any permutation sorts to the same order.
        let mut r2 = example_response(60, 5);
        r2.sort_answers();
        assert_eq!(sorted.answers, r2.answers);
        // Shuffle keeps the multiset.
        let mut shuffled = sorted.clone();
        shuffled.shuffle_answers(7);
        let mut a = sorted.answers.clone();
        let mut b = shuffled.answers.clone();
        a.sort_by_key(|r| match &r.data {
            crate::rr::RecordData::Aaaa(ip) => ip.octets(),
            _ => [0; 16],
        });
        b.sort_by_key(|r| match &r.data {
            crate::rr::RecordData::Aaaa(ip) => ip.octets(),
            _ => [0; 16],
        });
        assert_eq!(a, b);
    }

    #[test]
    fn decode_rejects_short_header() {
        assert_eq!(Message::decode(&[0u8; 11]), Err(DnsError::Truncated));
    }

    #[test]
    fn decode_rejects_inflated_counts() {
        let mut wire = example_query().encode();
        // Claim 1000 answers.
        wire[6] = 0x03;
        wire[7] = 0xE8;
        assert_eq!(Message::decode(&wire), Err(DnsError::Inconsistent));
    }

    #[test]
    fn records_iterator_sections() {
        let mut r = example_response(60, 2);
        r.authority.push(r.answers[0].clone());
        r.additional.push(r.answers[1].clone());
        let sections: Vec<Section> = r.records().map(|(s, _)| s).collect();
        assert_eq!(
            sections,
            vec![
                Section::Answer,
                Section::Answer,
                Section::Authority,
                Section::Additional
            ]
        );
    }
}
