//! DNS-Based Service Discovery (RFC 6763) over multicast DNS (RFC
//! 6762) message shapes.
//!
//! §3.2 of the paper observes that IoT devices using DNS-SD query
//! ANY/PTR/SRV/TXT records and produce the long-name tail of Fig. 1
//! (service instances and UUID device names); §7/§8 propose DNS-SD
//! over Group OSCORE as future work, which
//! [`doc_oscore::group`](../../oscore) implements. This module supplies
//! the DNS-SD message layer: service enumeration (PTR browse),
//! instance resolution (SRV + TXT + address records) and the
//! corresponding response construction.

use crate::message::{Message, Question, Rcode};
use crate::name::Name;
use crate::rr::{Record, RecordClass, RecordData, RecordType};
use crate::DnsError;
use std::net::Ipv6Addr;

/// A discoverable service instance
/// (`<instance>.<service>.<proto>.<domain>`, e.g.
/// `Kitchen Cam._coap._udp.local`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceInstance {
    /// Instance label (unescaped UTF-8, e.g. "Kitchen Cam").
    pub instance: String,
    /// Service type incl. protocol, e.g. "_coap._udp".
    pub service: String,
    /// Domain, e.g. "local".
    pub domain: String,
    /// Host offering the service.
    pub target: Name,
    /// Service port.
    pub port: u16,
    /// TXT key=value metadata.
    pub txt: Vec<(String, String)>,
    /// Host address.
    pub address: Ipv6Addr,
}

impl ServiceInstance {
    /// The browse name (`<service>.<domain>`), the owner of PTR
    /// records.
    pub fn service_name(&self) -> Result<Name, DnsError> {
        Name::parse(&format!("{}.{}", self.service, self.domain))
    }

    /// The full instance name (`<instance>.<service>.<domain>`).
    pub fn instance_name(&self) -> Result<Name, DnsError> {
        let mut labels: Vec<Vec<u8>> = vec![self.instance.as_bytes().to_vec()];
        for part in self.service.split('.') {
            labels.push(part.as_bytes().to_vec());
        }
        for part in self.domain.split('.') {
            labels.push(part.as_bytes().to_vec());
        }
        Name::from_labels(&labels)
    }

    /// TXT RDATA strings (`key=value` character strings, RFC 6763 §6).
    pub fn txt_strings(&self) -> Vec<Vec<u8>> {
        if self.txt.is_empty() {
            // RFC 6763 §6.1: an empty TXT record contains one zero
            // bytes string.
            return vec![Vec::new()];
        }
        self.txt
            .iter()
            .map(|(k, v)| format!("{k}={v}").into_bytes())
            .collect()
    }
}

/// Build a PTR browse query for a service type ("which instances of
/// `_coap._udp.local` exist?").
pub fn browse_query(service: &str, domain: &str, id: u16) -> Result<Message, DnsError> {
    let qname = Name::parse(&format!("{service}.{domain}"))?;
    Ok(Message::query(id, qname, RecordType::Ptr))
}

/// Build the browse response: one PTR per instance, with the SRV/TXT/
/// AAAA records in the additional section (RFC 6763 §12.1 additional-
/// record rules — the efficient single-exchange form mDNS responders
/// use).
pub fn browse_response(
    query: &Message,
    instances: &[ServiceInstance],
    ttl: u32,
) -> Result<Message, DnsError> {
    let mut answers = Vec::new();
    let mut additional = Vec::new();
    for inst in instances {
        let service_name = inst.service_name()?;
        let instance_name = inst.instance_name()?;
        answers.push(Record {
            name: service_name,
            rtype: RecordType::Ptr,
            rclass: RecordClass::In,
            ttl,
            data: RecordData::Ptr(instance_name.clone()),
        });
        additional.push(Record {
            name: instance_name.clone(),
            rtype: RecordType::Srv,
            rclass: RecordClass::In,
            ttl,
            data: RecordData::Srv {
                priority: 0,
                weight: 0,
                port: inst.port,
                target: inst.target.clone(),
            },
        });
        additional.push(Record {
            name: instance_name,
            rtype: RecordType::Txt,
            rclass: RecordClass::In,
            ttl,
            data: RecordData::Txt(inst.txt_strings()),
        });
        additional.push(Record::aaaa(inst.target.clone(), ttl, inst.address));
    }
    let mut resp = Message::response(query, Rcode::NoError, answers);
    resp.additional = additional;
    Ok(resp)
}

/// Parse a browse response back into discovered instances. Follows the
/// PTR answers into the additional section for SRV/TXT/AAAA.
pub fn parse_browse_response(resp: &Message) -> Result<Vec<ServiceInstance>, DnsError> {
    let mut out = Vec::new();
    for ptr in resp.answers.iter().filter(|r| r.rtype == RecordType::Ptr) {
        let RecordData::Ptr(instance_name) = &ptr.data else {
            return Err(DnsError::BadRdata);
        };
        // Decompose <instance>.<service..>.<domain> heuristically:
        // instance = first label; service = labels starting with '_';
        // domain = the rest.
        let labels = instance_name.labels();
        if labels.len() < 3 {
            return Err(DnsError::BadLabel);
        }
        let instance = String::from_utf8_lossy(&labels[0]).into_owned();
        let service_labels: Vec<String> = labels[1..]
            .iter()
            .take_while(|l| l.first() == Some(&b'_'))
            .map(|l| String::from_utf8_lossy(l).into_owned())
            .collect();
        let domain_labels: Vec<String> = labels[1 + service_labels.len()..]
            .iter()
            .map(|l| String::from_utf8_lossy(l).into_owned())
            .collect();

        let srv = resp
            .additional
            .iter()
            .find(|r| r.rtype == RecordType::Srv && &r.name == instance_name)
            .ok_or(DnsError::Inconsistent)?;
        let RecordData::Srv { port, target, .. } = &srv.data else {
            return Err(DnsError::BadRdata);
        };
        let txt = resp
            .additional
            .iter()
            .find(|r| r.rtype == RecordType::Txt && &r.name == instance_name)
            .map(|r| match &r.data {
                RecordData::Txt(strings) => strings
                    .iter()
                    .filter_map(|s| {
                        let s = String::from_utf8_lossy(s);
                        s.split_once('=')
                            .map(|(k, v)| (k.to_string(), v.to_string()))
                    })
                    .collect(),
                _ => Vec::new(),
            })
            .unwrap_or_default();
        let address = resp
            .additional
            .iter()
            .find(|r| r.rtype == RecordType::Aaaa && r.name == *target)
            .and_then(|r| match r.data {
                RecordData::Aaaa(a) => Some(a),
                _ => None,
            })
            .ok_or(DnsError::Inconsistent)?;
        out.push(ServiceInstance {
            instance,
            service: service_labels.join("."),
            domain: domain_labels.join("."),
            target: target.clone(),
            port: *port,
            txt,
            address,
        });
    }
    Ok(out)
}

/// Whether a question targets the mDNS service-discovery record space
/// (ANY/PTR/SRV/TXT — the types Table 4 attributes to mDNS).
pub fn is_service_discovery(q: &Question) -> bool {
    matches!(
        q.qtype,
        RecordType::Any | RecordType::Ptr | RecordType::Srv | RecordType::Txt
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn camera() -> ServiceInstance {
        ServiceInstance {
            instance: "kitchen-cam".into(),
            service: "_coap._udp".into(),
            domain: "local".into(),
            target: Name::parse("cam-1234.local").unwrap(),
            port: 5683,
            txt: vec![("path".into(), "/dns".into()), ("v".into(), "1".into())],
            address: "fe80::1".parse().unwrap(),
        }
    }

    #[test]
    fn names_compose() {
        let c = camera();
        assert_eq!(c.service_name().unwrap().to_string(), "_coap._udp.local");
        assert_eq!(
            c.instance_name().unwrap().to_string(),
            "kitchen-cam._coap._udp.local"
        );
    }

    #[test]
    fn browse_roundtrip() {
        let q = browse_query("_coap._udp", "local", 1).unwrap();
        assert_eq!(q.questions[0].qtype, RecordType::Ptr);
        let instances = vec![camera(), {
            let mut c = camera();
            c.instance = "hall-sensor".into();
            c.target = Name::parse("sensor-9.local").unwrap();
            c.address = "fe80::2".parse().unwrap();
            c
        }];
        let resp = browse_response(&q, &instances, 120).unwrap();
        assert_eq!(resp.answers.len(), 2);
        assert_eq!(resp.additional.len(), 6);
        // Full wire round-trip first.
        let wire = resp.encode();
        let back = Message::decode(&wire).unwrap();
        let found = parse_browse_response(&back).unwrap();
        assert_eq!(found, instances);
    }

    #[test]
    fn empty_txt_is_single_empty_string() {
        let mut c = camera();
        c.txt.clear();
        assert_eq!(c.txt_strings(), vec![Vec::<u8>::new()]);
    }

    /// §3.2: DNS-SD instance names drive the long-name tail of Fig. 1.
    #[test]
    fn instance_names_are_long() {
        let mut c = camera();
        c.instance = "70ee50a3-4f84-4e3b-b9ac-1f6a7f9d2b31".into(); // UUID
        let n = c.instance_name().unwrap();
        assert!(n.presentation_len() > 50, "{}", n.presentation_len());
    }

    #[test]
    fn service_discovery_classification() {
        let ptr = Question::new(Name::parse("_coap._udp.local").unwrap(), RecordType::Ptr);
        assert!(is_service_discovery(&ptr));
        let aaaa = Question::new(Name::parse("example.org").unwrap(), RecordType::Aaaa);
        assert!(!is_service_discovery(&aaaa));
    }

    #[test]
    fn missing_srv_rejected() {
        let q = browse_query("_coap._udp", "local", 1).unwrap();
        let mut resp = browse_response(&q, &[camera()], 120).unwrap();
        resp.additional.retain(|r| r.rtype != RecordType::Srv);
        assert_eq!(parse_browse_response(&resp), Err(DnsError::Inconsistent));
    }

    #[test]
    fn missing_address_rejected() {
        let q = browse_query("_coap._udp", "local", 1).unwrap();
        let mut resp = browse_response(&q, &[camera()], 120).unwrap();
        resp.additional.retain(|r| r.rtype != RecordType::Aaaa);
        assert_eq!(parse_browse_response(&resp), Err(DnsError::Inconsistent));
    }
}
