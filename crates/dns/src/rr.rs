//! Resource records: types, classes, typed RDATA.
//!
//! The record-type coverage follows the paper's Table 4 — the types
//! actually queried by IoT devices and at the IXP: A, AAAA, ANY, HTTPS,
//! NS, PTR, SRV, TXT — plus CNAME/SOA/OPT which any practical resolver
//! path encounters.

use crate::name::{CompressionMap, Name};
use crate::DnsError;
use std::net::{Ipv4Addr, Ipv6Addr};

/// DNS RR TYPE values (RFC 1035 §3.2.2 and friends).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum RecordType {
    /// IPv4 host address (1).
    A,
    /// Authoritative name server (2).
    Ns,
    /// Canonical name (5).
    Cname,
    /// Start of authority (6).
    Soa,
    /// Domain name pointer (12).
    Ptr,
    /// Text strings (16).
    Txt,
    /// IPv6 host address (28).
    Aaaa,
    /// Server selection (33, RFC 2782).
    Srv,
    /// EDNS(0) pseudo-record (41).
    Opt,
    /// HTTPS service binding (65, RFC 9460).
    Https,
    /// Query-only: all records (255).
    Any,
    /// Anything else, preserved numerically.
    Other(u16),
}

impl RecordType {
    /// Numeric TYPE value.
    pub fn to_u16(self) -> u16 {
        match self {
            RecordType::A => 1,
            RecordType::Ns => 2,
            RecordType::Cname => 5,
            RecordType::Soa => 6,
            RecordType::Ptr => 12,
            RecordType::Txt => 16,
            RecordType::Aaaa => 28,
            RecordType::Srv => 33,
            RecordType::Opt => 41,
            RecordType::Https => 65,
            RecordType::Any => 255,
            RecordType::Other(v) => v,
        }
    }

    /// From numeric TYPE value.
    pub fn from_u16(v: u16) -> Self {
        match v {
            1 => RecordType::A,
            2 => RecordType::Ns,
            5 => RecordType::Cname,
            6 => RecordType::Soa,
            12 => RecordType::Ptr,
            16 => RecordType::Txt,
            28 => RecordType::Aaaa,
            33 => RecordType::Srv,
            41 => RecordType::Opt,
            65 => RecordType::Https,
            255 => RecordType::Any,
            other => RecordType::Other(other),
        }
    }
}

impl core::fmt::Display for RecordType {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            RecordType::A => write!(f, "A"),
            RecordType::Ns => write!(f, "NS"),
            RecordType::Cname => write!(f, "CNAME"),
            RecordType::Soa => write!(f, "SOA"),
            RecordType::Ptr => write!(f, "PTR"),
            RecordType::Txt => write!(f, "TXT"),
            RecordType::Aaaa => write!(f, "AAAA"),
            RecordType::Srv => write!(f, "SRV"),
            RecordType::Opt => write!(f, "OPT"),
            RecordType::Https => write!(f, "HTTPS"),
            RecordType::Any => write!(f, "ANY"),
            RecordType::Other(v) => write!(f, "TYPE{v}"),
        }
    }
}

/// DNS CLASS values.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecordClass {
    /// The Internet (1) — the only class the paper's data contains.
    In,
    /// Anything else, preserved numerically.
    Other(u16),
}

impl RecordClass {
    /// Numeric CLASS value.
    pub fn to_u16(self) -> u16 {
        match self {
            RecordClass::In => 1,
            RecordClass::Other(v) => v,
        }
    }

    /// From numeric CLASS value.
    pub fn from_u16(v: u16) -> Self {
        match v {
            1 => RecordClass::In,
            other => RecordClass::Other(other),
        }
    }
}

/// Typed RDATA.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RecordData {
    /// A: IPv4 address.
    A(Ipv4Addr),
    /// AAAA: IPv6 address.
    Aaaa(Ipv6Addr),
    /// NS: name-server name.
    Ns(Name),
    /// CNAME: canonical name.
    Cname(Name),
    /// PTR: pointer name.
    Ptr(Name),
    /// TXT: one or more character strings.
    Txt(Vec<Vec<u8>>),
    /// SRV: priority, weight, port, target (RFC 2782).
    Srv {
        /// Target-selection priority.
        priority: u16,
        /// Relative weight among same-priority targets.
        weight: u16,
        /// Service port.
        port: u16,
        /// Target host name.
        target: Name,
    },
    /// SOA (RFC 1035 §3.3.13).
    Soa {
        /// Primary name server.
        mname: Name,
        /// Responsible mailbox.
        rname: Name,
        /// Zone serial.
        serial: u32,
        /// Refresh interval.
        refresh: u32,
        /// Retry interval.
        retry: u32,
        /// Expire limit.
        expire: u32,
        /// Negative-caching TTL.
        minimum: u32,
    },
    /// HTTPS (SVCB form, RFC 9460): priority, target, raw params.
    Https {
        /// SvcPriority.
        priority: u16,
        /// TargetName.
        target: Name,
        /// SvcParams, kept opaque.
        params: Vec<u8>,
    },
    /// Unknown/opaque RDATA, preserved verbatim.
    Raw(Vec<u8>),
}

impl RecordData {
    /// The record type naturally described by this RDATA (Raw defaults
    /// to the caller-supplied type in [`Record`]).
    pub fn natural_type(&self) -> Option<RecordType> {
        match self {
            RecordData::A(_) => Some(RecordType::A),
            RecordData::Aaaa(_) => Some(RecordType::Aaaa),
            RecordData::Ns(_) => Some(RecordType::Ns),
            RecordData::Cname(_) => Some(RecordType::Cname),
            RecordData::Ptr(_) => Some(RecordType::Ptr),
            RecordData::Txt(_) => Some(RecordType::Txt),
            RecordData::Srv { .. } => Some(RecordType::Srv),
            RecordData::Soa { .. } => Some(RecordType::Soa),
            RecordData::Https { .. } => Some(RecordType::Https),
            RecordData::Raw(_) => None,
        }
    }

    /// Wire length of this RDATA, computed without encoding.
    pub fn encoded_len(&self) -> usize {
        match self {
            RecordData::A(_) => 4,
            RecordData::Aaaa(_) => 16,
            RecordData::Ns(n) | RecordData::Cname(n) | RecordData::Ptr(n) => n.wire_len(),
            RecordData::Txt(strings) => strings.iter().map(|s| 1 + s.len()).sum(),
            RecordData::Srv { target, .. } => 6 + target.wire_len(),
            RecordData::Soa { mname, rname, .. } => mname.wire_len() + rname.wire_len() + 20,
            RecordData::Https { target, params, .. } => 2 + target.wire_len() + params.len(),
            RecordData::Raw(data) => data.len(),
        }
    }

    /// Encode RDATA (uncompressed names — RFC 3597 forbids compression
    /// in RDATA of newer types; for simplicity and cache-key stability
    /// DoC never compresses RDATA names).
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            RecordData::A(a) => out.extend_from_slice(&a.octets()),
            RecordData::Aaaa(a) => out.extend_from_slice(&a.octets()),
            RecordData::Ns(n) | RecordData::Cname(n) | RecordData::Ptr(n) => n.encode(out),
            RecordData::Txt(strings) => {
                for s in strings {
                    out.push(s.len() as u8);
                    out.extend_from_slice(s);
                }
            }
            RecordData::Srv {
                priority,
                weight,
                port,
                target,
            } => {
                out.extend_from_slice(&priority.to_be_bytes());
                out.extend_from_slice(&weight.to_be_bytes());
                out.extend_from_slice(&port.to_be_bytes());
                target.encode(out);
            }
            RecordData::Soa {
                mname,
                rname,
                serial,
                refresh,
                retry,
                expire,
                minimum,
            } => {
                mname.encode(out);
                rname.encode(out);
                out.extend_from_slice(&serial.to_be_bytes());
                out.extend_from_slice(&refresh.to_be_bytes());
                out.extend_from_slice(&retry.to_be_bytes());
                out.extend_from_slice(&expire.to_be_bytes());
                out.extend_from_slice(&minimum.to_be_bytes());
            }
            RecordData::Https {
                priority,
                target,
                params,
            } => {
                out.extend_from_slice(&priority.to_be_bytes());
                target.encode(out);
                out.extend_from_slice(params);
            }
            RecordData::Raw(data) => out.extend_from_slice(data),
        }
    }

    /// Decode RDATA of `rtype` from `msg[rdata_start..rdata_start+rdlen]`.
    ///
    /// `msg` is the whole message so that compressed names inside legacy
    /// RDATA (NS/CNAME/PTR/SOA from real resolvers) can be followed.
    pub fn decode(
        rtype: RecordType,
        msg: &[u8],
        rdata_start: usize,
        rdlen: usize,
    ) -> Result<Self, DnsError> {
        let end = rdata_start
            .checked_add(rdlen)
            .filter(|&e| e <= msg.len())
            .ok_or(DnsError::Truncated)?;
        let slice = &msg[rdata_start..end];
        match rtype {
            RecordType::A => {
                let arr: [u8; 4] = slice.try_into().map_err(|_| DnsError::BadRdata)?;
                Ok(RecordData::A(Ipv4Addr::from(arr)))
            }
            RecordType::Aaaa => {
                let arr: [u8; 16] = slice.try_into().map_err(|_| DnsError::BadRdata)?;
                Ok(RecordData::Aaaa(Ipv6Addr::from(arr)))
            }
            RecordType::Ns | RecordType::Cname | RecordType::Ptr => {
                let mut pos = rdata_start;
                let name = Name::decode(msg, &mut pos)?;
                if pos > end {
                    return Err(DnsError::BadRdata);
                }
                Ok(match rtype {
                    RecordType::Ns => RecordData::Ns(name),
                    RecordType::Cname => RecordData::Cname(name),
                    _ => RecordData::Ptr(name),
                })
            }
            RecordType::Txt => {
                let mut strings = Vec::new();
                let mut i = 0usize;
                while i < slice.len() {
                    let l = slice[i] as usize;
                    let s = slice.get(i + 1..i + 1 + l).ok_or(DnsError::BadRdata)?;
                    strings.push(s.to_vec());
                    i += 1 + l;
                }
                Ok(RecordData::Txt(strings))
            }
            RecordType::Srv => {
                if slice.len() < 7 {
                    return Err(DnsError::BadRdata);
                }
                let priority = u16::from_be_bytes([slice[0], slice[1]]);
                let weight = u16::from_be_bytes([slice[2], slice[3]]);
                let port = u16::from_be_bytes([slice[4], slice[5]]);
                let mut pos = rdata_start + 6;
                let target = Name::decode(msg, &mut pos)?;
                if pos > end {
                    return Err(DnsError::BadRdata);
                }
                Ok(RecordData::Srv {
                    priority,
                    weight,
                    port,
                    target,
                })
            }
            RecordType::Soa => {
                let mut pos = rdata_start;
                let mname = Name::decode(msg, &mut pos)?;
                let rname = Name::decode(msg, &mut pos)?;
                let fixed = msg.get(pos..pos + 20).ok_or(DnsError::BadRdata)?;
                if pos + 20 > end {
                    return Err(DnsError::BadRdata);
                }
                let word = |i: usize| {
                    u32::from_be_bytes([fixed[i], fixed[i + 1], fixed[i + 2], fixed[i + 3]])
                };
                Ok(RecordData::Soa {
                    mname,
                    rname,
                    serial: word(0),
                    refresh: word(4),
                    retry: word(8),
                    expire: word(12),
                    minimum: word(16),
                })
            }
            RecordType::Https => {
                if slice.len() < 3 {
                    return Err(DnsError::BadRdata);
                }
                let priority = u16::from_be_bytes([slice[0], slice[1]]);
                let mut pos = rdata_start + 2;
                let target = Name::decode(msg, &mut pos)?;
                if pos > end {
                    return Err(DnsError::BadRdata);
                }
                Ok(RecordData::Https {
                    priority,
                    target,
                    params: msg[pos..end].to_vec(),
                })
            }
            _ => Ok(RecordData::Raw(slice.to_vec())),
        }
    }
}

/// A complete resource record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Owner name.
    pub name: Name,
    /// Record type (authoritative even for `RecordData::Raw`).
    pub rtype: RecordType,
    /// Record class.
    pub rclass: RecordClass,
    /// Time to live in seconds.
    pub ttl: u32,
    /// Typed record data.
    pub data: RecordData,
}

impl Record {
    /// Convenience constructor for an A record.
    pub fn a(name: Name, ttl: u32, addr: Ipv4Addr) -> Self {
        Record {
            name,
            rtype: RecordType::A,
            rclass: RecordClass::In,
            ttl,
            data: RecordData::A(addr),
        }
    }

    /// Convenience constructor for an AAAA record.
    pub fn aaaa(name: Name, ttl: u32, addr: Ipv6Addr) -> Self {
        Record {
            name,
            rtype: RecordType::Aaaa,
            rclass: RecordClass::In,
            ttl,
            data: RecordData::Aaaa(addr),
        }
    }

    /// Wire length of this record with its owner name *uncompressed* —
    /// an exact upper bound on the compressed encoding.
    pub fn uncompressed_len(&self) -> usize {
        self.name.wire_len() + 10 + self.data.encoded_len()
    }

    /// Encode this record (name uncompressed unless a compression table
    /// is threaded by the caller in [`crate::message`]).
    pub fn encode(&self, msg: &mut Vec<u8>, table: &mut CompressionMap) {
        self.name.encode_compressed(msg, table);
        self.encode_after_name(msg);
    }

    /// Encode this record with its owner name uncompressed — the
    /// baseline the compression analyses (and the compression property
    /// test) compare against.
    pub fn encode_uncompressed(&self, msg: &mut Vec<u8>) {
        self.name.encode(msg);
        self.encode_after_name(msg);
    }

    /// Fixed RR fields + length-prefixed RDATA after the owner name.
    fn encode_after_name(&self, msg: &mut Vec<u8>) {
        msg.extend_from_slice(&self.rtype.to_u16().to_be_bytes());
        msg.extend_from_slice(&self.rclass.to_u16().to_be_bytes());
        msg.extend_from_slice(&self.ttl.to_be_bytes());
        let rdlen_pos = msg.len();
        msg.extend_from_slice(&[0, 0]);
        let rdata_start = msg.len();
        self.data.encode(msg);
        let rdlen = (msg.len() - rdata_start) as u16;
        msg[rdlen_pos..rdlen_pos + 2].copy_from_slice(&rdlen.to_be_bytes());
    }

    /// Decode one record from `msg` at `*pos`.
    pub fn decode(msg: &[u8], pos: &mut usize) -> Result<Self, DnsError> {
        let name = Name::decode(msg, pos)?;
        let fixed = msg.get(*pos..*pos + 10).ok_or(DnsError::Truncated)?;
        let rtype = RecordType::from_u16(u16::from_be_bytes([fixed[0], fixed[1]]));
        let rclass = RecordClass::from_u16(u16::from_be_bytes([fixed[2], fixed[3]]));
        let ttl = u32::from_be_bytes([fixed[4], fixed[5], fixed[6], fixed[7]]);
        let rdlen = u16::from_be_bytes([fixed[8], fixed[9]]) as usize;
        *pos += 10;
        let data = RecordData::decode(rtype, msg, *pos, rdlen)?;
        *pos += rdlen;
        Ok(Record {
            name,
            rtype,
            rclass,
            ttl,
            data,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(rec: &Record) -> Record {
        let mut msg = Vec::new();
        let mut table = CompressionMap::new();
        rec.encode(&mut msg, &mut table);
        let mut pos = 0;
        let back = Record::decode(&msg, &mut pos).unwrap();
        assert_eq!(pos, msg.len());
        back
    }

    #[test]
    fn a_record_roundtrip() {
        let rec = Record::a(
            Name::parse("example.org").unwrap(),
            300,
            Ipv4Addr::new(192, 0, 2, 1),
        );
        assert_eq!(roundtrip(&rec), rec);
    }

    #[test]
    fn aaaa_record_roundtrip() {
        let rec = Record::aaaa(
            Name::parse("example.org").unwrap(),
            3600,
            "2001:db8::1".parse().unwrap(),
        );
        assert_eq!(roundtrip(&rec), rec);
    }

    #[test]
    fn aaaa_rdata_is_16_bytes() {
        let rec = Record::aaaa(
            Name::parse("x.y").unwrap(),
            1,
            "2001:db8::1".parse().unwrap(),
        );
        let mut msg = Vec::new();
        rec.encode(&mut msg, &mut CompressionMap::new());
        // name(5) + type(2) + class(2) + ttl(4) + rdlen(2) + rdata(16)
        assert_eq!(msg.len(), 5 + 2 + 2 + 4 + 2 + 16);
    }

    #[test]
    fn txt_roundtrip() {
        let rec = Record {
            name: Name::parse("_service._tcp.local").unwrap(),
            rtype: RecordType::Txt,
            rclass: RecordClass::In,
            ttl: 120,
            data: RecordData::Txt(vec![b"path=/".to_vec(), b"v=1".to_vec()]),
        };
        assert_eq!(roundtrip(&rec), rec);
    }

    #[test]
    fn srv_roundtrip() {
        let rec = Record {
            name: Name::parse("_coap._udp.example.org").unwrap(),
            rtype: RecordType::Srv,
            rclass: RecordClass::In,
            ttl: 60,
            data: RecordData::Srv {
                priority: 10,
                weight: 5,
                port: 5683,
                target: Name::parse("gw.example.org").unwrap(),
            },
        };
        assert_eq!(roundtrip(&rec), rec);
    }

    #[test]
    fn soa_roundtrip() {
        let rec = Record {
            name: Name::parse("example.org").unwrap(),
            rtype: RecordType::Soa,
            rclass: RecordClass::In,
            ttl: 86400,
            data: RecordData::Soa {
                mname: Name::parse("ns1.example.org").unwrap(),
                rname: Name::parse("admin.example.org").unwrap(),
                serial: 2023092601,
                refresh: 7200,
                retry: 3600,
                expire: 1209600,
                minimum: 300,
            },
        };
        assert_eq!(roundtrip(&rec), rec);
    }

    #[test]
    fn https_roundtrip() {
        let rec = Record {
            name: Name::parse("example.org").unwrap(),
            rtype: RecordType::Https,
            rclass: RecordClass::In,
            ttl: 300,
            data: RecordData::Https {
                priority: 1,
                target: Name::root(),
                params: vec![0, 1, 0, 3, 2, b'h', b'2'],
            },
        };
        assert_eq!(roundtrip(&rec), rec);
    }

    #[test]
    fn unknown_type_preserved() {
        let rec = Record {
            name: Name::parse("x.example").unwrap(),
            rtype: RecordType::Other(4242),
            rclass: RecordClass::In,
            ttl: 5,
            data: RecordData::Raw(vec![1, 2, 3, 4, 5]),
        };
        assert_eq!(roundtrip(&rec), rec);
    }

    #[test]
    fn type_code_mapping_roundtrip() {
        for v in [1u16, 2, 5, 6, 12, 16, 28, 33, 41, 65, 255, 999] {
            assert_eq!(RecordType::from_u16(v).to_u16(), v);
        }
        assert_eq!(RecordType::Aaaa.to_string(), "AAAA");
        assert_eq!(RecordType::Other(999).to_string(), "TYPE999");
    }

    #[test]
    fn bad_rdata_rejected() {
        // A record with 3-byte RDATA.
        let mut msg = Vec::new();
        Name::parse("a.b").unwrap().encode(&mut msg);
        msg.extend_from_slice(&1u16.to_be_bytes()); // A
        msg.extend_from_slice(&1u16.to_be_bytes()); // IN
        msg.extend_from_slice(&60u32.to_be_bytes());
        msg.extend_from_slice(&3u16.to_be_bytes()); // rdlen = 3
        msg.extend_from_slice(&[1, 2, 3]);
        let mut pos = 0;
        assert_eq!(Record::decode(&msg, &mut pos), Err(DnsError::BadRdata));
    }

    #[test]
    fn truncated_header_rejected() {
        let mut msg = Vec::new();
        Name::parse("a.b").unwrap().encode(&mut msg);
        msg.extend_from_slice(&[0, 1, 0]); // incomplete fixed part
        let mut pos = 0;
        assert_eq!(Record::decode(&msg, &mut pos), Err(DnsError::Truncated));
    }

    #[test]
    fn rdlen_beyond_message_rejected() {
        let mut msg = Vec::new();
        Name::parse("a.b").unwrap().encode(&mut msg);
        msg.extend_from_slice(&16u16.to_be_bytes()); // TXT
        msg.extend_from_slice(&1u16.to_be_bytes());
        msg.extend_from_slice(&0u32.to_be_bytes());
        msg.extend_from_slice(&200u16.to_be_bytes()); // rdlen too large
        msg.push(0);
        let mut pos = 0;
        assert_eq!(Record::decode(&msg, &mut pos), Err(DnsError::Truncated));
    }
}
