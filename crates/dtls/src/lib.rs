//! `doc-dtls` — DTLS 1.2 (RFC 6347) with the PSK key exchange (RFC
//! 4279) and the `TLS_PSK_WITH_AES_128_CCM_8` cipher suite (RFC 6655),
//! exactly the configuration the paper evaluates ("With DTLSv1.2 we use
//! the AES-128-CCM-8 cipher suite … pre-shared key lengths are 9
//! bytes").
//!
//! * [`record`] — the 13-byte DTLS record layer, epoch/sequence
//!   numbers, the CCM cipher state with RFC 6655 partially-explicit
//!   nonces, and a 64-entry sliding replay window.
//! * [`handshake`] — handshake message codecs with byte-accurate wire
//!   sizes: ClientHello, HelloVerifyRequest (cookie exchange),
//!   ServerHello, ServerHelloDone, ClientKeyExchange (PSK identity),
//!   ChangeCipherSpec and Finished — the eight flights whose frame
//!   sizes appear in the paper's Fig. 6 "Session setup" panels.
//! * [`connection`] — sans-IO client/server state machines: flight
//!   retransmission, the RFC 5246 §8.1 key schedule
//!   (master secret → key block), Finished verification over the
//!   handshake transcript, and post-handshake application-data
//!   protection.
//!
//! Like every protocol crate in this workspace the implementation is
//! sans-IO and driven with explicit millisecond timestamps, so the
//! simulator can reproduce handshake timing behaviour deterministically.

pub mod connection;
pub mod handshake;
pub mod record;

pub use connection::{DtlsClient, DtlsEvent, DtlsServer};
pub use record::{Record, RecordView};

/// Errors produced by the DTLS layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DtlsError {
    /// Record or handshake message was truncated/malformed.
    Malformed,
    /// Record failed authentication or decryption.
    Crypto,
    /// A replayed record was detected and dropped.
    Replay,
    /// A handshake message arrived in the wrong state.
    UnexpectedMessage,
    /// The Finished verify_data did not match the transcript.
    BadFinished,
    /// The peer's cookie did not match.
    BadCookie,
    /// The proposed cipher suite is not supported.
    BadCipherSuite,
    /// The handshake has not completed yet.
    NotConnected,
}

impl core::fmt::Display for DtlsError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DtlsError::Malformed => write!(f, "malformed DTLS data"),
            DtlsError::Crypto => write!(f, "DTLS record failed decryption"),
            DtlsError::Replay => write!(f, "replayed DTLS record"),
            DtlsError::UnexpectedMessage => write!(f, "unexpected handshake message"),
            DtlsError::BadFinished => write!(f, "Finished verification failed"),
            DtlsError::BadCookie => write!(f, "cookie verification failed"),
            DtlsError::BadCipherSuite => write!(f, "unsupported cipher suite"),
            DtlsError::NotConnected => write!(f, "handshake not complete"),
        }
    }
}

impl std::error::Error for DtlsError {}
