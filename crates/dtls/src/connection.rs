//! Sans-IO DTLS 1.2 PSK client and server connections.
//!
//! Implements the cookie-exchange handshake of RFC 6347 §4.2 with the
//! PSK key exchange — the exact message sequence of the paper's Fig. 6
//! "Session setup" panel:
//!
//! ```text
//! C -> S  ClientHello
//! S -> C  HelloVerifyRequest
//! C -> S  ClientHello[Cookie]
//! S -> C  ServerHello
//! S -> C  ServerHelloDone
//! C -> S  ClientKeyExchange
//! C -> S  ChangeCipherSpec (+ Finished)
//! S -> C  ChangeCipherSpec + Finished
//! ```
//!
//! Key schedule per RFC 5246 §8.1 with the PSK premaster secret of RFC
//! 4279 §2; Finished verification over the SHA-256 transcript hash.
//! Flights are retransmitted with exponential back-off (initial 1 s)
//! until acknowledged by progress, per RFC 6347 §4.2.4.

use crate::handshake::{
    ClientHello, ClientKeyExchangePsk, HelloVerifyRequest, HsMessage, HsType, ServerHello,
    TLS_PSK_WITH_AES_128_CCM_8, VERIFY_DATA_LEN,
};
use crate::record::{CipherState, ContentType, Record, RecordView, ReplayWindow};
use crate::DtlsError;
use doc_crypto::prf::{prf, psk_premaster_secret};
use doc_crypto::sha256::Sha256;

/// Events surfaced to the caller.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DtlsEvent {
    /// Send this datagram to the peer. The label names the flight
    /// message for packet-size accounting (paper Fig. 6).
    Transmit {
        /// Encoded datagram (one or more DTLS records).
        datagram: Vec<u8>,
        /// Human-readable message name ("Client Hello", "Finished", …).
        label: &'static str,
    },
    /// The handshake completed.
    Connected,
    /// Decrypted application data arrived.
    ApplicationData(Vec<u8>),
    /// The handshake gave up after too many retransmissions.
    HandshakeFailed,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ClientState {
    Start,
    AwaitHelloVerify,
    AwaitServerHello,
    AwaitServerHelloDone,
    AwaitChangeCipher,
    AwaitFinished,
    Connected,
    Failed,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ServerState {
    AwaitClientHello,
    AwaitClientKeyExchange,
    AwaitChangeCipher,
    AwaitFinished,
    Connected,
    Failed,
}

/// Shared session keying material and record protection state.
struct Session {
    master_secret: [u8; 48],
    write: Option<CipherState>,
    read: Option<CipherState>,
    /// Outgoing epoch/sequence.
    epoch: u16,
    seq: u64,
    /// Incoming replay protection (epoch 1).
    replay: ReplayWindow,
}

impl Session {
    fn new(replay_window_bits: u32) -> Self {
        Session {
            master_secret: [0u8; 48],
            write: None,
            read: None,
            epoch: 0,
            seq: 0,
            replay: ReplayWindow::new(replay_window_bits),
        }
    }

    /// Derive the key block and install cipher states.
    /// `is_client` selects which half of the key block is "write".
    fn install_keys(
        &mut self,
        client_random: &[u8; 32],
        server_random: &[u8; 32],
        psk: &[u8],
        is_client: bool,
    ) {
        let premaster = psk_premaster_secret(psk);
        let mut seed = Vec::with_capacity(64);
        seed.extend_from_slice(client_random);
        seed.extend_from_slice(server_random);
        prf(&premaster, b"master secret", &seed, &mut self.master_secret);

        // key block: client_key(16) server_key(16) client_iv(4) server_iv(4)
        let mut key_seed = Vec::with_capacity(64);
        key_seed.extend_from_slice(server_random);
        key_seed.extend_from_slice(client_random);
        let mut block = [0u8; 40];
        prf(&self.master_secret, b"key expansion", &key_seed, &mut block);
        let client_key: [u8; 16] = block[0..16].try_into().expect("16");
        let server_key: [u8; 16] = block[16..32].try_into().expect("16");
        let client_iv: [u8; 4] = block[32..36].try_into().expect("4");
        let server_iv: [u8; 4] = block[36..40].try_into().expect("4");
        if is_client {
            self.write = Some(CipherState::new(&client_key, client_iv));
            self.read = Some(CipherState::new(&server_key, server_iv));
        } else {
            self.write = Some(CipherState::new(&server_key, server_iv));
            self.read = Some(CipherState::new(&client_key, client_iv));
        }
    }

    fn next_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    fn verify_data(&self, label: &[u8], transcript_hash: &[u8; 32]) -> [u8; VERIFY_DATA_LEN] {
        let mut out = [0u8; VERIFY_DATA_LEN];
        prf(&self.master_secret, label, transcript_hash, &mut out);
        out
    }
}

/// Flight retransmission bookkeeping (RFC 6347 §4.2.4).
struct FlightTimer {
    datagrams: Vec<(Vec<u8>, &'static str)>,
    timeout_at: u64,
    backoff_ms: u64,
    retries: u32,
    max_retries: u32,
    armed: bool,
}

impl FlightTimer {
    fn new() -> Self {
        FlightTimer {
            datagrams: Vec::new(),
            timeout_at: 0,
            backoff_ms: 1000,
            retries: 0,
            max_retries: 6,
            armed: false,
        }
    }

    fn arm(&mut self, now: u64, datagrams: Vec<(Vec<u8>, &'static str)>) {
        self.datagrams = datagrams;
        self.backoff_ms = 1000;
        self.retries = 0;
        self.timeout_at = now + self.backoff_ms;
        self.armed = true;
    }

    fn disarm(&mut self) {
        self.armed = false;
    }

    fn poll(&mut self, now: u64) -> Option<Vec<(Vec<u8>, &'static str)>> {
        if !self.armed || now < self.timeout_at {
            return None;
        }
        if self.retries >= self.max_retries {
            self.armed = false;
            return Some(Vec::new()); // signal failure with empty flight
        }
        self.retries += 1;
        self.backoff_ms *= 2;
        self.timeout_at = now + self.backoff_ms;
        Some(self.datagrams.clone())
    }
}

fn rand32(state: &mut u64) -> [u8; 32] {
    let mut out = [0u8; 32];
    for chunk in out.chunks_mut(8) {
        let mut x = *state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        *state = x;
        chunk.copy_from_slice(&x.wrapping_mul(0x2545F4914F6CDD1D).to_be_bytes());
    }
    out
}

/// Wrap a handshake message in an (optionally encrypted) record.
fn hs_record(session: &mut Session, msg: &HsMessage) -> Result<Record, DtlsError> {
    let body = msg.encode();
    let epoch = session.epoch;
    let seq = session.next_seq();
    let payload = if epoch == 0 {
        body
    } else {
        session
            .write
            .as_ref()
            .ok_or(DtlsError::NotConnected)?
            .seal(ContentType::Handshake, epoch, seq, &body)?
    };
    Ok(Record {
        ctype: ContentType::Handshake,
        epoch,
        seq,
        payload,
    })
}

/// A DTLS 1.2 PSK client connection.
pub struct DtlsClient {
    state: ClientState,
    psk: Vec<u8>,
    identity: Vec<u8>,
    session: Session,
    transcript: Vec<u8>,
    client_random: [u8; 32],
    server_random: [u8; 32],
    msg_seq: u16,
    timer: FlightTimer,
}

impl DtlsClient {
    /// Create a client for the given PSK identity/key.
    pub fn new(seed: u64, identity: &[u8], psk: &[u8]) -> Self {
        let mut rng = seed | 1;
        let client_random = rand32(&mut rng);
        let _ = rng;
        DtlsClient {
            state: ClientState::Start,
            psk: psk.to_vec(),
            identity: identity.to_vec(),
            session: Session::new(64),
            transcript: Vec::new(),
            client_random,
            server_random: [0u8; 32],
            msg_seq: 0,
            timer: FlightTimer::new(),
        }
    }

    /// Whether the handshake has completed.
    pub fn is_connected(&self) -> bool {
        self.state == ClientState::Connected
    }

    /// Begin the handshake: emits the first ClientHello.
    pub fn start(&mut self, now: u64) -> Vec<DtlsEvent> {
        assert_eq!(self.state, ClientState::Start, "start() called twice");
        let ch = ClientHello {
            random: self.client_random,
            cookie: Vec::new(),
            cipher_suites: vec![TLS_PSK_WITH_AES_128_CCM_8],
        };
        let msg = HsMessage {
            htype: HsType::ClientHello,
            message_seq: self.take_msg_seq(),
            body: ch.encode(),
        };
        // Initial ClientHello/HelloVerifyRequest are NOT in the
        // transcript (RFC 6347 §4.2.1).
        let rec = hs_record(&mut self.session, &msg).expect("epoch 0");
        let datagram = rec.encode();
        self.state = ClientState::AwaitHelloVerify;
        self.timer
            .arm(now, vec![(datagram.clone(), "Client Hello")]);
        vec![DtlsEvent::Transmit {
            datagram,
            label: "Client Hello",
        }]
    }

    fn take_msg_seq(&mut self) -> u16 {
        let s = self.msg_seq;
        self.msg_seq += 1;
        s
    }

    fn transcript_hash(&self) -> [u8; 32] {
        let mut h = Sha256::new();
        h.update(&self.transcript);
        h.finalize()
    }

    /// Encrypt and frame application data (requires a completed
    /// handshake).
    pub fn send_application_data(&mut self, data: &[u8]) -> Result<Vec<u8>, DtlsError> {
        if self.state != ClientState::Connected {
            return Err(DtlsError::NotConnected);
        }
        let epoch = self.session.epoch;
        let seq = self.session.next_seq();
        let payload = self.session.write.as_ref().expect("connected").seal(
            ContentType::ApplicationData,
            epoch,
            seq,
            data,
        )?;
        Ok(Record {
            ctype: ContentType::ApplicationData,
            epoch,
            seq,
            payload,
        }
        .encode())
    }

    /// Process an incoming datagram. Records are walked as borrowed
    /// [`RecordView`]s — payloads are only copied out of the datagram
    /// by decryption (or epoch-0 handshake reassembly).
    pub fn handle_datagram(&mut self, now: u64, datagram: &[u8]) -> Vec<DtlsEvent> {
        let Ok(records) = RecordView::iter(datagram).collect::<Result<Vec<_>, _>>() else {
            return Vec::new();
        };
        let mut events = Vec::new();
        for rec in records {
            match self.handle_record(now, rec) {
                Ok(mut evs) => events.append(&mut evs),
                Err(_) => { /* drop bad record */ }
            }
        }
        events
    }

    fn handle_record(
        &mut self,
        now: u64,
        rec: RecordView<'_>,
    ) -> Result<Vec<DtlsEvent>, DtlsError> {
        match rec.ctype {
            ContentType::Handshake => {
                let body = if rec.epoch == 0 {
                    rec.payload.to_vec()
                } else {
                    if !self.session.replay.check_and_update(rec.seq) {
                        return Err(DtlsError::Replay);
                    }
                    self.session
                        .read
                        .as_ref()
                        .ok_or(DtlsError::UnexpectedMessage)?
                        .open(ContentType::Handshake, rec.epoch, rec.seq, rec.payload)?
                };
                let (msg, _) = HsMessage::decode(&body)?;
                self.handle_handshake(now, msg)
            }
            ContentType::ChangeCipherSpec => {
                if self.state != ClientState::AwaitChangeCipher {
                    return Err(DtlsError::UnexpectedMessage);
                }
                self.state = ClientState::AwaitFinished;
                Ok(Vec::new())
            }
            ContentType::ApplicationData => {
                if self.state != ClientState::Connected {
                    return Err(DtlsError::NotConnected);
                }
                if !self.session.replay.check_and_update(rec.seq) {
                    return Err(DtlsError::Replay);
                }
                let plain = self.session.read.as_ref().expect("connected").open(
                    ContentType::ApplicationData,
                    rec.epoch,
                    rec.seq,
                    rec.payload,
                )?;
                Ok(vec![DtlsEvent::ApplicationData(plain)])
            }
            ContentType::Alert => Ok(Vec::new()),
        }
    }

    fn handle_handshake(&mut self, now: u64, msg: HsMessage) -> Result<Vec<DtlsEvent>, DtlsError> {
        match (self.state, msg.htype) {
            (ClientState::AwaitHelloVerify, HsType::HelloVerifyRequest) => {
                let hv = HelloVerifyRequest::decode(&msg.body)?;
                let ch = ClientHello {
                    random: self.client_random,
                    cookie: hv.cookie,
                    cipher_suites: vec![TLS_PSK_WITH_AES_128_CCM_8],
                };
                let hs = HsMessage {
                    htype: HsType::ClientHello,
                    message_seq: self.take_msg_seq(),
                    body: ch.encode(),
                };
                self.transcript.extend_from_slice(&hs.encode());
                let rec = hs_record(&mut self.session, &hs)?;
                let datagram = rec.encode();
                self.state = ClientState::AwaitServerHello;
                self.timer
                    .arm(now, vec![(datagram.clone(), "Client Hello [Cookie]")]);
                Ok(vec![DtlsEvent::Transmit {
                    datagram,
                    label: "Client Hello [Cookie]",
                }])
            }
            (ClientState::AwaitServerHello, HsType::ServerHello) => {
                let sh = ServerHello::decode(&msg.body)?;
                if sh.cipher_suite != TLS_PSK_WITH_AES_128_CCM_8 {
                    self.state = ClientState::Failed;
                    return Err(DtlsError::BadCipherSuite);
                }
                self.server_random = sh.random;
                self.transcript.extend_from_slice(&msg.encode());
                self.state = ClientState::AwaitServerHelloDone;
                Ok(Vec::new())
            }
            (ClientState::AwaitServerHelloDone, HsType::ServerHelloDone) => {
                self.transcript.extend_from_slice(&msg.encode());
                // Flight 5: ClientKeyExchange + CCS + Finished.
                let cke = ClientKeyExchangePsk {
                    identity: self.identity.clone(),
                };
                let cke_msg = HsMessage {
                    htype: HsType::ClientKeyExchange,
                    message_seq: self.take_msg_seq(),
                    body: cke.encode(),
                };
                self.transcript.extend_from_slice(&cke_msg.encode());
                let cke_rec = hs_record(&mut self.session, &cke_msg)?;

                // Derive keys now that both randoms are known.
                self.session.install_keys(
                    &self.client_random,
                    &self.server_random,
                    &self.psk,
                    true,
                );

                // ChangeCipherSpec record (epoch 0), then epoch switch.
                let ccs_seq = self.session.next_seq();
                let ccs_rec = Record {
                    ctype: ContentType::ChangeCipherSpec,
                    epoch: 0,
                    seq: ccs_seq,
                    payload: vec![1],
                };
                self.session.epoch = 1;
                self.session.seq = 0;

                // Finished (encrypted).
                let vd = self
                    .session
                    .verify_data(b"client finished", &self.transcript_hash());
                let fin_msg = HsMessage {
                    htype: HsType::Finished,
                    message_seq: self.take_msg_seq(),
                    body: vd.to_vec(),
                };
                self.transcript.extend_from_slice(&fin_msg.encode());
                let fin_rec = hs_record(&mut self.session, &fin_msg)?;

                let d1 = cke_rec.encode();
                let mut d2 = ccs_rec.encode();
                d2.extend_from_slice(&fin_rec.encode());
                self.state = ClientState::AwaitChangeCipher;
                self.timer.arm(
                    now,
                    vec![
                        (d1.clone(), "Client Key Exchange"),
                        (d2.clone(), "Change Cipher Spec"),
                    ],
                );
                Ok(vec![
                    DtlsEvent::Transmit {
                        datagram: d1,
                        label: "Client Key Exchange",
                    },
                    DtlsEvent::Transmit {
                        datagram: d2,
                        label: "Change Cipher Spec",
                    },
                ])
            }
            (ClientState::AwaitFinished, HsType::Finished) => {
                let expect = self
                    .session
                    .verify_data(b"server finished", &self.transcript_hash());
                if !doc_crypto::ct_eq(&expect, &msg.body) {
                    self.state = ClientState::Failed;
                    return Err(DtlsError::BadFinished);
                }
                self.state = ClientState::Connected;
                self.timer.disarm();
                Ok(vec![DtlsEvent::Connected])
            }
            // Retransmitted server flights are ignored once we advanced.
            _ => Ok(Vec::new()),
        }
    }

    /// Advance retransmission timers.
    pub fn poll(&mut self, now: u64) -> Vec<DtlsEvent> {
        match self.timer.poll(now) {
            None => Vec::new(),
            Some(flight) if flight.is_empty() => {
                self.state = ClientState::Failed;
                vec![DtlsEvent::HandshakeFailed]
            }
            Some(flight) => flight
                .into_iter()
                .map(|(datagram, label)| DtlsEvent::Transmit { datagram, label })
                .collect(),
        }
    }

    /// Earliest pending timer.
    pub fn next_timeout(&self) -> Option<u64> {
        self.timer.armed.then_some(self.timer.timeout_at)
    }
}

/// A DTLS 1.2 PSK server connection (one per client endpoint).
pub struct DtlsServer {
    state: ServerState,
    psk: Vec<u8>,
    cookie_secret: [u8; 32],
    session: Session,
    transcript: Vec<u8>,
    client_random: [u8; 32],
    server_random: [u8; 32],
    msg_seq: u16,
    /// Identity presented by the client (available after CKE).
    pub client_identity: Option<Vec<u8>>,
}

impl DtlsServer {
    /// Create a server endpoint with the given PSK.
    pub fn new(seed: u64, psk: &[u8]) -> Self {
        let mut rng = seed | 1;
        let cookie_secret = rand32(&mut rng);
        let server_random = rand32(&mut rng);
        DtlsServer {
            state: ServerState::AwaitClientHello,
            psk: psk.to_vec(),
            cookie_secret,
            session: Session::new(64),
            transcript: Vec::new(),
            client_random: [0u8; 32],
            server_random,
            msg_seq: 0,
            client_identity: None,
        }
    }

    /// Whether the handshake completed.
    pub fn is_connected(&self) -> bool {
        self.state == ServerState::Connected
    }

    fn cookie_for(&self, client_random: &[u8; 32]) -> Vec<u8> {
        doc_crypto::hmac::hmac_sha256(&self.cookie_secret, client_random)[..16].to_vec()
    }

    fn take_msg_seq(&mut self) -> u16 {
        let s = self.msg_seq;
        self.msg_seq += 1;
        s
    }

    fn transcript_hash(&self) -> [u8; 32] {
        let mut h = Sha256::new();
        h.update(&self.transcript);
        h.finalize()
    }

    /// Encrypt and frame application data.
    pub fn send_application_data(&mut self, data: &[u8]) -> Result<Vec<u8>, DtlsError> {
        if self.state != ServerState::Connected {
            return Err(DtlsError::NotConnected);
        }
        let epoch = self.session.epoch;
        let seq = self.session.next_seq();
        let payload = self.session.write.as_ref().expect("connected").seal(
            ContentType::ApplicationData,
            epoch,
            seq,
            data,
        )?;
        Ok(Record {
            ctype: ContentType::ApplicationData,
            epoch,
            seq,
            payload,
        }
        .encode())
    }

    /// Process an incoming datagram. Records are walked as borrowed
    /// [`RecordView`]s — payloads are only copied out of the datagram
    /// by decryption (or epoch-0 handshake reassembly).
    pub fn handle_datagram(&mut self, now: u64, datagram: &[u8]) -> Vec<DtlsEvent> {
        let Ok(records) = RecordView::iter(datagram).collect::<Result<Vec<_>, _>>() else {
            return Vec::new();
        };
        let mut events = Vec::new();
        for rec in records {
            if let Ok(mut evs) = self.handle_record(now, rec) {
                events.append(&mut evs);
            }
        }
        events
    }

    fn handle_record(
        &mut self,
        _now: u64,
        rec: RecordView<'_>,
    ) -> Result<Vec<DtlsEvent>, DtlsError> {
        match rec.ctype {
            ContentType::Handshake => {
                let body = if rec.epoch == 0 {
                    rec.payload.to_vec()
                } else {
                    if !self.session.replay.check_and_update(rec.seq) {
                        return Err(DtlsError::Replay);
                    }
                    self.session
                        .read
                        .as_ref()
                        .ok_or(DtlsError::UnexpectedMessage)?
                        .open(ContentType::Handshake, rec.epoch, rec.seq, rec.payload)?
                };
                let (msg, _) = HsMessage::decode(&body)?;
                self.handle_handshake(msg)
            }
            ContentType::ChangeCipherSpec => {
                if self.state != ServerState::AwaitChangeCipher {
                    return Err(DtlsError::UnexpectedMessage);
                }
                self.state = ServerState::AwaitFinished;
                Ok(Vec::new())
            }
            ContentType::ApplicationData => {
                if self.state != ServerState::Connected {
                    return Err(DtlsError::NotConnected);
                }
                if !self.session.replay.check_and_update(rec.seq) {
                    return Err(DtlsError::Replay);
                }
                let plain = self.session.read.as_ref().expect("connected").open(
                    ContentType::ApplicationData,
                    rec.epoch,
                    rec.seq,
                    rec.payload,
                )?;
                Ok(vec![DtlsEvent::ApplicationData(plain)])
            }
            ContentType::Alert => Ok(Vec::new()),
        }
    }

    fn handle_handshake(&mut self, msg: HsMessage) -> Result<Vec<DtlsEvent>, DtlsError> {
        match (self.state, msg.htype) {
            (ServerState::AwaitClientHello, HsType::ClientHello) => {
                let ch = ClientHello::decode(&msg.body)?;
                if !ch.cipher_suites.contains(&TLS_PSK_WITH_AES_128_CCM_8) {
                    return Err(DtlsError::BadCipherSuite);
                }
                let expected_cookie = self.cookie_for(&ch.random);
                if ch.cookie.is_empty() {
                    // Flight 2: stateless HelloVerifyRequest.
                    let hv = HelloVerifyRequest {
                        cookie: expected_cookie,
                    };
                    let hs = HsMessage {
                        htype: HsType::HelloVerifyRequest,
                        // HVR reuses the incoming message_seq (RFC 6347
                        // §4.2.1); it is not in the transcript.
                        message_seq: msg.message_seq,
                        body: hv.encode(),
                    };
                    let rec = Record {
                        ctype: ContentType::Handshake,
                        epoch: 0,
                        seq: self.session.next_seq(),
                        payload: hs.encode(),
                    };
                    return Ok(vec![DtlsEvent::Transmit {
                        datagram: rec.encode(),
                        label: "Hello Verify Request",
                    }]);
                }
                if ch.cookie != expected_cookie {
                    return Err(DtlsError::BadCookie);
                }
                // Valid second ClientHello: enters the transcript.
                self.client_random = ch.random;
                self.transcript.extend_from_slice(&msg.encode());
                self.msg_seq = msg.message_seq + 1;

                let sh = ServerHello {
                    random: self.server_random,
                    cipher_suite: TLS_PSK_WITH_AES_128_CCM_8,
                };
                let sh_msg = HsMessage {
                    htype: HsType::ServerHello,
                    message_seq: self.take_msg_seq(),
                    body: sh.encode(),
                };
                self.transcript.extend_from_slice(&sh_msg.encode());
                let sh_rec = hs_record(&mut self.session, &sh_msg)?;

                let shd_msg = HsMessage {
                    htype: HsType::ServerHelloDone,
                    message_seq: self.take_msg_seq(),
                    body: Vec::new(),
                };
                self.transcript.extend_from_slice(&shd_msg.encode());
                let shd_rec = hs_record(&mut self.session, &shd_msg)?;

                self.state = ServerState::AwaitClientKeyExchange;
                Ok(vec![
                    DtlsEvent::Transmit {
                        datagram: sh_rec.encode(),
                        label: "Server Hello",
                    },
                    DtlsEvent::Transmit {
                        datagram: shd_rec.encode(),
                        label: "Server Hello Done",
                    },
                ])
            }
            (ServerState::AwaitClientKeyExchange, HsType::ClientKeyExchange) => {
                let cke = ClientKeyExchangePsk::decode(&msg.body)?;
                self.client_identity = Some(cke.identity);
                self.transcript.extend_from_slice(&msg.encode());
                self.session.install_keys(
                    &self.client_random,
                    &self.server_random,
                    &self.psk,
                    false,
                );
                self.state = ServerState::AwaitChangeCipher;
                Ok(Vec::new())
            }
            (ServerState::AwaitFinished, HsType::Finished) => {
                let expect = self
                    .session
                    .verify_data(b"client finished", &self.transcript_hash());
                if !doc_crypto::ct_eq(&expect, &msg.body) {
                    self.state = ServerState::Failed;
                    return Err(DtlsError::BadFinished);
                }
                self.transcript.extend_from_slice(&msg.encode());

                // Flight 6: CCS + Finished.
                let ccs_rec = Record {
                    ctype: ContentType::ChangeCipherSpec,
                    epoch: 0,
                    seq: self.session.next_seq(),
                    payload: vec![1],
                };
                self.session.epoch = 1;
                self.session.seq = 0;
                let vd = self
                    .session
                    .verify_data(b"server finished", &self.transcript_hash());
                let fin_msg = HsMessage {
                    htype: HsType::Finished,
                    message_seq: self.take_msg_seq(),
                    body: vd.to_vec(),
                };
                let fin_rec = hs_record(&mut self.session, &fin_msg)?;
                let mut datagram = ccs_rec.encode();
                datagram.extend_from_slice(&fin_rec.encode());
                self.state = ServerState::Connected;
                Ok(vec![
                    DtlsEvent::Transmit {
                        datagram,
                        label: "Finish",
                    },
                    DtlsEvent::Connected,
                ])
            }
            _ => Ok(Vec::new()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PSK: &[u8] = b"123456789"; // 9 bytes, as in the paper
    const IDENTITY: &[u8] = b"Client_ID";

    /// Run a full loopback handshake, returning both endpoints and the
    /// labeled datagram trace.
    fn handshake() -> (DtlsClient, DtlsServer, Vec<(&'static str, usize)>) {
        let mut client = DtlsClient::new(11, IDENTITY, PSK);
        let mut server = DtlsServer::new(22, PSK);
        let mut trace = Vec::new();
        let mut c2s: Vec<Vec<u8>> = Vec::new();
        let mut s2c: Vec<Vec<u8>> = Vec::new();
        for ev in client.start(0) {
            if let DtlsEvent::Transmit { datagram, label } = ev {
                trace.push((label, datagram.len()));
                c2s.push(datagram);
            }
        }
        let mut connected = (false, false);
        for _round in 0..10 {
            let mut new_s2c = Vec::new();
            for d in c2s.drain(..) {
                for ev in server.handle_datagram(0, &d) {
                    match ev {
                        DtlsEvent::Transmit { datagram, label } => {
                            trace.push((label, datagram.len()));
                            new_s2c.push(datagram);
                        }
                        DtlsEvent::Connected => connected.1 = true,
                        _ => {}
                    }
                }
            }
            s2c.extend(new_s2c);
            let mut new_c2s = Vec::new();
            for d in s2c.drain(..) {
                for ev in client.handle_datagram(0, &d) {
                    match ev {
                        DtlsEvent::Transmit { datagram, label } => {
                            trace.push((label, datagram.len()));
                            new_c2s.push(datagram);
                        }
                        DtlsEvent::Connected => connected.0 = true,
                        _ => {}
                    }
                }
            }
            c2s.extend(new_c2s);
            if connected.0 && connected.1 {
                break;
            }
        }
        assert!(connected.0 && connected.1, "handshake did not complete");
        (client, server, trace)
    }

    #[test]
    fn full_handshake_completes() {
        let (client, server, trace) = handshake();
        assert!(client.is_connected());
        assert!(server.is_connected());
        // Fig. 6 message sequence.
        let labels: Vec<&str> = trace.iter().map(|(l, _)| *l).collect();
        assert_eq!(
            labels,
            vec![
                "Client Hello",
                "Hello Verify Request",
                "Client Hello [Cookie]",
                "Server Hello",
                "Server Hello Done",
                "Client Key Exchange",
                "Change Cipher Spec",
                "Finish",
            ]
        );
        assert_eq!(server.client_identity.as_deref(), Some(IDENTITY));
    }

    #[test]
    fn application_data_both_directions() {
        let (mut client, mut server, _) = handshake();
        let d = client.send_application_data(b"dns query").unwrap();
        let evs = server.handle_datagram(0, &d);
        assert_eq!(evs, vec![DtlsEvent::ApplicationData(b"dns query".to_vec())]);
        let d = server.send_application_data(b"dns response").unwrap();
        let evs = client.handle_datagram(0, &d);
        assert_eq!(
            evs,
            vec![DtlsEvent::ApplicationData(b"dns response".to_vec())]
        );
    }

    #[test]
    fn replayed_application_record_dropped() {
        let (mut client, mut server, _) = handshake();
        let d = client.send_application_data(b"once").unwrap();
        assert_eq!(server.handle_datagram(0, &d).len(), 1);
        assert_eq!(server.handle_datagram(0, &d).len(), 0);
    }

    #[test]
    fn tampered_record_dropped() {
        let (mut client, mut server, _) = handshake();
        let mut d = client.send_application_data(b"secret").unwrap();
        let n = d.len();
        d[n - 1] ^= 0xFF;
        assert!(server.handle_datagram(0, &d).is_empty());
    }

    #[test]
    fn wrong_psk_fails_finished() {
        let mut client = DtlsClient::new(1, IDENTITY, b"123456789");
        let mut server = DtlsServer::new(2, b"987654321");
        let mut datagrams: Vec<Vec<u8>> = Vec::new();
        for ev in client.start(0) {
            if let DtlsEvent::Transmit { datagram, .. } = ev {
                datagrams.push(datagram);
            }
        }
        let mut failed = true;
        for _ in 0..10 {
            let mut next = Vec::new();
            for d in datagrams.drain(..) {
                for ev in server.handle_datagram(0, &d) {
                    match ev {
                        DtlsEvent::Transmit { datagram, .. } => next.push(datagram),
                        DtlsEvent::Connected => failed = false,
                        _ => {}
                    }
                }
            }
            let mut back = Vec::new();
            for d in next {
                for ev in client.handle_datagram(0, &d) {
                    match ev {
                        DtlsEvent::Transmit { datagram, .. } => back.push(datagram),
                        DtlsEvent::Connected => failed = false,
                        _ => {}
                    }
                }
            }
            datagrams = back;
            if datagrams.is_empty() {
                break;
            }
        }
        assert!(failed, "handshake must not complete with mismatched PSKs");
        assert!(!server.is_connected());
        assert!(!client.is_connected());
    }

    #[test]
    fn bad_cookie_rejected() {
        let mut client = DtlsClient::new(5, IDENTITY, PSK);
        let mut server = DtlsServer::new(6, PSK);
        let first = match &client.start(0)[0] {
            DtlsEvent::Transmit { datagram, .. } => datagram.clone(),
            _ => unreachable!(),
        };
        let hv = &server.handle_datagram(0, &first)[0];
        let hv_datagram = match hv {
            DtlsEvent::Transmit { datagram, .. } => datagram.clone(),
            _ => unreachable!(),
        };
        // Corrupt the cookie before delivering to the client.
        let mut bad = hv_datagram.clone();
        let n = bad.len();
        bad[n - 1] ^= 0xFF;
        let evs = client.handle_datagram(0, &bad);
        // Client echoes the corrupted cookie; server rejects silently.
        if let Some(DtlsEvent::Transmit { datagram, .. }) = evs.first() {
            assert!(server.handle_datagram(0, datagram).is_empty());
        }
        assert!(!server.is_connected());
    }

    #[test]
    fn client_retransmits_lost_flight() {
        let mut client = DtlsClient::new(7, IDENTITY, PSK);
        let evs = client.start(0);
        assert_eq!(evs.len(), 1);
        // Nothing arrives; time passes beyond the 1 s initial timeout.
        let t = client.next_timeout().unwrap();
        assert_eq!(t, 1000);
        let evs = client.poll(1000);
        assert_eq!(evs.len(), 1);
        assert!(matches!(
            evs[0],
            DtlsEvent::Transmit {
                label: "Client Hello",
                ..
            }
        ));
        // Back-off doubles.
        assert_eq!(client.next_timeout().unwrap(), 1000 + 2000);
    }

    #[test]
    fn handshake_gives_up_eventually() {
        let mut client = DtlsClient::new(8, IDENTITY, PSK);
        client.start(0);
        let mut failed = false;
        for _ in 0..20 {
            let now = match client.next_timeout() {
                Some(t) => t,
                None => break,
            };
            for ev in client.poll(now) {
                if ev == DtlsEvent::HandshakeFailed {
                    failed = true;
                }
            }
            if failed {
                break;
            }
        }
        assert!(failed);
    }

    #[test]
    fn app_data_before_handshake_fails() {
        let mut client = DtlsClient::new(9, IDENTITY, PSK);
        assert_eq!(
            client.send_application_data(b"x"),
            Err(DtlsError::NotConnected)
        );
    }

    #[test]
    fn handshake_sizes_reported() {
        // The Fig. 6 "Session setup" bars: sanity-check the per-message
        // UDP payload sizes are in the right regime (tens of bytes, the
        // ClientHello around 55-75 bytes).
        let (_, _, trace) = handshake();
        let get = |label: &str| {
            trace
                .iter()
                .find(|(l, _)| *l == label)
                .map(|(_, s)| *s)
                .unwrap()
        };
        let ch = get("Client Hello");
        assert!((50..=90).contains(&ch), "ClientHello size {ch}");
        let ch2 = get("Client Hello [Cookie]");
        assert_eq!(ch2, ch + 16, "cookie adds 16 bytes");
        let fin = get("Finish");
        // CCS record (14) + encrypted Finished (13 hdr + 16 nonce/tag +
        // 24 handshake msg) = 67.
        assert!((50..=90).contains(&fin), "server Finished flight {fin}");
    }

    #[test]
    fn duplicate_server_hello_ignored() {
        let mut client = DtlsClient::new(31, IDENTITY, PSK);
        let mut server = DtlsServer::new(32, PSK);
        let d0 = match &client.start(0)[0] {
            DtlsEvent::Transmit { datagram, .. } => datagram.clone(),
            _ => unreachable!(),
        };
        let hv = match &server.handle_datagram(0, &d0)[0] {
            DtlsEvent::Transmit { datagram, .. } => datagram.clone(),
            _ => unreachable!(),
        };
        let ch2 = match &client.handle_datagram(0, &hv)[0] {
            DtlsEvent::Transmit { datagram, .. } => datagram.clone(),
            _ => unreachable!(),
        };
        let server_flight: Vec<Vec<u8>> = server
            .handle_datagram(0, &ch2)
            .into_iter()
            .filter_map(|e| match e {
                DtlsEvent::Transmit { datagram, .. } => Some(datagram),
                _ => None,
            })
            .collect();
        // Deliver ServerHello twice: the duplicate must not disturb the
        // state machine.
        client.handle_datagram(0, &server_flight[0]);
        let evs = client.handle_datagram(0, &server_flight[0]);
        assert!(evs.is_empty());
        let evs = client.handle_datagram(0, &server_flight[1]);
        assert!(!evs.is_empty(), "handshake continues after duplicate");
    }
}
