//! DTLS 1.2 handshake message codecs (RFC 6347 §4.2 / RFC 5246 §7.4).
//!
//! Handshake header (12 bytes in DTLS):
//! `msg_type(1) || length(3) || message_seq(2) || fragment_offset(3) ||
//! fragment_length(3)`.
//!
//! Only unfragmented handshake messages are supported — every message
//! in the PSK handshake fits one record, which is precisely what the
//! paper's Fig. 6 shows (each handshake message is one, possibly
//! 6LoWPAN-fragmented, datagram).

use crate::DtlsError;

/// `TLS_PSK_WITH_AES_128_CCM_8` (RFC 6655).
pub const TLS_PSK_WITH_AES_128_CCM_8: u16 = 0xC0A8;

/// Handshake message types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HsType {
    /// ClientHello (1).
    ClientHello,
    /// ServerHello (2).
    ServerHello,
    /// HelloVerifyRequest (3, DTLS-only).
    HelloVerifyRequest,
    /// ServerHelloDone (14).
    ServerHelloDone,
    /// ClientKeyExchange (16).
    ClientKeyExchange,
    /// Finished (20).
    Finished,
}

impl HsType {
    /// Numeric value.
    pub fn to_u8(self) -> u8 {
        match self {
            HsType::ClientHello => 1,
            HsType::ServerHello => 2,
            HsType::HelloVerifyRequest => 3,
            HsType::ServerHelloDone => 14,
            HsType::ClientKeyExchange => 16,
            HsType::Finished => 20,
        }
    }
    /// From numeric value.
    pub fn from_u8(v: u8) -> Result<Self, DtlsError> {
        Ok(match v {
            1 => HsType::ClientHello,
            2 => HsType::ServerHello,
            3 => HsType::HelloVerifyRequest,
            14 => HsType::ServerHelloDone,
            16 => HsType::ClientKeyExchange,
            20 => HsType::Finished,
            _ => return Err(DtlsError::Malformed),
        })
    }
}

/// A handshake message (header + body).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HsMessage {
    /// Message type.
    pub htype: HsType,
    /// DTLS message sequence number.
    pub message_seq: u16,
    /// Message body.
    pub body: Vec<u8>,
}

impl HsMessage {
    /// Encode with the 12-byte DTLS handshake header (unfragmented:
    /// fragment_offset = 0, fragment_length = length).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(12 + self.body.len());
        out.push(self.htype.to_u8());
        out.extend_from_slice(&u24(self.body.len()));
        out.extend_from_slice(&self.message_seq.to_be_bytes());
        out.extend_from_slice(&u24(0));
        out.extend_from_slice(&u24(self.body.len()));
        out.extend_from_slice(&self.body);
        out
    }

    /// Decode one message from the front of `data`; returns message and
    /// bytes consumed.
    pub fn decode(data: &[u8]) -> Result<(Self, usize), DtlsError> {
        if data.len() < 12 {
            return Err(DtlsError::Malformed);
        }
        let htype = HsType::from_u8(data[0])?;
        let length = read_u24(&data[1..4]);
        let message_seq = u16::from_be_bytes([data[4], data[5]]);
        let frag_off = read_u24(&data[6..9]);
        let frag_len = read_u24(&data[9..12]);
        if frag_off != 0 || frag_len != length {
            return Err(DtlsError::Malformed); // fragmentation unsupported
        }
        let body = data
            .get(12..12 + length)
            .ok_or(DtlsError::Malformed)?
            .to_vec();
        Ok((
            HsMessage {
                htype,
                message_seq,
                body,
            },
            12 + length,
        ))
    }
}

fn u24(v: usize) -> [u8; 3] {
    [(v >> 16) as u8, (v >> 8) as u8, v as u8]
}

fn read_u24(b: &[u8]) -> usize {
    ((b[0] as usize) << 16) | ((b[1] as usize) << 8) | b[2] as usize
}

/// ClientHello body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientHello {
    /// 32-byte client random.
    pub random: [u8; 32],
    /// DTLS cookie (empty on the first flight).
    pub cookie: Vec<u8>,
    /// Offered cipher suites.
    pub cipher_suites: Vec<u16>,
}

impl ClientHello {
    /// Encode the body.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(&[254, 253]); // client_version
        out.extend_from_slice(&self.random);
        out.push(0); // session_id length
        out.push(self.cookie.len() as u8);
        out.extend_from_slice(&self.cookie);
        out.extend_from_slice(&((self.cipher_suites.len() * 2) as u16).to_be_bytes());
        for cs in &self.cipher_suites {
            out.extend_from_slice(&cs.to_be_bytes());
        }
        out.push(1); // compression_methods length
        out.push(0); // null compression
        out
    }

    /// Decode the body.
    pub fn decode(data: &[u8]) -> Result<Self, DtlsError> {
        let need = |n: usize, pos: usize| {
            if data.len() < pos + n {
                Err(DtlsError::Malformed)
            } else {
                Ok(())
            }
        };
        need(2 + 32 + 1, 0)?;
        let mut pos = 2; // skip version
        let random: [u8; 32] = data[pos..pos + 32].try_into().expect("32 bytes");
        pos += 32;
        let sid_len = data[pos] as usize;
        pos += 1;
        need(sid_len + 1, pos)?;
        pos += sid_len;
        let cookie_len = data[pos] as usize;
        pos += 1;
        need(cookie_len + 2, pos)?;
        let cookie = data[pos..pos + cookie_len].to_vec();
        pos += cookie_len;
        let cs_len = u16::from_be_bytes([data[pos], data[pos + 1]]) as usize;
        pos += 2;
        need(cs_len, pos)?;
        if !cs_len.is_multiple_of(2) {
            return Err(DtlsError::Malformed);
        }
        let cipher_suites = data[pos..pos + cs_len]
            .chunks_exact(2)
            .map(|c| u16::from_be_bytes([c[0], c[1]]))
            .collect();
        Ok(ClientHello {
            random,
            cookie,
            cipher_suites,
        })
    }
}

/// HelloVerifyRequest body: version + cookie.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HelloVerifyRequest {
    /// Stateless cookie the client must echo.
    pub cookie: Vec<u8>,
}

impl HelloVerifyRequest {
    /// Encode the body.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = vec![254, 253];
        out.push(self.cookie.len() as u8);
        out.extend_from_slice(&self.cookie);
        out
    }
    /// Decode the body.
    pub fn decode(data: &[u8]) -> Result<Self, DtlsError> {
        if data.len() < 3 {
            return Err(DtlsError::Malformed);
        }
        let len = data[2] as usize;
        let cookie = data.get(3..3 + len).ok_or(DtlsError::Malformed)?.to_vec();
        Ok(HelloVerifyRequest { cookie })
    }
}

/// ServerHello body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerHello {
    /// 32-byte server random.
    pub random: [u8; 32],
    /// Selected cipher suite.
    pub cipher_suite: u16,
}

impl ServerHello {
    /// Encode the body.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(40);
        out.extend_from_slice(&[254, 253]);
        out.extend_from_slice(&self.random);
        out.push(0); // session_id empty
        out.extend_from_slice(&self.cipher_suite.to_be_bytes());
        out.push(0); // null compression
        out
    }
    /// Decode the body.
    pub fn decode(data: &[u8]) -> Result<Self, DtlsError> {
        if data.len() < 2 + 32 + 1 {
            return Err(DtlsError::Malformed);
        }
        let random: [u8; 32] = data[2..34].try_into().expect("32 bytes");
        let sid_len = data[34] as usize;
        let pos = 35 + sid_len;
        let cs = data.get(pos..pos + 2).ok_or(DtlsError::Malformed)?;
        Ok(ServerHello {
            random,
            cipher_suite: u16::from_be_bytes([cs[0], cs[1]]),
        })
    }
}

/// ClientKeyExchange body for PSK: just the PSK identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientKeyExchangePsk {
    /// PSK identity (opaque).
    pub identity: Vec<u8>,
}

impl ClientKeyExchangePsk {
    /// Encode the body.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(2 + self.identity.len());
        out.extend_from_slice(&(self.identity.len() as u16).to_be_bytes());
        out.extend_from_slice(&self.identity);
        out
    }
    /// Decode the body.
    pub fn decode(data: &[u8]) -> Result<Self, DtlsError> {
        if data.len() < 2 {
            return Err(DtlsError::Malformed);
        }
        let len = u16::from_be_bytes([data[0], data[1]]) as usize;
        let identity = data.get(2..2 + len).ok_or(DtlsError::Malformed)?.to_vec();
        Ok(ClientKeyExchangePsk { identity })
    }
}

/// Finished verify_data length (RFC 5246 §7.4.9).
pub const VERIFY_DATA_LEN: usize = 12;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hs_header_roundtrip() {
        let m = HsMessage {
            htype: HsType::ClientHello,
            message_seq: 3,
            body: vec![1, 2, 3, 4, 5],
        };
        let wire = m.encode();
        assert_eq!(wire.len(), 12 + 5);
        let (back, used) = HsMessage::decode(&wire).unwrap();
        assert_eq!(back, m);
        assert_eq!(used, wire.len());
    }

    #[test]
    fn reject_fragmented() {
        let m = HsMessage {
            htype: HsType::Finished,
            message_seq: 0,
            body: vec![0u8; 12],
        };
        let mut wire = m.encode();
        wire[9..12].copy_from_slice(&[0, 0, 6]); // fragment_length != length
        assert_eq!(HsMessage::decode(&wire), Err(DtlsError::Malformed));
    }

    #[test]
    fn client_hello_roundtrip_no_cookie() {
        let ch = ClientHello {
            random: [7u8; 32],
            cookie: Vec::new(),
            cipher_suites: vec![TLS_PSK_WITH_AES_128_CCM_8],
        };
        let back = ClientHello::decode(&ch.encode()).unwrap();
        assert_eq!(back, ch);
        // Body size: 2 + 32 + 1 + 1 + 0 + 2 + 2 + 2 = 42.
        assert_eq!(ch.encode().len(), 42);
    }

    #[test]
    fn client_hello_roundtrip_with_cookie() {
        let ch = ClientHello {
            random: [9u8; 32],
            cookie: vec![0xAA; 16],
            cipher_suites: vec![TLS_PSK_WITH_AES_128_CCM_8, 0x00FF],
        };
        let back = ClientHello::decode(&ch.encode()).unwrap();
        assert_eq!(back, ch);
    }

    #[test]
    fn hello_verify_roundtrip() {
        let hv = HelloVerifyRequest {
            cookie: vec![1; 20],
        };
        assert_eq!(HelloVerifyRequest::decode(&hv.encode()).unwrap(), hv);
        assert_eq!(hv.encode().len(), 3 + 20);
    }

    #[test]
    fn server_hello_roundtrip() {
        let sh = ServerHello {
            random: [3u8; 32],
            cipher_suite: TLS_PSK_WITH_AES_128_CCM_8,
        };
        assert_eq!(ServerHello::decode(&sh.encode()).unwrap(), sh);
        // 2 + 32 + 1 + 2 + 1 = 38.
        assert_eq!(sh.encode().len(), 38);
    }

    #[test]
    fn cke_psk_roundtrip() {
        // 9-byte PSK identity matching the paper's setup.
        let cke = ClientKeyExchangePsk {
            identity: b"Client_ID".to_vec(),
        };
        assert_eq!(ClientKeyExchangePsk::decode(&cke.encode()).unwrap(), cke);
        assert_eq!(cke.encode().len(), 11);
    }

    #[test]
    fn reject_truncated_bodies() {
        assert!(ClientHello::decode(&[254, 253, 1]).is_err());
        assert!(ServerHello::decode(&[0u8; 10]).is_err());
        assert!(HelloVerifyRequest::decode(&[254]).is_err());
        assert!(ClientKeyExchangePsk::decode(&[0]).is_err());
        assert!(ClientKeyExchangePsk::decode(&[0, 9, 1, 2]).is_err());
    }

    #[test]
    fn reject_unknown_hs_type() {
        let mut wire = HsMessage {
            htype: HsType::Finished,
            message_seq: 0,
            body: vec![],
        }
        .encode();
        wire[0] = 99;
        assert!(HsMessage::decode(&wire).is_err());
    }
}
