//! DTLS record layer (RFC 6347 §4.1) and AES-128-CCM-8 protection
//! (RFC 6655).
//!
//! Record header (13 bytes):
//! `type(1) || version(2) || epoch(2) || sequence_number(6) || length(2)`.
//!
//! For CCM cipher suites the record payload of a protected record is
//! `explicit_nonce(8) || ciphertext || tag(8)`; the nonce is
//! `client/server_write_IV(4) || explicit_nonce(8)` and the AAD is
//! `epoch(2) || seq(6) || type(1) || version(2) || plaintext_length(2)`.

use crate::DtlsError;
use doc_crypto::ccm::{AesCcm, SealRequest};

/// DTLS 1.2 on-the-wire version bytes ({254, 253}).
pub const VERSION_DTLS12: [u8; 2] = [254, 253];

/// Record content types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContentType {
    /// ChangeCipherSpec (20).
    ChangeCipherSpec,
    /// Alert (21).
    Alert,
    /// Handshake (22).
    Handshake,
    /// ApplicationData (23).
    ApplicationData,
}

impl ContentType {
    /// Numeric value.
    pub fn to_u8(self) -> u8 {
        match self {
            ContentType::ChangeCipherSpec => 20,
            ContentType::Alert => 21,
            ContentType::Handshake => 22,
            ContentType::ApplicationData => 23,
        }
    }
    /// From numeric value.
    pub fn from_u8(v: u8) -> Result<Self, DtlsError> {
        Ok(match v {
            20 => ContentType::ChangeCipherSpec,
            21 => ContentType::Alert,
            22 => ContentType::Handshake,
            23 => ContentType::ApplicationData,
            _ => return Err(DtlsError::Malformed),
        })
    }
}

/// The 13-byte record header.
pub const RECORD_HEADER_LEN: usize = 13;
/// Explicit-nonce bytes prefixed to CCM-protected payloads (RFC 6655).
pub const EXPLICIT_NONCE_LEN: usize = 8;
/// CCM-8 tag length.
pub const TAG_LEN: usize = 8;

/// One DTLS record (possibly protected payload).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Content type.
    pub ctype: ContentType,
    /// Epoch (increments at ChangeCipherSpec).
    pub epoch: u16,
    /// 48-bit sequence number.
    pub seq: u64,
    /// Record payload (plaintext in epoch 0, protected afterwards).
    pub payload: Vec<u8>,
}

impl Record {
    /// Encode to wire bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(RECORD_HEADER_LEN + self.payload.len());
        self.encode_into(&mut out);
        out
    }

    /// Append the wire form to `out` — allocation-free with a reused
    /// buffer, and appendable, so a multi-record datagram (flight) can
    /// be assembled in one buffer.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        let [_, _, s2, s3, s4, s5, s6, s7] = self.seq.to_be_bytes();
        out.push(self.ctype.to_u8());
        out.extend_from_slice(&VERSION_DTLS12);
        out.extend_from_slice(&self.epoch.to_be_bytes());
        out.extend_from_slice(&[s2, s3, s4, s5, s6, s7]); // 48 bits
        out.extend_from_slice(&(self.payload.len() as u16).to_be_bytes());
        out.extend_from_slice(&self.payload);
    }

    /// Decode one record from the front of `data`; returns the record
    /// and the number of bytes consumed (datagrams may carry several
    /// records).
    pub fn decode(data: &[u8]) -> Result<(Self, usize), DtlsError> {
        let (header, _) = data
            .split_first_chunk::<RECORD_HEADER_LEN>()
            .ok_or(DtlsError::Malformed)?;
        let &[ct, v0, v1, e0, e1, s0, s1, s2, s3, s4, s5, l0, l1] = header;
        let ctype = ContentType::from_u8(ct)?;
        // Initial ClientHellos may use {254,255}; accept it too.
        if [v0, v1] != VERSION_DTLS12 && [v0, v1] != [254, 255] {
            return Err(DtlsError::Malformed);
        }
        let epoch = u16::from_be_bytes([e0, e1]);
        let seq = u64::from_be_bytes([0, 0, s0, s1, s2, s3, s4, s5]);
        let len = u16::from_be_bytes([l0, l1]) as usize;
        let payload = data
            .get(RECORD_HEADER_LEN..RECORD_HEADER_LEN + len)
            .ok_or(DtlsError::Malformed)?
            .to_vec();
        Ok((
            Record {
                ctype,
                epoch,
                seq,
                payload,
            },
            RECORD_HEADER_LEN + len,
        ))
    }

    /// Decode every record in a datagram.
    pub fn decode_all(mut data: &[u8]) -> Result<Vec<Record>, DtlsError> {
        let mut out = Vec::new();
        while !data.is_empty() {
            let (rec, used) = Record::decode(data)?;
            out.push(rec);
            data = data.get(used..).ok_or(DtlsError::Malformed)?;
        }
        Ok(out)
    }
}

/// A borrowed DTLS record: header fields decoded, payload left as a
/// slice of the datagram — the unprotect path's zero-copy counterpart
/// of [`Record::decode`], which copies every payload into a `Vec`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecordView<'a> {
    /// Content type.
    pub ctype: ContentType,
    /// Epoch (increments at ChangeCipherSpec).
    pub epoch: u16,
    /// 48-bit sequence number.
    pub seq: u64,
    /// Record payload (borrowed; protected in epochs > 0).
    pub payload: &'a [u8],
}

impl<'a> RecordView<'a> {
    /// Decode one record from the front of `data` without copying the
    /// payload; returns the view and the number of bytes consumed.
    /// Accepts and rejects exactly the inputs [`Record::decode`] does.
    pub fn decode(data: &'a [u8]) -> Result<(Self, usize), DtlsError> {
        let (header, _) = data
            .split_first_chunk::<RECORD_HEADER_LEN>()
            .ok_or(DtlsError::Malformed)?;
        let &[ct, v0, v1, e0, e1, s0, s1, s2, s3, s4, s5, l0, l1] = header;
        let ctype = ContentType::from_u8(ct)?;
        if [v0, v1] != VERSION_DTLS12 && [v0, v1] != [254, 255] {
            return Err(DtlsError::Malformed);
        }
        let epoch = u16::from_be_bytes([e0, e1]);
        let seq = u64::from_be_bytes([0, 0, s0, s1, s2, s3, s4, s5]);
        let len = u16::from_be_bytes([l0, l1]) as usize;
        let payload = data
            .get(RECORD_HEADER_LEN..RECORD_HEADER_LEN + len)
            .ok_or(DtlsError::Malformed)?;
        Ok((
            RecordView {
                ctype,
                epoch,
                seq,
                payload,
            },
            RECORD_HEADER_LEN + len,
        ))
    }

    /// Iterate every record in a datagram lazily. A malformed record
    /// surfaces as a final `Err` item; iteration stops after it.
    pub fn iter(datagram: &'a [u8]) -> RecordViewIter<'a> {
        RecordViewIter { rest: datagram }
    }

    /// Materialize an owned [`Record`].
    pub fn to_owned(&self) -> Record {
        Record {
            ctype: self.ctype,
            epoch: self.epoch,
            seq: self.seq,
            payload: self.payload.to_vec(),
        }
    }
}

/// Lazy iterator over the records of a datagram.
#[derive(Debug, Clone)]
pub struct RecordViewIter<'a> {
    rest: &'a [u8],
}

impl<'a> Iterator for RecordViewIter<'a> {
    type Item = Result<RecordView<'a>, DtlsError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.rest.is_empty() {
            return None;
        }
        match RecordView::decode(self.rest) {
            Ok((view, used)) => {
                self.rest = self.rest.get(used..).unwrap_or(&[]);
                Some(Ok(view))
            }
            Err(e) => {
                self.rest = &[];
                Some(Err(e))
            }
        }
    }
}

/// One plaintext of a batched record seal (see
/// [`CipherState::seal_batch`]): the header fields that bind the AAD
/// plus the plaintext to protect.
#[derive(Debug, Clone, Copy)]
pub struct RecordSeal<'a> {
    /// Content type.
    pub ctype: ContentType,
    /// Epoch.
    pub epoch: u16,
    /// 48-bit sequence number.
    pub seq: u64,
    /// Plaintext to protect.
    pub plaintext: &'a [u8],
}

/// Write-direction cipher state for `TLS_PSK_WITH_AES_128_CCM_8`.
pub struct CipherState {
    ccm: AesCcm,
    /// 4-byte implicit IV (from the key block).
    fixed_iv: [u8; 4],
}

impl CipherState {
    /// Create from the key-block material.
    pub fn new(key: &[u8; 16], fixed_iv: [u8; 4]) -> Self {
        CipherState {
            ccm: AesCcm::dtls_ccm8(key),
            fixed_iv,
        }
    }

    fn nonce(&self, explicit: &[u8; 8]) -> [u8; 12] {
        let [f0, f1, f2, f3] = self.fixed_iv;
        let [e0, e1, e2, e3, e4, e5, e6, e7] = *explicit;
        [f0, f1, f2, f3, e0, e1, e2, e3, e4, e5, e6, e7]
    }

    fn aad(ctype: ContentType, epoch: u16, seq: u64, len: usize) -> [u8; 13] {
        let [e0, e1] = epoch.to_be_bytes();
        let [_, _, s2, s3, s4, s5, s6, s7] = seq.to_be_bytes();
        let [v0, v1] = VERSION_DTLS12;
        let [l0, l1] = (len as u16).to_be_bytes();
        [
            e0,
            e1,
            s2,
            s3,
            s4,
            s5,
            s6,
            s7,
            ctype.to_u8(),
            v0,
            v1,
            l0,
            l1,
        ]
    }

    /// Protect a plaintext into a record payload
    /// (`explicit_nonce || ciphertext || tag`). The explicit nonce is
    /// the epoch+sequence (a common, RFC-sanctioned choice).
    pub fn seal(
        &self,
        ctype: ContentType,
        epoch: u16,
        seq: u64,
        plaintext: &[u8],
    ) -> Result<Vec<u8>, DtlsError> {
        let [e0, e1] = epoch.to_be_bytes();
        let [_, _, s2, s3, s4, s5, s6, s7] = seq.to_be_bytes();
        let explicit = [e0, e1, s2, s3, s4, s5, s6, s7];
        let nonce = self.nonce(&explicit);
        let aad = Self::aad(ctype, epoch, seq, plaintext.len());
        // Seal straight after the explicit nonce: one output buffer,
        // no intermediate ciphertext allocation.
        let mut out = Vec::with_capacity(EXPLICIT_NONCE_LEN + plaintext.len() + TAG_LEN);
        out.extend_from_slice(&explicit);
        self.ccm
            .seal_into(&nonce, &aad, plaintext, &mut out)
            .map_err(|_| DtlsError::Crypto)?;
        Ok(out)
    }

    /// Protect a whole batch of plaintexts in one pass, returning one
    /// record payload (`explicit_nonce || ciphertext || tag`) per item,
    /// byte-identical to sealing each item with [`CipherState::seal`].
    ///
    /// The CBC-MAC chains of every record advance in lockstep and the
    /// CTR keystreams are generated in one flattened multi-block AES
    /// pass ([`AesCcm::seal_suffix_batch`]), so a `ProxyPool` worker
    /// that drained a `pop_batch` of queries amortizes the whole
    /// batch's keystream setup. Validation is all-or-nothing.
    pub fn seal_batch(&self, items: &[RecordSeal<'_>]) -> Result<Vec<Vec<u8>>, DtlsError> {
        let mut outs: Vec<Vec<u8>> = items
            .iter()
            .map(|it| {
                let mut out = Vec::with_capacity(EXPLICIT_NONCE_LEN + it.plaintext.len() + TAG_LEN);
                let [e0, e1] = it.epoch.to_be_bytes();
                let [_, _, s2, s3, s4, s5, s6, s7] = it.seq.to_be_bytes();
                out.extend_from_slice(&[e0, e1, s2, s3, s4, s5, s6, s7]);
                out.extend_from_slice(it.plaintext);
                out
            })
            .collect();
        let nonces: Vec<[u8; 12]> = items
            .iter()
            .map(|it| {
                let [e0, e1] = it.epoch.to_be_bytes();
                let [_, _, s2, s3, s4, s5, s6, s7] = it.seq.to_be_bytes();
                self.nonce(&[e0, e1, s2, s3, s4, s5, s6, s7])
            })
            .collect();
        let aads: Vec<[u8; 13]> = items
            .iter()
            .map(|it| Self::aad(it.ctype, it.epoch, it.seq, it.plaintext.len()))
            .collect();
        let mut reqs: Vec<SealRequest<'_>> = outs
            .iter_mut()
            .zip(nonces.iter().zip(aads.iter()))
            .map(|(buf, (nonce, aad))| SealRequest {
                nonce,
                aad,
                buf,
                start: EXPLICIT_NONCE_LEN,
            })
            .collect();
        self.ccm
            .seal_suffix_batch(&mut reqs)
            .map_err(|_| DtlsError::Crypto)?;
        Ok(outs)
    }

    /// Unprotect a record payload.
    pub fn open(
        &self,
        ctype: ContentType,
        epoch: u16,
        seq: u64,
        payload: &[u8],
    ) -> Result<Vec<u8>, DtlsError> {
        let mut out = Vec::with_capacity(payload.len().saturating_sub(Self::OVERHEAD));
        self.open_into(ctype, epoch, seq, payload, &mut out)?;
        Ok(out)
    }

    /// Unprotect a record payload, appending the plaintext to a
    /// caller-owned buffer — with a reused `out` the whole record
    /// unprotect allocates nothing. Pairs with [`RecordView`] for the
    /// zero-copy receive path: `RecordView::decode` borrows the payload
    /// from the datagram, `open_into` decrypts it into the reused
    /// buffer. On failure `out` is left at its original length.
    pub fn open_into(
        &self,
        ctype: ContentType,
        epoch: u16,
        seq: u64,
        payload: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<(), DtlsError> {
        if payload.len() < EXPLICIT_NONCE_LEN + TAG_LEN {
            return Err(DtlsError::Malformed);
        }
        let (explicit, ct) = payload
            .split_first_chunk::<EXPLICIT_NONCE_LEN>()
            .ok_or(DtlsError::Malformed)?;
        let nonce = self.nonce(explicit);
        let plain_len = ct.len() - TAG_LEN;
        let aad = Self::aad(ctype, epoch, seq, plain_len);
        self.ccm
            .open_into(&nonce, &aad, ct, out)
            .map_err(|_| DtlsError::Crypto)
    }

    /// Unprotect a borrowed record in one step (view decode + AEAD
    /// open into the reused buffer).
    pub fn open_record_into(
        &self,
        record: &RecordView<'_>,
        out: &mut Vec<u8>,
    ) -> Result<(), DtlsError> {
        self.open_into(record.ctype, record.epoch, record.seq, record.payload, out)
    }

    /// Unprotect an owned record payload **in place**: on success the
    /// `Vec` that held `explicit_nonce || ciphertext || tag` becomes
    /// the plaintext; on authentication failure it is left byte-exactly
    /// as it was. Built on [`AesCcm::open_suffix_in_place`], so the
    /// ciphertext is never copied into a scratch buffer — this is the
    /// receive-path mirror of [`CipherState::seal`] for callers holding
    /// an owned [`Record`].
    pub fn open_payload_in_place(
        &self,
        ctype: ContentType,
        epoch: u16,
        seq: u64,
        payload: &mut Vec<u8>,
    ) -> Result<(), DtlsError> {
        if payload.len() < EXPLICIT_NONCE_LEN + TAG_LEN {
            return Err(DtlsError::Malformed);
        }
        let (explicit, _) = payload
            .split_first_chunk::<EXPLICIT_NONCE_LEN>()
            .ok_or(DtlsError::Malformed)?;
        let nonce = self.nonce(explicit);
        let plain_len = payload.len() - Self::OVERHEAD;
        let aad = Self::aad(ctype, epoch, seq, plain_len);
        self.ccm
            .open_suffix_in_place(&nonce, &aad, payload, EXPLICIT_NONCE_LEN)
            .map_err(|_| DtlsError::Crypto)?;
        payload.drain(..EXPLICIT_NONCE_LEN);
        Ok(())
    }

    /// Per-record protection overhead in bytes (nonce + tag) — the
    /// quantity that inflates every DTLS frame in the paper's Fig. 6.
    pub const OVERHEAD: usize = EXPLICIT_NONCE_LEN + TAG_LEN;
}

/// Sliding anti-replay window (RFC 6347 §4.1.2.6), 64 entries.
///
/// The paper notes "we increase … the OSCORE replay window size" for
/// long experiment runs; the window size here is configurable for the
/// same reason.
#[derive(Debug, Clone)]
pub struct ReplayWindow {
    window: u128,
    highest: u64,
    bits: u32,
    initialized: bool,
}

impl ReplayWindow {
    /// A window covering `bits` sequence numbers (max 128).
    pub fn new(bits: u32) -> Self {
        ReplayWindow {
            window: 0,
            highest: 0,
            bits: bits.clamp(1, 128),
            initialized: false,
        }
    }

    /// Check whether `seq` is fresh and mark it seen. Returns `false`
    /// for replays or records older than the window.
    pub fn check_and_update(&mut self, seq: u64) -> bool {
        if !self.initialized {
            self.initialized = true;
            self.highest = seq;
            self.window = 1;
            return true;
        }
        if seq > self.highest {
            let shift = seq - self.highest;
            if shift >= self.bits as u64 {
                self.window = 1;
            } else {
                self.window = (self.window << shift) | 1;
            }
            self.highest = seq;
            true
        } else {
            let offset = self.highest - seq;
            if offset >= self.bits as u64 {
                return false; // too old
            }
            let mask = 1u128 << offset;
            if self.window & mask != 0 {
                return false; // replay
            }
            self.window |= mask;
            true
        }
    }

    /// Highest sequence number accepted so far.
    pub fn highest(&self) -> u64 {
        self.highest
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_roundtrip() {
        let r = Record {
            ctype: ContentType::Handshake,
            epoch: 0,
            seq: 5,
            payload: vec![1, 2, 3],
        };
        let wire = r.encode();
        assert_eq!(wire.len(), RECORD_HEADER_LEN + 3);
        let (back, used) = Record::decode(&wire).unwrap();
        assert_eq!(back, r);
        assert_eq!(used, wire.len());
    }

    #[test]
    fn multi_record_datagram() {
        let r1 = Record {
            ctype: ContentType::ChangeCipherSpec,
            epoch: 0,
            seq: 1,
            payload: vec![1],
        };
        let r2 = Record {
            ctype: ContentType::Handshake,
            epoch: 1,
            seq: 0,
            payload: vec![9; 20],
        };
        let mut wire = r1.encode();
        wire.extend_from_slice(&r2.encode());
        let records = Record::decode_all(&wire).unwrap();
        assert_eq!(records, vec![r1, r2]);
    }

    #[test]
    fn seq_is_48_bits() {
        let r = Record {
            ctype: ContentType::ApplicationData,
            epoch: 2,
            seq: 0x0000_FFFF_FFFF_FFFF,
            payload: vec![],
        };
        let (back, _) = Record::decode(&r.encode()).unwrap();
        assert_eq!(back.seq, 0x0000_FFFF_FFFF_FFFF);
        assert_eq!(back.epoch, 2);
    }

    #[test]
    fn reject_bad_content_type() {
        let mut wire = Record {
            ctype: ContentType::Alert,
            epoch: 0,
            seq: 0,
            payload: vec![],
        }
        .encode();
        wire[0] = 99;
        assert_eq!(Record::decode(&wire), Err(DtlsError::Malformed));
    }

    #[test]
    fn reject_truncated() {
        assert!(Record::decode(&[22, 254, 253, 0]).is_err());
        let r = Record {
            ctype: ContentType::Handshake,
            epoch: 0,
            seq: 0,
            payload: vec![1, 2, 3, 4],
        };
        let wire = r.encode();
        assert!(Record::decode(&wire[..wire.len() - 1]).is_err());
    }

    #[test]
    fn cipher_roundtrip() {
        let cs = CipherState::new(&[7u8; 16], [1, 2, 3, 4]);
        let sealed = cs
            .seal(ContentType::ApplicationData, 1, 42, b"dns response")
            .unwrap();
        assert_eq!(sealed.len(), b"dns response".len() + CipherState::OVERHEAD);
        let plain = cs
            .open(ContentType::ApplicationData, 1, 42, &sealed)
            .unwrap();
        assert_eq!(plain, b"dns response");
    }

    #[test]
    fn record_view_agrees_with_owned() {
        let r1 = Record {
            ctype: ContentType::ChangeCipherSpec,
            epoch: 0,
            seq: 1,
            payload: vec![1],
        };
        let r2 = Record {
            ctype: ContentType::ApplicationData,
            epoch: 1,
            seq: 0x0000_FFFF_FFFF_FFFF,
            payload: vec![9; 20],
        };
        let mut wire = r1.encode();
        wire.extend_from_slice(&r2.encode());
        let views: Vec<RecordView> = RecordView::iter(&wire).map(|r| r.unwrap()).collect();
        assert_eq!(views.len(), 2);
        assert_eq!(views[0].to_owned(), r1);
        assert_eq!(views[1].to_owned(), r2);
        // Rejection parity with the owned decoder on truncations.
        for cut in 0..wire.len() {
            assert_eq!(
                RecordView::decode(&wire[..cut]).is_ok(),
                Record::decode(&wire[..cut]).is_ok(),
                "divergence at cut {cut}"
            );
        }
    }

    #[test]
    fn open_into_reuses_buffer_and_rolls_back() {
        let cs = CipherState::new(&[7u8; 16], [1, 2, 3, 4]);
        let sealed_rec = Record {
            ctype: ContentType::ApplicationData,
            epoch: 1,
            seq: 42,
            payload: cs
                .seal(ContentType::ApplicationData, 1, 42, b"dns response")
                .unwrap(),
        };
        let wire = sealed_rec.encode();
        let (view, _) = RecordView::decode(&wire).unwrap();
        let mut buf = Vec::new();
        for _ in 0..3 {
            buf.clear();
            cs.open_record_into(&view, &mut buf).unwrap();
            assert_eq!(buf, b"dns response");
        }
        // Tampered ciphertext leaves the buffer untouched.
        let mut bad = view.payload.to_vec();
        let n = bad.len();
        bad[n - 1] ^= 1;
        buf.clear();
        buf.push(0x77);
        assert_eq!(
            cs.open_into(ContentType::ApplicationData, 1, 42, &bad, &mut buf),
            Err(DtlsError::Crypto)
        );
        assert_eq!(buf, vec![0x77]);
    }

    #[test]
    fn seal_batch_matches_sequential() {
        let cs = CipherState::new(&[7u8; 16], [1, 2, 3, 4]);
        let plains: Vec<Vec<u8>> = (0..9usize).map(|i| vec![i as u8; i * 23]).collect();
        let items: Vec<RecordSeal<'_>> = plains
            .iter()
            .enumerate()
            .map(|(i, p)| RecordSeal {
                ctype: ContentType::ApplicationData,
                epoch: 1,
                seq: 100 + i as u64,
                plaintext: p,
            })
            .collect();
        let batched = cs.seal_batch(&items).unwrap();
        for (it, got) in items.iter().zip(batched.iter()) {
            let expect = cs.seal(it.ctype, it.epoch, it.seq, it.plaintext).unwrap();
            assert_eq!(*got, expect, "seq {}", it.seq);
            let plain = cs.open(it.ctype, it.epoch, it.seq, got).unwrap();
            assert_eq!(plain, it.plaintext);
        }
    }

    #[test]
    fn open_payload_in_place_roundtrip_and_restore() {
        let cs = CipherState::new(&[7u8; 16], [1, 2, 3, 4]);
        let mut payload = cs
            .seal(ContentType::ApplicationData, 1, 42, b"dns response")
            .unwrap();
        let sealed = payload.clone();
        cs.open_payload_in_place(ContentType::ApplicationData, 1, 42, &mut payload)
            .unwrap();
        assert_eq!(payload, b"dns response");
        // Tampered: buffer untouched, byte-exactly.
        let mut bad = sealed.clone();
        let n = bad.len();
        bad[n - 1] ^= 1;
        let snapshot = bad.clone();
        assert_eq!(
            cs.open_payload_in_place(ContentType::ApplicationData, 1, 42, &mut bad),
            Err(DtlsError::Crypto)
        );
        assert_eq!(bad, snapshot);
        // Too short for nonce + tag.
        let mut tiny = sealed[..10].to_vec();
        assert_eq!(
            cs.open_payload_in_place(ContentType::ApplicationData, 1, 42, &mut tiny),
            Err(DtlsError::Malformed)
        );
    }

    #[test]
    fn cipher_binds_aad() {
        let cs = CipherState::new(&[7u8; 16], [1, 2, 3, 4]);
        let sealed = cs
            .seal(ContentType::ApplicationData, 1, 42, b"payload")
            .unwrap();
        // Wrong sequence number in AAD fails.
        assert_eq!(
            cs.open(ContentType::ApplicationData, 1, 43, &sealed),
            Err(DtlsError::Crypto)
        );
        // Wrong content type fails.
        assert_eq!(
            cs.open(ContentType::Handshake, 1, 42, &sealed),
            Err(DtlsError::Crypto)
        );
    }

    #[test]
    fn cipher_rejects_short_payload() {
        let cs = CipherState::new(&[7u8; 16], [0; 4]);
        assert_eq!(
            cs.open(ContentType::ApplicationData, 1, 0, &[0u8; 10]),
            Err(DtlsError::Malformed)
        );
    }

    #[test]
    fn replay_window_basics() {
        let mut w = ReplayWindow::new(64);
        assert!(w.check_and_update(5));
        assert!(!w.check_and_update(5)); // replay
        assert!(w.check_and_update(6));
        assert!(w.check_and_update(4)); // in-window, unseen
        assert!(!w.check_and_update(4)); // now a replay
        assert_eq!(w.highest(), 6);
    }

    #[test]
    fn replay_window_too_old() {
        let mut w = ReplayWindow::new(8);
        assert!(w.check_and_update(100));
        assert!(!w.check_and_update(92)); // 8 behind, outside window
        assert!(w.check_and_update(93)); // 7 behind, inside
    }

    #[test]
    fn replay_window_big_jump() {
        let mut w = ReplayWindow::new(64);
        assert!(w.check_and_update(1));
        assert!(w.check_and_update(1000));
        assert!(!w.check_and_update(1000));
        assert!(!w.check_and_update(1)); // far outside the shifted window
        assert!(w.check_and_update(999));
    }

    #[test]
    fn out_of_order_within_window() {
        let mut w = ReplayWindow::new(64);
        for seq in [10u64, 8, 9, 12, 11, 7] {
            assert!(w.check_and_update(seq), "seq {seq} should be fresh");
        }
        for seq in [10u64, 8, 9, 12, 11, 7] {
            assert!(!w.check_and_update(seq), "seq {seq} should be replay");
        }
    }
}
