//! `doc-netsim` — a deterministic discrete-event network simulator that
//! stands in for the paper's FIT IoT-LAB testbed (see DESIGN.md,
//! Substitutions).
//!
//! The simulated network reproduces the experiment topology of the
//! paper's Fig. 2: DNS clients, a forwarder (optionally a caching CoAP
//! proxy), a border router and a resolver host, connected by
//! IEEE 802.15.4 wireless hops (250 kbit/s, shared channel,
//! CSMA-style medium access, configurable loss, link-layer
//! retransmissions) plus one wired hop to the resolver.
//!
//! What the simulator models — because these are the effects the
//! paper's results hinge on:
//!
//! * **Transmission time** per 802.15.4 frame (`bytes × 8 / 250 kbit/s`),
//!   so bigger packets really take longer.
//! * **6LoWPAN fragmentation** via [`doc_sixlowpan::fragment_plan`]:
//!   every fragment is a separate frame; losing any fragment loses the
//!   whole datagram.
//! * **Shared medium**: frames on the same channel serialize; queueing
//!   delay under load reproduces the congestion effects of Fig. 15.
//! * **Link-layer retransmissions** (3 retries), as the paper's radios
//!   were configured.
//! * **Per-link frame/byte counters** tagged by message kind — the raw
//!   material of Fig. 10's link-utilization bars.
//!
//! Everything is driven by one seeded xorshift RNG: identical seeds
//! give bit-identical experiment runs.

pub use doc_time::{Instant, Millis};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Node identifier.
pub type NodeId = usize;

/// Message tag used for link-utilization accounting (Fig. 10 separates
/// queries from responses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tag {
    /// A query/request travelling towards the resolver.
    Query,
    /// A response travelling back.
    Response,
    /// Anything else (handshakes, acknowledgements).
    Other,
}

impl Tag {
    /// Index into the `*_by_tag` stats arrays.
    pub fn index(self) -> usize {
        match self {
            Tag::Query => 0,
            Tag::Response => 1,
            Tag::Other => 2,
        }
    }
}

/// Events delivered to the experiment driver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimEvent {
    /// A datagram arrived at `to`.
    Datagram {
        /// Originating node.
        from: NodeId,
        /// Destination node (where it arrived).
        to: NodeId,
        /// Payload bytes (transport datagram, e.g. a CoAP message).
        bytes: Vec<u8>,
    },
    /// A timer set via [`Sim::set_timer`] fired at `node`.
    Timer {
        /// Node the timer belongs to.
        node: NodeId,
        /// Caller-chosen token.
        token: u64,
    },
}

/// Link flavour.
#[derive(Debug, Clone, Copy)]
pub enum LinkKind {
    /// IEEE 802.15.4 wireless hop on a shared channel.
    Wireless {
        /// Channel (medium) index; links sharing it contend.
        channel: usize,
        /// Per-frame loss probability in permille (0–1000).
        loss_permille: u32,
    },
    /// Wired hop (border router ↔ resolver): fixed latency, no loss,
    /// no fragmentation.
    Wired {
        /// One-way latency in microseconds.
        latency_us: u64,
    },
}

/// Per-directed-link statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Link-layer frames transmitted (including L2 retries).
    pub frames: u64,
    /// Bytes on air (including L2 retries and all headers).
    pub bytes: u64,
    /// Frames by tag: [query, response, other].
    pub frames_by_tag: [u64; 3],
    /// Bytes by tag: [query, response, other].
    pub bytes_by_tag: [u64; 3],
    /// Datagrams dropped (all L2 retries exhausted on some fragment).
    pub dropped_datagrams: u64,
}

/// 802.15.4 bit rate (bit/s) — 2.4 GHz O-QPSK.
pub const BITRATE: u64 = 250_000;
/// Link-layer retry limit (paper: radios handle L2 retransmissions).
pub const L2_RETRIES: u32 = 3;
/// Loss probability (permille) applied to L2 *retries*. Interference on
/// constrained testbeds is bursty: once a frame was hit, its immediate
/// retries are likely hit too. Without this, three L2 retries would
/// drive datagram loss to ~loss⁴ and erase the app-layer
/// retransmission behaviour the paper's Fig. 7/11 measure.
pub const RETRY_LOSS_PERMILLE: u64 = 700;
/// Inter-frame CSMA backoff granularity in microseconds.
const BACKOFF_UNIT_US: u64 = 320;

/// Scramble a seed into a non-zero xorshift state (plain `seed | 1`
/// would alias adjacent seeds).
fn splitmix(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    (z ^ (z >> 31)) | 1
}

#[derive(Debug)]
enum Pending {
    /// Datagram progressing along its route; next hop is
    /// `route[hop_idx]`.
    HopArrival {
        from: NodeId,
        to: NodeId,
        route: Vec<NodeId>,
        hop_idx: usize,
        bytes: Vec<u8>,
        tag: Tag,
    },
    Timer {
        node: NodeId,
        token: u64,
    },
}

/// The simulator.
pub struct Sim {
    now_us: u64,
    seq: u64,
    queue: BinaryHeap<Reverse<(u64, u64, usize)>>,
    pending: HashMap<usize, Pending>,
    next_pending: usize,
    rng: u64,
    links: HashMap<(NodeId, NodeId), LinkKind>,
    routes: HashMap<(NodeId, NodeId), Vec<NodeId>>,
    /// Per-channel medium busy-until time.
    channel_busy_until: HashMap<usize, u64>,
    stats: HashMap<(NodeId, NodeId), LinkStats>,
}

impl Sim {
    /// Create a simulator with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        Sim {
            now_us: 0,
            seq: 0,
            queue: BinaryHeap::new(),
            pending: HashMap::new(),
            next_pending: 0,
            rng: splitmix(seed),
            links: HashMap::new(),
            routes: HashMap::new(),
            channel_busy_until: HashMap::new(),
            stats: HashMap::new(),
        }
    }

    fn rand(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Current virtual time on the protocol-stack clock (millisecond
    /// granularity, the [`doc_time::Instant`] shared with `doc-quic`).
    pub fn now(&self) -> Instant {
        Instant::from_millis(self.now_us / 1000)
    }

    /// Current virtual time in raw milliseconds (escape hatch for
    /// statistics; prefer [`Sim::now`]).
    pub fn now_ms(&self) -> u64 {
        self.now_us / 1000
    }

    /// Current virtual time in microseconds.
    pub fn now_us(&self) -> u64 {
        self.now_us
    }

    /// Install a bidirectional link.
    pub fn add_link(&mut self, a: NodeId, b: NodeId, kind: LinkKind) {
        self.links.insert((a, b), kind);
        self.links.insert((b, a), kind);
    }

    /// Install a route (full node path, `route[0] = from`,
    /// `route.last() = to`); also installs the reverse route.
    pub fn add_route(&mut self, route: &[NodeId]) {
        assert!(route.len() >= 2);
        let from = route[0];
        let to = *route.last().expect("non-empty");
        self.routes.insert((from, to), route.to_vec());
        let mut rev = route.to_vec();
        rev.reverse();
        self.routes.insert((to, from), rev);
    }

    /// Statistics for the directed link `a → b`.
    pub fn link_stats(&self, a: NodeId, b: NodeId) -> LinkStats {
        self.stats.get(&(a, b)).copied().unwrap_or_default()
    }

    /// Combined (both directions) statistics for a link.
    pub fn link_stats_bidir(&self, a: NodeId, b: NodeId) -> LinkStats {
        let x = self.link_stats(a, b);
        let y = self.link_stats(b, a);
        LinkStats {
            frames: x.frames + y.frames,
            bytes: x.bytes + y.bytes,
            frames_by_tag: [
                x.frames_by_tag[0] + y.frames_by_tag[0],
                x.frames_by_tag[1] + y.frames_by_tag[1],
                x.frames_by_tag[2] + y.frames_by_tag[2],
            ],
            bytes_by_tag: [
                x.bytes_by_tag[0] + y.bytes_by_tag[0],
                x.bytes_by_tag[1] + y.bytes_by_tag[1],
                x.bytes_by_tag[2] + y.bytes_by_tag[2],
            ],
            dropped_datagrams: x.dropped_datagrams + y.dropped_datagrams,
        }
    }

    /// Set a timer for `node` at absolute time `at`.
    pub fn set_timer(&mut self, node: NodeId, at: Instant, token: u64) {
        let id = self.alloc_pending(Pending::Timer { node, token });
        self.push_at(at.as_millis().saturating_mul(1000).max(self.now_us), id);
    }

    fn alloc_pending(&mut self, p: Pending) -> usize {
        let id = self.next_pending;
        self.next_pending += 1;
        self.pending.insert(id, p);
        id
    }

    fn push_at(&mut self, at_us: u64, id: usize) {
        self.seq += 1;
        self.queue.push(Reverse((at_us, self.seq, id)));
    }

    /// Send a datagram from `from` to `to` along the installed route.
    ///
    /// # Panics
    /// Panics if no route exists (a topology bug in the experiment).
    pub fn send_datagram(&mut self, from: NodeId, to: NodeId, bytes: Vec<u8>, tag: Tag) {
        let route = self
            .routes
            .get(&(from, to))
            .unwrap_or_else(|| panic!("no route {from} -> {to}"))
            .clone();
        self.transmit_hop(route, 0, bytes, tag, from, to);
    }

    /// Simulate transmission over `route[hop_idx] → route[hop_idx+1]`.
    fn transmit_hop(
        &mut self,
        route: Vec<NodeId>,
        hop_idx: usize,
        bytes: Vec<u8>,
        tag: Tag,
        from: NodeId,
        to: NodeId,
    ) {
        let a = route[hop_idx];
        let b = route[hop_idx + 1];
        let kind = *self
            .links
            .get(&(a, b))
            .unwrap_or_else(|| panic!("no link {a} -> {b}"));
        match kind {
            LinkKind::Wired { latency_us } => {
                let st = self.stats.entry((a, b)).or_default();
                st.frames += 1;
                st.bytes += bytes.len() as u64 + 18; // Ethernet framing
                st.frames_by_tag[tag.index()] += 1;
                st.bytes_by_tag[tag.index()] += bytes.len() as u64 + 18;
                let arrival = self.now_us + latency_us;
                let id = self.alloc_pending(Pending::HopArrival {
                    from,
                    to,
                    route,
                    hop_idx: hop_idx + 1,
                    bytes,
                    tag,
                });
                self.push_at(arrival, id);
            }
            LinkKind::Wireless {
                channel,
                loss_permille,
            } => {
                // Fragment per 6LoWPAN and simulate each frame.
                let plan = doc_sixlowpan::fragment_plan(bytes.len());
                let mut t = self.now_us;
                let mut datagram_lost = false;
                for frame in &plan {
                    let tx_time = frame.total as u64 * 8 * 1_000_000 / BITRATE;
                    let mut attempts = 0;
                    loop {
                        // CSMA: wait for the medium, add random backoff.
                        let busy = self.channel_busy_until.get(&channel).copied().unwrap_or(0);
                        let backoff = (self.rand() % 8) * BACKOFF_UNIT_US;
                        let start = t.max(busy) + backoff;
                        let end = start + tx_time;
                        self.channel_busy_until.insert(channel, end);
                        // Account the transmission (even if lost).
                        let st = self.stats.entry((a, b)).or_default();
                        st.frames += 1;
                        st.bytes += frame.total as u64;
                        st.frames_by_tag[tag.index()] += 1;
                        st.bytes_by_tag[tag.index()] += frame.total as u64;
                        t = end;
                        let p = if attempts == 0 {
                            loss_permille as u64
                        } else {
                            RETRY_LOSS_PERMILLE.max(loss_permille as u64)
                        };
                        let lost = (self.rand() % 1000) < p;
                        if !lost {
                            break;
                        }
                        attempts += 1;
                        if attempts > L2_RETRIES {
                            datagram_lost = true;
                            break;
                        }
                        // Retry after an ACK-timeout-like gap.
                        t += (self.rand() % 4 + 1) * BACKOFF_UNIT_US;
                    }
                    if datagram_lost {
                        break;
                    }
                    // Small inter-fragment gap.
                    t += BACKOFF_UNIT_US;
                }
                if datagram_lost {
                    self.stats.entry((a, b)).or_default().dropped_datagrams += 1;
                    return; // datagram dies here
                }
                let id = self.alloc_pending(Pending::HopArrival {
                    from,
                    to,
                    route,
                    hop_idx: hop_idx + 1,
                    bytes,
                    tag,
                });
                self.push_at(t, id);
            }
        }
    }

    /// Process exactly one queue entry. `None` = queue empty;
    /// `Some(None)` = an internal step (store-and-forward hop) was
    /// taken without surfacing an event; `Some(Some(ev))` = an event
    /// for the driver.
    fn step(&mut self) -> Option<Option<(Instant, SimEvent)>> {
        loop {
            let Reverse((at_us, _, id)) = self.queue.pop()?;
            let Some(pending) = self.pending.remove(&id) else {
                continue; // cancelled
            };
            self.now_us = self.now_us.max(at_us);
            match pending {
                Pending::Timer { node, token } => {
                    return Some(Some((self.now(), SimEvent::Timer { node, token })));
                }
                Pending::HopArrival {
                    from,
                    to,
                    route,
                    hop_idx,
                    bytes,
                    tag,
                } => {
                    if hop_idx == route.len() - 1 {
                        return Some(Some((self.now(), SimEvent::Datagram { from, to, bytes })));
                    }
                    // Store-and-forward to the next hop.
                    self.transmit_hop(route, hop_idx, bytes, tag, from, to);
                    return Some(None);
                }
            }
        }
    }

    /// Advance to the next event. Returns `None` when the queue is
    /// empty.
    pub fn next_event(&mut self) -> Option<(Instant, SimEvent)> {
        loop {
            match self.step()? {
                Some(ev) => return Some(ev),
                None => continue,
            }
        }
    }

    /// The (virtual µs) timestamp of the next scheduled entry, skipping
    /// cancelled ones. `None` when the queue is drained.
    pub fn peek_due_us(&mut self) -> Option<u64> {
        while let Some(&Reverse((at_us, _, id))) = self.queue.peek() {
            if self.pending.contains_key(&id) {
                return Some(at_us);
            }
            self.queue.pop(); // drop cancelled entries eagerly
        }
        None
    }

    /// Batched event drain: pop every event scheduled at or before
    /// `horizon_us` into `out`, returning how many were appended.
    ///
    /// This is the bulk feed for a worker-pool front-end
    /// (`doc-core::pool`): instead of ping-ponging one event at a time,
    /// the driver drains a whole virtual-time window and fans the
    /// arrived datagrams onto the pool's ring in one go. Intermediate
    /// hops scheduled inside the window are simulated as part of the
    /// drain; events they produce beyond the horizon stay queued.
    pub fn drain_due(&mut self, horizon_us: u64, out: &mut Vec<(Instant, SimEvent)>) -> usize {
        let mut n = 0;
        while let Some(at_us) = self.peek_due_us() {
            if at_us > horizon_us {
                break;
            }
            match self.step() {
                Some(Some(ev)) => {
                    out.push(ev);
                    n += 1;
                }
                Some(None) => continue,
                None => break,
            }
        }
        n
    }

    /// Whether any events remain.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// Drain the next *window* of events: everything due within
    /// `window_us` of the earliest pending event. Returns 0 only when
    /// the simulation is idle.
    ///
    /// This is the receive primitive an I/O provider wants — "give me
    /// the next batch of arrivals" — without the caller having to pick
    /// an absolute horizon: the window slides to wherever the event
    /// queue actually is, so sparse and dense schedules both drain in
    /// sensible batches.
    pub fn drain_next_window(
        &mut self,
        window_us: u64,
        out: &mut Vec<(Instant, SimEvent)>,
    ) -> usize {
        match self.peek_due_us() {
            None => 0,
            Some(at_us) => self.drain_due(at_us.saturating_add(window_us), out),
        }
    }
}

/// Draw Poisson-process arrival times: `count` events at `lambda`
/// events/second, returned as absolute [`Instant`]s from the epoch.
///
/// Matches the paper's workload: "The query rate is
/// Poisson-distributed with λ = 5 queries/s".
pub fn poisson_arrivals(seed: u64, lambda_per_s: f64, count: usize) -> Vec<Instant> {
    let mut rng = splitmix(seed);
    let mut rand = move || {
        let mut x = rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        rng = x;
        // Uniform in (0,1].
        ((x.wrapping_mul(0x2545F4914F6CDD1D) >> 11) as f64 + 1.0) / (1u64 << 53) as f64
    };
    let mut t = 0.0f64;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        // Exponential inter-arrival: -ln(U)/λ seconds.
        let u: f64 = rand();
        t += -u.ln() / lambda_per_s;
        out.push(Instant::from_millis((t * 1000.0) as u64));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ms: u64) -> Instant {
        Instant::from_millis(ms)
    }

    fn two_hop_sim(loss_permille: u32, seed: u64) -> Sim {
        // client(0) -- proxy(1) -- border router(2) -- resolver(3)
        let mut sim = Sim::new(seed);
        sim.add_link(
            0,
            1,
            LinkKind::Wireless {
                channel: 0,
                loss_permille,
            },
        );
        sim.add_link(
            1,
            2,
            LinkKind::Wireless {
                channel: 0,
                loss_permille,
            },
        );
        sim.add_link(2, 3, LinkKind::Wired { latency_us: 1000 });
        sim.add_route(&[0, 1, 2, 3]);
        sim
    }

    #[test]
    fn datagram_traverses_route() {
        let mut sim = two_hop_sim(0, 1);
        sim.send_datagram(0, 3, vec![0xAB; 40], Tag::Query);
        let (t, ev) = sim.next_event().unwrap();
        match ev {
            SimEvent::Datagram { from, to, bytes } => {
                assert_eq!(from, 0);
                assert_eq!(to, 3);
                assert_eq!(bytes, vec![0xAB; 40]);
            }
            other => panic!("unexpected {other:?}"),
        }
        // Two wireless frame times + backoffs + 1 ms wire.
        assert!((4..60).contains(&u64::from(t)), "arrival at {t}");
    }

    #[test]
    fn reverse_route_works() {
        let mut sim = two_hop_sim(0, 2);
        sim.send_datagram(3, 0, vec![1; 20], Tag::Response);
        let (_, ev) = sim.next_event().unwrap();
        assert!(matches!(ev, SimEvent::Datagram { from: 3, to: 0, .. }));
    }

    #[test]
    fn timer_fires_in_order() {
        let mut sim = two_hop_sim(0, 3);
        sim.set_timer(0, at(500), 7);
        sim.set_timer(0, at(100), 8);
        let (t1, e1) = sim.next_event().unwrap();
        assert_eq!(t1, at(100));
        assert_eq!(e1, SimEvent::Timer { node: 0, token: 8 });
        let (t2, e2) = sim.next_event().unwrap();
        assert_eq!(t2, at(500));
        assert_eq!(e2, SimEvent::Timer { node: 0, token: 7 });
    }

    #[test]
    fn fragmentation_multiplies_frames() {
        let mut sim = two_hop_sim(0, 4);
        sim.send_datagram(0, 3, vec![0; 40], Tag::Query);
        while sim.next_event().is_some() {}
        let small = sim.link_stats(0, 1).frames;
        let mut sim = two_hop_sim(0, 4);
        sim.send_datagram(0, 3, vec![0; 250], Tag::Query);
        while sim.next_event().is_some() {}
        let big = sim.link_stats(0, 1).frames;
        assert_eq!(small, 1);
        assert_eq!(big, 3, "250-byte datagram should take 3 frames");
    }

    #[test]
    fn loss_drops_datagrams() {
        // 100% loss: nothing arrives, datagram counted dropped.
        let mut sim = two_hop_sim(1000, 5);
        sim.send_datagram(0, 3, vec![0; 40], Tag::Query);
        assert!(sim.next_event().is_none());
        assert_eq!(sim.link_stats(0, 1).dropped_datagrams, 1);
        // And L2 retries were spent.
        assert_eq!(sim.link_stats(0, 1).frames as u32, 1 + L2_RETRIES);
    }

    #[test]
    fn moderate_loss_sometimes_delivers() {
        let mut delivered = 0;
        for seed in 0..100 {
            let mut sim = two_hop_sim(150, seed); // 15% frame loss
            sim.send_datagram(0, 3, vec![0; 40], Tag::Query);
            if sim.next_event().is_some() {
                delivered += 1;
            }
        }
        // Per-hop datagram loss ≈ 0.15 × 0.7³ ≈ 5%; two hops ⇒ ~10%.
        // Most datagrams must still arrive, but not all (bursty retry
        // model).
        assert!((75..100).contains(&delivered), "delivered {delivered}/100");
    }

    #[test]
    fn stats_tagged_by_kind() {
        let mut sim = two_hop_sim(0, 6);
        sim.send_datagram(0, 3, vec![0; 40], Tag::Query);
        while sim.next_event().is_some() {}
        sim.send_datagram(3, 0, vec![0; 80], Tag::Response);
        while sim.next_event().is_some() {}
        let up = sim.link_stats(0, 1);
        let down = sim.link_stats(1, 0);
        assert_eq!(up.frames_by_tag[Tag::Query.index()], 1);
        assert_eq!(up.frames_by_tag[Tag::Response.index()], 0);
        // The 80-byte response exceeds the 69-byte single-frame budget:
        // 2 fragments.
        assert_eq!(down.frames_by_tag[Tag::Response.index()], 2);
        let both = sim.link_stats_bidir(0, 1);
        assert_eq!(both.frames, 3);
    }

    #[test]
    fn deterministic_with_same_seed() {
        let run = |seed| {
            let mut sim = two_hop_sim(100, seed);
            for i in 0..20 {
                sim.send_datagram(0, 3, vec![i as u8; 100], Tag::Query);
            }
            let mut arrivals = Vec::new();
            while let Some((t, ev)) = sim.next_event() {
                if matches!(ev, SimEvent::Datagram { .. }) {
                    arrivals.push(t);
                }
            }
            (arrivals, sim.link_stats(0, 1))
        };
        assert_eq!(run(42), run(42));
        // Different seeds differ in at least one observable (arrival
        // times or retry counts).
        assert_ne!(run(42), run(43));
    }

    #[test]
    fn shared_channel_serializes() {
        // Two clients on one channel: their transmissions must not
        // overlap, so 10 concurrent datagrams take ~10× one tx time.
        let mut sim = Sim::new(9);
        sim.add_link(
            0,
            2,
            LinkKind::Wireless {
                channel: 0,
                loss_permille: 0,
            },
        );
        sim.add_link(
            1,
            2,
            LinkKind::Wireless {
                channel: 0,
                loss_permille: 0,
            },
        );
        sim.add_route(&[0, 2]);
        sim.add_route(&[1, 2]);
        for _ in 0..5 {
            sim.send_datagram(0, 2, vec![0; 90], Tag::Query);
            sim.send_datagram(1, 2, vec![0; 90], Tag::Query);
        }
        let mut last = Instant::EPOCH;
        let mut count = 0;
        while let Some((t, ev)) = sim.next_event() {
            if matches!(ev, SimEvent::Datagram { .. }) {
                count += 1;
                last = t;
            }
        }
        assert_eq!(count, 10);
        // one ~119-byte frame ≈ 3.8 ms; 10 serialized ≥ 30 ms.
        assert!(last >= at(30), "last arrival {last}");
    }

    #[test]
    fn drain_due_matches_sequential_stream() {
        let run = |seed| {
            let mut sim = two_hop_sim(100, seed);
            for i in 0..20 {
                sim.send_datagram(0, 3, vec![i as u8; 100], Tag::Query);
                sim.set_timer(0, at(10 * i as u64), i as u64);
            }
            sim
        };
        // Reference: the classic one-event-at-a-time pump.
        let mut seq_sim = run(21);
        let mut sequential = Vec::new();
        while let Some(ev) = seq_sim.next_event() {
            sequential.push(ev);
        }
        // Batched: drain in 50 ms windows until idle.
        let mut batch_sim = run(21);
        let mut batched = Vec::new();
        let mut horizon_us = 0;
        while !batch_sim.is_idle() {
            horizon_us += 50_000;
            batch_sim.drain_due(horizon_us, &mut batched);
        }
        assert_eq!(sequential, batched);
        assert_eq!(seq_sim.link_stats(0, 1), batch_sim.link_stats(0, 1));
    }

    #[test]
    fn drain_due_respects_horizon() {
        let mut sim = two_hop_sim(0, 22);
        sim.set_timer(0, at(10), 1);
        sim.set_timer(0, at(500), 2);
        let mut out = Vec::new();
        // Only the 10 ms timer fits the 100 ms window.
        assert_eq!(sim.drain_due(100_000, &mut out), 1);
        assert_eq!(out, vec![(at(10), SimEvent::Timer { node: 0, token: 1 })]);
        assert!(!sim.is_idle(), "the 500 ms timer must stay queued");
        assert_eq!(sim.peek_due_us(), Some(500_000));
        assert_eq!(sim.drain_due(u64::MAX, &mut out), 1);
        assert!(sim.is_idle());
    }

    #[test]
    fn poisson_arrivals_mean_rate() {
        let times = poisson_arrivals(7, 5.0, 1000);
        assert_eq!(times.len(), 1000);
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        // Mean inter-arrival should be ~200 ms (±15%).
        let total = u64::from(*times.last().unwrap()) as f64;
        let mean = total / 1000.0;
        assert!((170.0..230.0).contains(&mean), "mean {mean} ms");
    }

    #[test]
    fn poisson_deterministic() {
        assert_eq!(poisson_arrivals(1, 5.0, 50), poisson_arrivals(1, 5.0, 50));
        assert_ne!(poisson_arrivals(1, 5.0, 50), poisson_arrivals(2, 5.0, 50));
    }
}
