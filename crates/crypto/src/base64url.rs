//! Unpadded base64url (RFC 4648 §5).
//!
//! DoH (RFC 8484 §4.1) and DoC GET requests encode the DNS query with
//! base64url *without* padding in the `dns` URI variable. The paper
//! (§5.3) notes this inflates GET requests to ≈1.5× the binary size —
//! which this module's 4/3 expansion reproduces exactly.

use crate::CryptoError;

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789-_";

/// Encode `data` as unpadded base64url.
pub fn encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = *chunk.get(1).unwrap_or(&0) as u32;
        let b2 = *chunk.get(2).unwrap_or(&0) as u32;
        let n = (b0 << 16) | (b1 << 8) | b2;
        out.push(ALPHABET[(n >> 18) as usize & 0x3f] as char);
        out.push(ALPHABET[(n >> 12) as usize & 0x3f] as char);
        if chunk.len() > 1 {
            out.push(ALPHABET[(n >> 6) as usize & 0x3f] as char);
        }
        if chunk.len() > 2 {
            out.push(ALPHABET[n as usize & 0x3f] as char);
        }
    }
    out
}

fn decode_char(c: u8) -> Result<u32, CryptoError> {
    match c {
        b'A'..=b'Z' => Ok((c - b'A') as u32),
        b'a'..=b'z' => Ok((c - b'a') as u32 + 26),
        b'0'..=b'9' => Ok((c - b'0') as u32 + 52),
        b'-' => Ok(62),
        b'_' => Ok(63),
        _ => Err(CryptoError::Malformed),
    }
}

/// Decode unpadded base64url text.
pub fn decode(text: &str) -> Result<Vec<u8>, CryptoError> {
    let bytes = text.as_bytes();
    if bytes.len() % 4 == 1 {
        return Err(CryptoError::Malformed);
    }
    let mut out = Vec::with_capacity(bytes.len() * 3 / 4);
    for chunk in bytes.chunks(4) {
        let mut n = 0u32;
        for &c in chunk {
            n = (n << 6) | decode_char(c)?;
        }
        // Left-align partial groups.
        n <<= 6 * (4 - chunk.len());
        out.push((n >> 16) as u8);
        if chunk.len() > 2 {
            out.push((n >> 8) as u8);
        }
        if chunk.len() > 3 {
            out.push(n as u8);
        }
    }
    Ok(out)
}

/// The exact encoded length for `n` input bytes (no padding).
pub fn encoded_len(n: usize) -> usize {
    (n * 4).div_ceil(3)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 4648 §10 test vectors, adjusted for the URL-safe unpadded
    /// variant.
    #[test]
    fn rfc4648_vectors() {
        assert_eq!(encode(b""), "");
        assert_eq!(encode(b"f"), "Zg");
        assert_eq!(encode(b"fo"), "Zm8");
        assert_eq!(encode(b"foo"), "Zm9v");
        assert_eq!(encode(b"foob"), "Zm9vYg");
        assert_eq!(encode(b"fooba"), "Zm9vYmE");
        assert_eq!(encode(b"foobar"), "Zm9vYmFy");
    }

    #[test]
    fn url_safe_alphabet() {
        // 0xfb 0xff maps to chars that would be '+' '/' in plain base64.
        let enc = encode(&[0xfb, 0xef, 0xff]);
        assert!(!enc.contains('+') && !enc.contains('/'));
        assert_eq!(decode(&enc).unwrap(), vec![0xfb, 0xef, 0xff]);
    }

    #[test]
    fn roundtrip_all_lengths() {
        for len in 0..100usize {
            let data: Vec<u8> = (0..len).map(|i| (i * 37 % 256) as u8).collect();
            let enc = encode(&data);
            assert_eq!(enc.len(), encoded_len(len));
            assert_eq!(decode(&enc).unwrap(), data);
        }
    }

    #[test]
    fn reject_invalid_chars() {
        assert!(decode("ab+d").is_err());
        assert!(decode("ab/d").is_err());
        assert!(decode("ab=d").is_err());
        assert!(decode("ab d").is_err());
    }

    #[test]
    fn reject_impossible_length() {
        // A base64 group of 1 char cannot encode any bytes.
        assert!(decode("A").is_err());
        assert!(decode("AAAAA").is_err());
    }

    /// The ≈1.5× inflation claimed in §5.3 of the paper: a 40-byte DNS
    /// query encodes to 54 characters (ratio 1.35–1.34 asymptotically;
    /// with URI variable name overhead the paper rounds to 1.5×).
    #[test]
    fn inflation_ratio() {
        assert_eq!(encoded_len(40), 54);
        assert_eq!(encoded_len(66), 88);
    }
}
