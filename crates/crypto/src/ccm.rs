//! AES-CCM authenticated encryption (RFC 3610 / NIST SP 800-38C).
//!
//! CCM is parameterized by the tag length `M` and the length-field size
//! `L` (nonce length is `15 - L`). The paper's two configurations:
//!
//! * **`AES-128-CCM-8`** (RFC 6655, used by DTLS): `M = 8`, `L = 3`,
//!   12-byte nonce.
//! * **`AES-CCM-16-64-128`** (RFC 8152 COSE, used by OSCORE): `M = 8`
//!   (64-bit tag), `L = 2`, 13-byte nonce.
//!
//! Both directions (seal/open) are implemented; CCM only needs the AES
//! forward transform.

use crate::aes::Aes128;
use crate::{ct_eq, CryptoError};

/// A CCM mode instance: AES-128 key plus (tag length, length-field size).
pub struct AesCcm {
    aes: Aes128,
    /// Tag length in bytes (4..=16, even).
    tag_len: usize,
    /// Length-field size `L` in bytes (2..=8); nonce length is `15 - L`.
    l: usize,
}

impl AesCcm {
    /// Create a CCM instance with explicit parameters.
    pub fn new(key: &[u8; 16], tag_len: usize, l: usize) -> Result<Self, CryptoError> {
        if !(4..=16).contains(&tag_len) || !tag_len.is_multiple_of(2) || !(2..=8).contains(&l) {
            return Err(CryptoError::InvalidParameter);
        }
        Ok(AesCcm {
            aes: Aes128::new(key),
            tag_len,
            l,
        })
    }

    /// `AES-128-CCM-8` as used by the DTLS cipher suite
    /// `TLS_PSK_WITH_AES_128_CCM_8` (RFC 6655): 8-byte tag, 12-byte nonce.
    pub fn dtls_ccm8(key: &[u8; 16]) -> Self {
        Self::new(key, 8, 3).expect("static parameters are valid")
    }

    /// `AES-CCM-16-64-128` as used by COSE/OSCORE (RFC 8152 §10.2):
    /// 8-byte (64-bit) tag, 13-byte nonce.
    pub fn cose_ccm_16_64_128(key: &[u8; 16]) -> Self {
        Self::new(key, 8, 2).expect("static parameters are valid")
    }

    /// Nonce length implied by the `L` parameter.
    pub fn nonce_len(&self) -> usize {
        15 - self.l
    }

    /// Tag length in bytes.
    pub fn tag_len(&self) -> usize {
        self.tag_len
    }

    /// Encrypt `plaintext` with additional authenticated data `aad`,
    /// returning `ciphertext || tag`.
    pub fn seal(&self, nonce: &[u8], aad: &[u8], plaintext: &[u8]) -> Result<Vec<u8>, CryptoError> {
        let mut out = Vec::with_capacity(plaintext.len() + self.tag_len);
        self.seal_into(nonce, aad, plaintext, &mut out)?;
        Ok(out)
    }

    /// Encrypt `plaintext`, appending `ciphertext || tag` to `out` —
    /// lets callers seal into a buffer that already carries framing
    /// (e.g. a DTLS explicit nonce) without an intermediate ciphertext
    /// allocation.
    pub fn seal_into(
        &self,
        nonce: &[u8],
        aad: &[u8],
        plaintext: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<(), CryptoError> {
        self.check_seal_params(nonce, plaintext.len())?;
        let tag = self.cbc_mac(nonce, aad, plaintext);
        let start = out.len();
        out.extend_from_slice(plaintext);
        self.ctr_xor(nonce, &mut out[start..]);
        self.append_encrypted_tag(nonce, &tag, out);
        Ok(())
    }

    /// Encrypt `buf` in place and append the tag: the buffer holding
    /// the plaintext *becomes* the `ciphertext || tag` — the zero-copy
    /// path OSCORE uses so a serialized inner message is protected
    /// without ever being copied.
    pub fn seal_in_place(
        &self,
        nonce: &[u8],
        aad: &[u8],
        buf: &mut Vec<u8>,
    ) -> Result<(), CryptoError> {
        self.check_seal_params(nonce, buf.len())?;
        let tag = self.cbc_mac(nonce, aad, buf);
        self.ctr_xor(nonce, buf);
        self.append_encrypted_tag(nonce, &tag, buf);
        Ok(())
    }

    /// [`AesCcm::seal_in_place`] over only the tail `buf[start..]`: the
    /// suffix holding the plaintext becomes `ciphertext || tag` while
    /// everything before `start` (outer headers, options, markers) is
    /// left untouched. This is what lets OSCORE serialize a whole outer
    /// message into one buffer and protect the inner part at the end.
    pub fn seal_suffix_in_place(
        &self,
        nonce: &[u8],
        aad: &[u8],
        buf: &mut Vec<u8>,
        start: usize,
    ) -> Result<(), CryptoError> {
        debug_assert!(start <= buf.len());
        self.check_seal_params(nonce, buf.len() - start)?;
        let tag = self.cbc_mac(nonce, aad, &buf[start..]);
        self.ctr_xor(nonce, &mut buf[start..]);
        self.append_encrypted_tag(nonce, &tag, buf);
        Ok(())
    }

    fn check_seal_params(&self, nonce: &[u8], plaintext_len: usize) -> Result<(), CryptoError> {
        if nonce.len() != self.nonce_len() {
            return Err(CryptoError::InvalidParameter);
        }
        if self.l < 8 && (plaintext_len as u64) >= (1u64 << (8 * self.l)) {
            return Err(CryptoError::InvalidParameter);
        }
        Ok(())
    }

    /// Append the tag encrypted with counter block 0.
    fn append_encrypted_tag(&self, nonce: &[u8], tag: &[u8; 16], out: &mut Vec<u8>) {
        let a0 = self.counter_block(nonce, 0);
        let s0 = self.aes.encrypt(&a0);
        for (t, k) in tag.iter().zip(s0.iter()).take(self.tag_len) {
            out.push(t ^ k);
        }
    }

    /// Decrypt and verify `ciphertext || tag`; returns the plaintext.
    pub fn open(
        &self,
        nonce: &[u8],
        aad: &[u8],
        ciphertext_and_tag: &[u8],
    ) -> Result<Vec<u8>, CryptoError> {
        let mut plain = Vec::with_capacity(ciphertext_and_tag.len().saturating_sub(self.tag_len));
        self.open_into(nonce, aad, ciphertext_and_tag, &mut plain)?;
        Ok(plain)
    }

    /// Decrypt and verify `ciphertext || tag`, appending the plaintext
    /// to `out` — the allocation-free unprotect counterpart of
    /// [`AesCcm::seal_into`] for callers with a reusable buffer. On
    /// authentication failure `out` is restored to its original length.
    pub fn open_into(
        &self,
        nonce: &[u8],
        aad: &[u8],
        ciphertext_and_tag: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<(), CryptoError> {
        if nonce.len() != self.nonce_len() {
            return Err(CryptoError::InvalidParameter);
        }
        if ciphertext_and_tag.len() < self.tag_len {
            return Err(CryptoError::AuthFailed);
        }
        let split = ciphertext_and_tag.len() - self.tag_len;
        let (ct, recv_tag_enc) = ciphertext_and_tag.split_at(split);
        let start = out.len();
        out.extend_from_slice(ct);
        self.ctr_xor(nonce, &mut out[start..]);
        let expect_tag = self.cbc_mac(nonce, aad, &out[start..]);
        let a0 = self.counter_block(nonce, 0);
        let s0 = self.aes.encrypt(&a0);
        let mut recv_tag = [0u8; 16];
        for i in 0..self.tag_len {
            recv_tag[i] = recv_tag_enc[i] ^ s0[i];
        }
        if !ct_eq(&recv_tag[..self.tag_len], &expect_tag[..self.tag_len]) {
            out.truncate(start);
            return Err(CryptoError::AuthFailed);
        }
        Ok(())
    }

    /// Compute the raw (unencrypted) CBC-MAC tag over B_0 || AAD blocks
    /// || message blocks.
    fn cbc_mac(&self, nonce: &[u8], aad: &[u8], msg: &[u8]) -> [u8; 16] {
        // B_0: flags || nonce || message length.
        let mut b0 = [0u8; 16];
        let adata_flag = if aad.is_empty() { 0 } else { 0x40 };
        let m_enc = ((self.tag_len - 2) / 2) as u8;
        let l_enc = (self.l - 1) as u8;
        b0[0] = adata_flag | (m_enc << 3) | l_enc;
        b0[1..1 + nonce.len()].copy_from_slice(nonce);
        let len_bytes = (msg.len() as u64).to_be_bytes();
        b0[16 - self.l..].copy_from_slice(&len_bytes[8 - self.l..]);

        let mut x = self.aes.encrypt(&b0);

        // AAD with its length prefix, zero-padded to block boundary —
        // streamed through a 16-byte window so no header buffer is
        // materialized (keeps the whole seal path allocation-free).
        if !aad.is_empty() {
            let mut prefix = [0u8; 10];
            let alen = aad.len() as u64;
            let prefix_len = if alen < 0xFF00 {
                prefix[..2].copy_from_slice(&(alen as u16).to_be_bytes());
                2
            } else if alen <= 0xFFFF_FFFF {
                prefix[..2].copy_from_slice(&[0xff, 0xfe]);
                prefix[2..6].copy_from_slice(&(alen as u32).to_be_bytes());
                6
            } else {
                prefix[..2].copy_from_slice(&[0xff, 0xff]);
                prefix[2..10].copy_from_slice(&alen.to_be_bytes());
                10
            };
            let total = prefix_len + aad.len();
            let byte_at = |i: usize| -> u8 {
                if i < prefix_len {
                    prefix[i]
                } else if i < total {
                    aad[i - prefix_len]
                } else {
                    0 // zero padding
                }
            };
            let mut i = 0;
            while i < total {
                for (j, xb) in x.iter_mut().enumerate() {
                    *xb ^= byte_at(i + j);
                }
                x = self.aes.encrypt(&x);
                i += 16;
            }
        }

        // Message blocks, zero-padded.
        for block in msg.chunks(16) {
            for (i, b) in block.iter().enumerate() {
                x[i] ^= b;
            }
            x = self.aes.encrypt(&x);
        }
        x
    }

    /// Build counter block A_i.
    fn counter_block(&self, nonce: &[u8], counter: u64) -> [u8; 16] {
        let mut a = [0u8; 16];
        a[0] = (self.l - 1) as u8;
        a[1..1 + nonce.len()].copy_from_slice(nonce);
        let ctr = counter.to_be_bytes();
        a[16 - self.l..].copy_from_slice(&ctr[8 - self.l..]);
        a
    }

    /// XOR `data` with the CTR keystream starting at counter 1.
    fn ctr_xor(&self, nonce: &[u8], data: &mut [u8]) {
        for (i, chunk) in data.chunks_mut(16).enumerate() {
            let a = self.counter_block(nonce, (i + 1) as u64);
            let s = self.aes.encrypt(&a);
            for (b, k) in chunk.iter_mut().zip(s.iter()) {
                *b ^= k;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex(s: &str) -> Vec<u8> {
        let s: String = s.chars().filter(|c| !c.is_whitespace()).collect();
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    /// RFC 3610 packet vector #1: M=8, L=2, 13-byte nonce — exactly the
    /// COSE AES-CCM-16-64-128 configuration.
    #[test]
    fn rfc3610_vector_1() {
        let key: [u8; 16] = unhex("C0C1C2C3C4C5C6C7C8C9CACBCCCDCECF")
            .try_into()
            .unwrap();
        let nonce = unhex("00000003020100A0A1A2A3A4A5");
        // Total packet 00..1E; first 8 bytes are AAD, rest plaintext.
        let packet = unhex("000102030405060708090A0B0C0D0E0F101112131415161718191A1B1C1D1E");
        let (aad, plain) = packet.split_at(8);
        let ccm = AesCcm::new(&key, 8, 2).unwrap();
        let sealed = ccm.seal(&nonce, aad, plain).unwrap();
        let expect = unhex("588C979A61C663D2F066D0C2C0F989806D5F6B61DAC38417E8D12CFDF926E0");
        assert_eq!(sealed, expect);
        let opened = ccm.open(&nonce, aad, &sealed).unwrap();
        assert_eq!(opened, plain);
    }

    /// `seal_in_place` / `seal_into` / `seal_suffix_in_place` are
    /// byte-identical to `seal`.
    #[test]
    fn seal_variants_agree() {
        let ccm = AesCcm::new(&[7u8; 16], 8, 2).unwrap();
        let nonce = [9u8; 13];
        let aad = b"binding";
        let plain = b"a plaintext spanning multiple AES blocks for good measure";
        let sealed = ccm.seal(&nonce, aad, plain).unwrap();

        let mut in_place = plain.to_vec();
        ccm.seal_in_place(&nonce, aad, &mut in_place).unwrap();
        assert_eq!(in_place, sealed);

        let mut framed = vec![0xEE, 0xFF]; // pre-existing framing bytes
        ccm.seal_into(&nonce, aad, plain, &mut framed).unwrap();
        assert_eq!(&framed[..2], &[0xEE, 0xFF]);
        assert_eq!(&framed[2..], &sealed[..]);

        let mut suffixed = vec![0xEE, 0xFF];
        suffixed.extend_from_slice(plain);
        ccm.seal_suffix_in_place(&nonce, aad, &mut suffixed, 2)
            .unwrap();
        assert_eq!(&suffixed[..2], &[0xEE, 0xFF]);
        assert_eq!(&suffixed[2..], &sealed[..]);

        assert_eq!(ccm.open(&nonce, aad, &sealed).unwrap(), plain);
    }

    /// `open_into` appends after existing bytes, and restores the
    /// buffer on authentication failure.
    #[test]
    fn open_into_appends_and_rolls_back() {
        let ccm = AesCcm::cose_ccm_16_64_128(&[7u8; 16]);
        let nonce = [9u8; 13];
        let sealed = ccm.seal(&nonce, b"aad", b"payload").unwrap();
        let mut out = vec![0xAB];
        ccm.open_into(&nonce, b"aad", &sealed, &mut out).unwrap();
        assert_eq!(out, b"\xABpayload");
        let mut bad = sealed.clone();
        bad[0] ^= 1;
        let mut out = vec![0xAB];
        assert_eq!(
            ccm.open_into(&nonce, b"aad", &bad, &mut out),
            Err(CryptoError::AuthFailed)
        );
        assert_eq!(out, vec![0xAB], "buffer restored on failure");
    }

    /// RFC 3610 packet vector #2 (plaintext not block-aligned).
    #[test]
    fn rfc3610_vector_2() {
        let key: [u8; 16] = unhex("C0C1C2C3C4C5C6C7C8C9CACBCCCDCECF")
            .try_into()
            .unwrap();
        let nonce = unhex("00000004030201A0A1A2A3A4A5");
        let packet = unhex("000102030405060708090A0B0C0D0E0F101112131415161718191A1B1C1D1E1F");
        let (aad, plain) = packet.split_at(8);
        let ccm = AesCcm::new(&key, 8, 2).unwrap();
        let sealed = ccm.seal(&nonce, aad, plain).unwrap();
        let expect = unhex("72C91A36E135F8CF291CA894085C87E3CC15C439C9E43A3BA091D56E10400916");
        assert_eq!(sealed, expect);
    }

    /// RFC 3610 packet vector #3.
    #[test]
    fn rfc3610_vector_3() {
        let key: [u8; 16] = unhex("C0C1C2C3C4C5C6C7C8C9CACBCCCDCECF")
            .try_into()
            .unwrap();
        let nonce = unhex("00000005040302A0A1A2A3A4A5");
        let packet = unhex("000102030405060708090A0B0C0D0E0F101112131415161718191A1B1C1D1E1F20");
        let (aad, plain) = packet.split_at(8);
        let ccm = AesCcm::new(&key, 8, 2).unwrap();
        let sealed = ccm.seal(&nonce, aad, plain).unwrap();
        let expect = unhex("51B1E5F44A197D1DA46B0F8E2D282AE871E838BB64DA8596574ADAA76FBD9FB0C5");
        assert_eq!(sealed, expect);
    }

    /// DTLS-style CCM-8 with 12-byte nonce round-trips.
    #[test]
    fn dtls_ccm8_roundtrip() {
        let key = [0x42u8; 16];
        let ccm = AesCcm::dtls_ccm8(&key);
        assert_eq!(ccm.nonce_len(), 12);
        let nonce = [7u8; 12];
        let aad = b"record header";
        let plain = b"application data of arbitrary length, hello DoC";
        let sealed = ccm.seal(&nonce, aad, plain).unwrap();
        assert_eq!(sealed.len(), plain.len() + 8);
        assert_eq!(ccm.open(&nonce, aad, &sealed).unwrap(), plain);
    }

    /// Tampering with ciphertext, tag, or AAD must fail authentication.
    #[test]
    fn tamper_detection() {
        let key = [3u8; 16];
        let ccm = AesCcm::cose_ccm_16_64_128(&key);
        let nonce = [9u8; 13];
        let sealed = ccm.seal(&nonce, b"aad", b"payload").unwrap();

        let mut bad = sealed.clone();
        bad[0] ^= 1;
        assert_eq!(ccm.open(&nonce, b"aad", &bad), Err(CryptoError::AuthFailed));

        let mut bad = sealed.clone();
        let last = bad.len() - 1;
        bad[last] ^= 1;
        assert_eq!(ccm.open(&nonce, b"aad", &bad), Err(CryptoError::AuthFailed));

        assert_eq!(
            ccm.open(&nonce, b"axd", &sealed),
            Err(CryptoError::AuthFailed)
        );
    }

    /// Wrong nonce fails authentication.
    #[test]
    fn wrong_nonce_fails() {
        let key = [3u8; 16];
        let ccm = AesCcm::cose_ccm_16_64_128(&key);
        let sealed = ccm.seal(&[1u8; 13], b"", b"payload").unwrap();
        assert_eq!(
            ccm.open(&[2u8; 13], b"", &sealed),
            Err(CryptoError::AuthFailed)
        );
    }

    /// Empty plaintext is legal: output is just the tag.
    #[test]
    fn empty_plaintext() {
        let key = [3u8; 16];
        let ccm = AesCcm::cose_ccm_16_64_128(&key);
        let nonce = [0u8; 13];
        let sealed = ccm.seal(&nonce, b"aad only", b"").unwrap();
        assert_eq!(sealed.len(), 8);
        assert_eq!(ccm.open(&nonce, b"aad only", &sealed).unwrap(), b"");
    }

    /// Empty AAD path (no adata flag) round-trips.
    #[test]
    fn empty_aad() {
        let key = [5u8; 16];
        let ccm = AesCcm::dtls_ccm8(&key);
        let nonce = [1u8; 12];
        let sealed = ccm.seal(&nonce, b"", b"data").unwrap();
        assert_eq!(ccm.open(&nonce, b"", &sealed).unwrap(), b"data");
    }

    /// Invalid parameters are rejected at construction.
    #[test]
    fn invalid_params() {
        let key = [0u8; 16];
        assert!(AesCcm::new(&key, 3, 2).is_err()); // odd tag
        assert!(AesCcm::new(&key, 2, 2).is_err()); // tag too short
        assert!(AesCcm::new(&key, 8, 1).is_err()); // L too small
        assert!(AesCcm::new(&key, 8, 9).is_err()); // L too large
    }

    /// Wrong nonce length is rejected.
    #[test]
    fn wrong_nonce_len() {
        let key = [0u8; 16];
        let ccm = AesCcm::dtls_ccm8(&key);
        assert_eq!(
            ccm.seal(&[0u8; 13], b"", b"x"),
            Err(CryptoError::InvalidParameter)
        );
    }

    /// Large AAD (>= 0xFF00 bytes) exercises the extended length encoding.
    #[test]
    fn large_aad_roundtrip() {
        let key = [1u8; 16];
        let ccm = AesCcm::cose_ccm_16_64_128(&key);
        let nonce = [4u8; 13];
        let aad = vec![0xA5u8; 0x1_0000];
        let sealed = ccm.seal(&nonce, &aad, b"tiny").unwrap();
        assert_eq!(ccm.open(&nonce, &aad, &sealed).unwrap(), b"tiny");
    }
}
