//! AES-CCM authenticated encryption (RFC 3610 / NIST SP 800-38C).
//!
//! CCM is parameterized by the tag length `M` and the length-field size
//! `L` (nonce length is `15 - L`). The paper's two configurations:
//!
//! * **`AES-128-CCM-8`** (RFC 6655, used by DTLS): `M = 8`, `L = 3`,
//!   12-byte nonce.
//! * **`AES-CCM-16-64-128`** (RFC 8152 COSE, used by OSCORE): `M = 8`
//!   (64-bit tag), `L = 2`, 13-byte nonce.
//!
//! Both directions (seal/open) are implemented; CCM only needs the AES
//! forward transform.
//!
//! Every path is built from two shared pieces so the fast and slow
//! lanes cannot diverge: [`MacStream`] derives the exact CBC-MAC block
//! sequence (`B_0`, length-prefixed AAD, message) for both the
//! sequential MAC and the batch-interleaved MAC, and `ctr_stream`
//! produces the whole CTR keystream (`S_0` for the tag plus the data
//! blocks) through one multi-block [`Aes128::encrypt_blocks`] call, so
//! even a single-packet seal keeps 8 counter blocks in flight on
//! AES-NI. [`AesCcm::seal_suffix_batch`] goes further and interleaves
//! the CBC-MAC chains of *many* packets through the same wide encrypt,
//! which is what the pool workers use to amortize a whole `pop_batch`
//! drain.

use crate::aes::Aes128;
use crate::backend::Backend;
use crate::{ct_eq, CryptoError};

/// A CCM mode instance: AES-128 key plus (tag length, length-field size).
pub struct AesCcm {
    aes: Aes128,
    /// Tag length in bytes (4..=16, even).
    tag_len: usize,
    /// Length-field size `L` in bytes (2..=8); nonce length is `15 - L`.
    l: usize,
}

/// One packet of a batched seal: the suffix `buf[start..]` holds the
/// plaintext and becomes `ciphertext || tag` in place, byte-exactly
/// what [`AesCcm::seal_suffix_in_place`] would have produced.
pub struct SealRequest<'a> {
    /// AEAD nonce; must be [`AesCcm::nonce_len`] bytes.
    pub nonce: &'a [u8],
    /// Additional authenticated data.
    pub aad: &'a [u8],
    /// Buffer whose suffix is sealed; the tag is appended to it.
    pub buf: &'a mut Vec<u8>,
    /// Offset where the plaintext suffix begins.
    pub start: usize,
}

/// One packet of a batched open: the suffix `buf[start..]` holds
/// `ciphertext || tag` and becomes the plaintext on success,
/// byte-exactly what [`AesCcm::open_suffix_in_place`] would have
/// produced.
pub struct OpenRequest<'a> {
    /// AEAD nonce; must be [`AesCcm::nonce_len`] bytes.
    pub nonce: &'a [u8],
    /// Additional authenticated data.
    pub aad: &'a [u8],
    /// Buffer whose suffix is opened; the tag is truncated off on
    /// success.
    pub buf: &'a mut Vec<u8>,
    /// Offset where the `ciphertext || tag` suffix begins.
    pub start: usize,
}

/// Validate the CCM mode parameters (tag length 4..=16 and even,
/// `L` in 2..=8) shared by every constructor.
fn check_mode_params(tag_len: usize, l: usize) -> Result<(), CryptoError> {
    if !(4..=16).contains(&tag_len) || !tag_len.is_multiple_of(2) || !(2..=8).contains(&l) {
        return Err(CryptoError::InvalidParameter);
    }
    Ok(())
}

impl AesCcm {
    /// Create a CCM instance with explicit parameters on the
    /// process-wide active backend.
    pub fn new(key: &[u8; 16], tag_len: usize, l: usize) -> Result<Self, CryptoError> {
        Self::with_backend(key, tag_len, l, Backend::active())
    }

    /// Create a CCM instance pinned to a specific AES backend — for
    /// known-answer tests and benchmarks covering every implementation.
    pub fn with_backend(
        key: &[u8; 16],
        tag_len: usize,
        l: usize,
        backend: Backend,
    ) -> Result<Self, CryptoError> {
        check_mode_params(tag_len, l)?;
        Ok(AesCcm {
            aes: Aes128::with_backend(key, backend),
            tag_len,
            l,
        })
    }

    /// Like [`AesCcm::new`], but fetches the expanded AES key schedule
    /// from the per-thread cache ([`Aes128::cached`]): re-deriving the
    /// same traffic key (e.g. `PacketKeys::derive` rebuilding both
    /// directions of a QUIC connection) skips the key expansion.
    pub fn new_cached(key: &[u8; 16], tag_len: usize, l: usize) -> Result<Self, CryptoError> {
        check_mode_params(tag_len, l)?;
        Ok(AesCcm {
            aes: Aes128::cached(key),
            tag_len,
            l,
        })
    }

    /// `AES-128-CCM-8` as used by the DTLS cipher suite
    /// `TLS_PSK_WITH_AES_128_CCM_8` (RFC 6655): 8-byte tag, 12-byte nonce.
    pub fn dtls_ccm8(key: &[u8; 16]) -> Self {
        Self::new(key, 8, 3).expect("static parameters are valid")
    }

    /// `AES-CCM-16-64-128` as used by COSE/OSCORE (RFC 8152 §10.2):
    /// 8-byte (64-bit) tag, 13-byte nonce.
    pub fn cose_ccm_16_64_128(key: &[u8; 16]) -> Self {
        Self::new(key, 8, 2).expect("static parameters are valid")
    }

    /// Nonce length implied by the `L` parameter.
    pub fn nonce_len(&self) -> usize {
        15 - self.l
    }

    /// Tag length in bytes.
    pub fn tag_len(&self) -> usize {
        self.tag_len
    }

    /// The AES backend this instance dispatches to.
    pub fn backend(&self) -> Backend {
        self.aes.backend()
    }

    /// Encrypt `plaintext` with additional authenticated data `aad`,
    /// returning `ciphertext || tag`.
    pub fn seal(&self, nonce: &[u8], aad: &[u8], plaintext: &[u8]) -> Result<Vec<u8>, CryptoError> {
        let mut out = Vec::with_capacity(plaintext.len() + self.tag_len);
        self.seal_into(nonce, aad, plaintext, &mut out)?;
        Ok(out)
    }

    /// Encrypt `plaintext`, appending `ciphertext || tag` to `out` —
    /// lets callers seal into a buffer that already carries framing
    /// (e.g. a DTLS explicit nonce) without an intermediate ciphertext
    /// allocation.
    pub fn seal_into(
        &self,
        nonce: &[u8],
        aad: &[u8],
        plaintext: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<(), CryptoError> {
        let start = out.len();
        out.extend_from_slice(plaintext);
        self.seal_suffix_in_place(nonce, aad, out, start)
            .inspect_err(|_| out.truncate(start))
    }

    /// Encrypt `buf` in place and append the tag: the buffer holding
    /// the plaintext *becomes* the `ciphertext || tag` — the zero-copy
    /// path OSCORE uses so a serialized inner message is protected
    /// without ever being copied.
    pub fn seal_in_place(
        &self,
        nonce: &[u8],
        aad: &[u8],
        buf: &mut Vec<u8>,
    ) -> Result<(), CryptoError> {
        self.seal_suffix_in_place(nonce, aad, buf, 0)
    }

    /// [`AesCcm::seal_in_place`] over only the tail `buf[start..]`: the
    /// suffix holding the plaintext becomes `ciphertext || tag` while
    /// everything before `start` (outer headers, options, markers) is
    /// left untouched. This is what lets OSCORE serialize a whole outer
    /// message into one buffer and protect the inner part at the end.
    pub fn seal_suffix_in_place(
        &self,
        nonce: &[u8],
        aad: &[u8],
        buf: &mut Vec<u8>,
        start: usize,
    ) -> Result<(), CryptoError> {
        debug_assert!(start <= buf.len());
        self.check_seal_params(nonce, buf.len() - start)?;
        let mut tag = self.cbc_mac(nonce, aad, &buf[start..]);
        self.ctr_stream(nonce, &mut tag, &mut buf[start..]);
        buf.extend_from_slice(&tag[..self.tag_len]);
        Ok(())
    }

    /// Seal many packets in one batched pass: the CBC-MAC chains of all
    /// packets advance in lockstep through one wide
    /// [`Aes128::encrypt_blocks`] per block round, then every packet's
    /// CTR keystream (including `S_0`) is generated in a single batch.
    /// Validation is all-or-nothing: if any packet has a bad nonce or
    /// an oversized payload, no buffer is modified.
    pub fn seal_suffix_batch(&self, reqs: &mut [SealRequest<'_>]) -> Result<(), CryptoError> {
        for r in reqs.iter() {
            let Some(len) = r.buf.len().checked_sub(r.start) else {
                return Err(CryptoError::InvalidParameter);
            };
            self.check_seal_params(r.nonce, len)?;
        }
        let tags = self.cbc_mac_batch(reqs);

        // Every packet's counter blocks (A_0 .. A_n), flattened into
        // one keystream batch.
        let mut spans = Vec::with_capacity(reqs.len());
        let mut ks: Vec<[u8; 16]> = Vec::new();
        for r in reqs.iter() {
            spans.push(ks.len());
            let nblocks = (r.buf.len() - r.start).div_ceil(16) as u64;
            for ctr in 0..=nblocks {
                ks.push(self.counter_block(r.nonce, ctr));
            }
        }
        self.aes.encrypt_blocks(&mut ks);

        for (r, (&off, tag)) in reqs.iter_mut().zip(spans.iter().zip(tags.iter())) {
            let payload = &mut r.buf[r.start..];
            for (chunk, key) in payload.chunks_mut(16).zip(ks[off + 1..].iter()) {
                for (b, k) in chunk.iter_mut().zip(key.iter()) {
                    *b ^= k;
                }
            }
            let s0 = &ks[off];
            for (t, k) in tag.iter().zip(s0.iter()).take(self.tag_len) {
                r.buf.push(t ^ k);
            }
        }
        Ok(())
    }

    fn check_seal_params(&self, nonce: &[u8], plaintext_len: usize) -> Result<(), CryptoError> {
        if nonce.len() != self.nonce_len() {
            return Err(CryptoError::InvalidParameter);
        }
        if self.l < 8 && (plaintext_len as u64) >= (1u64 << (8 * self.l)) {
            return Err(CryptoError::InvalidParameter);
        }
        Ok(())
    }

    /// Decrypt and verify `ciphertext || tag`; returns the plaintext.
    pub fn open(
        &self,
        nonce: &[u8],
        aad: &[u8],
        ciphertext_and_tag: &[u8],
    ) -> Result<Vec<u8>, CryptoError> {
        let mut plain = Vec::with_capacity(ciphertext_and_tag.len().saturating_sub(self.tag_len));
        self.open_into(nonce, aad, ciphertext_and_tag, &mut plain)?;
        Ok(plain)
    }

    /// Decrypt and verify `ciphertext || tag`, appending the plaintext
    /// to `out` — the allocation-free unprotect counterpart of
    /// [`AesCcm::seal_into`] for callers with a reusable buffer. On
    /// authentication failure `out` is restored to its original length.
    pub fn open_into(
        &self,
        nonce: &[u8],
        aad: &[u8],
        ciphertext_and_tag: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<(), CryptoError> {
        if nonce.len() != self.nonce_len() {
            return Err(CryptoError::InvalidParameter);
        }
        if ciphertext_and_tag.len() < self.tag_len {
            return Err(CryptoError::AuthFailed);
        }
        let split = ciphertext_and_tag.len() - self.tag_len;
        let (ct, recv_tag_enc) = ciphertext_and_tag.split_at(split);
        let start = out.len();
        out.extend_from_slice(ct);
        let mut s0 = [0u8; 16];
        self.ctr_stream(nonce, &mut s0, &mut out[start..]);
        let expect_tag = self.cbc_mac(nonce, aad, &out[start..]);
        let mut recv_tag = [0u8; 16];
        for i in 0..self.tag_len {
            recv_tag[i] = recv_tag_enc[i] ^ s0[i];
        }
        if !ct_eq(&recv_tag[..self.tag_len], &expect_tag[..self.tag_len]) {
            out.truncate(start);
            return Err(CryptoError::AuthFailed);
        }
        Ok(())
    }

    /// Decrypt and verify `buf` (holding `ciphertext || tag`) in place:
    /// on success the buffer *becomes* the plaintext (tag truncated
    /// off); on failure it is restored byte-exactly. The zero-copy
    /// mirror of [`AesCcm::seal_in_place`] for the receive paths.
    pub fn open_in_place(
        &self,
        nonce: &[u8],
        aad: &[u8],
        buf: &mut Vec<u8>,
    ) -> Result<(), CryptoError> {
        self.open_suffix_in_place(nonce, aad, buf, 0)
    }

    /// [`AesCcm::open_in_place`] over only the tail `buf[start..]`: the
    /// suffix holding `ciphertext || tag` becomes the plaintext while
    /// everything before `start` is left untouched — the mirror of
    /// [`AesCcm::seal_suffix_in_place`]. On authentication failure the
    /// whole buffer is restored byte-exactly (CTR is an XOR involution,
    /// so re-applying the keystream undoes the trial decryption).
    pub fn open_suffix_in_place(
        &self,
        nonce: &[u8],
        aad: &[u8],
        buf: &mut Vec<u8>,
        start: usize,
    ) -> Result<(), CryptoError> {
        if nonce.len() != self.nonce_len() {
            return Err(CryptoError::InvalidParameter);
        }
        let Some(suffix_len) = buf.len().checked_sub(start) else {
            return Err(CryptoError::InvalidParameter);
        };
        let Some(pt_len) = suffix_len.checked_sub(self.tag_len) else {
            return Err(CryptoError::AuthFailed);
        };
        let split = start + pt_len;
        let mut s0 = [0u8; 16];
        self.ctr_stream(nonce, &mut s0, &mut buf[start..split]);
        let expect_tag = self.cbc_mac(nonce, aad, &buf[start..split]);
        let mut recv_tag = [0u8; 16];
        for i in 0..self.tag_len {
            recv_tag[i] = buf[split + i] ^ s0[i];
        }
        if !ct_eq(&recv_tag[..self.tag_len], &expect_tag[..self.tag_len]) {
            // Re-XOR the keystream: restores the original ciphertext
            // bytes exactly, leaving no plaintext of a forged packet.
            let mut discard = [0u8; 16];
            self.ctr_stream(nonce, &mut discard, &mut buf[start..split]);
            return Err(CryptoError::AuthFailed);
        }
        buf.truncate(split);
        Ok(())
    }

    /// Open many packets in one batched pass — the inbound mirror of
    /// [`AesCcm::seal_suffix_batch`], built for a pool worker draining
    /// a whole batch of protected datagrams at once. Every packet's
    /// CTR keystream (including `S_0`) comes from one flattened
    /// multi-block AES pass, and the CBC-MAC chains of all packets
    /// advance in lockstep through the same wide encrypt.
    ///
    /// Verification is all-or-nothing: if any packet has a bad
    /// parameter or a bad tag, *every* buffer is restored byte-exactly
    /// (CTR is an XOR involution, so re-applying the keystream undoes
    /// the trial decryption) and no plaintext is exposed. A caller
    /// that needs to isolate the offending packet falls back to
    /// per-packet [`AesCcm::open_suffix_in_place`].
    pub fn open_suffix_batch(&self, reqs: &mut [OpenRequest<'_>]) -> Result<(), CryptoError> {
        let mut splits = Vec::with_capacity(reqs.len());
        for r in reqs.iter() {
            if r.nonce.len() != self.nonce_len() {
                return Err(CryptoError::InvalidParameter);
            }
            let Some(suffix_len) = r.buf.len().checked_sub(r.start) else {
                return Err(CryptoError::InvalidParameter);
            };
            let Some(pt_len) = suffix_len.checked_sub(self.tag_len) else {
                return Err(CryptoError::AuthFailed);
            };
            splits.push(r.start + pt_len);
        }

        // Every packet's counter blocks (A_0 .. A_n), flattened into
        // one keystream batch — same layout as the seal side.
        let mut spans = Vec::with_capacity(reqs.len());
        let mut ks: Vec<[u8; 16]> = Vec::new();
        for (r, &split) in reqs.iter().zip(splits.iter()) {
            spans.push(ks.len());
            let nblocks = (split - r.start).div_ceil(16) as u64;
            for ctr in 0..=nblocks {
                ks.push(self.counter_block(r.nonce, ctr));
            }
        }
        self.aes.encrypt_blocks(&mut ks);

        // XOR each packet's data blocks with its keystream slice; an
        // involution, so calling it twice restores the ciphertext.
        let xor_data = |reqs: &mut [OpenRequest<'_>]| {
            for ((r, &split), &off) in reqs.iter_mut().zip(splits.iter()).zip(spans.iter()) {
                let data = &mut r.buf[r.start..split];
                for (chunk, key) in data.chunks_mut(16).zip(ks[off + 1..].iter()) {
                    for (b, k) in chunk.iter_mut().zip(key.iter()) {
                        *b ^= k;
                    }
                }
            }
        };
        xor_data(reqs); // trial decryption

        // Batched CBC-MAC over the trial plaintexts.
        let tags = self.cbc_mac_streams(
            reqs.iter()
                .zip(splits.iter())
                .map(|(r, &split)| MacStream::new(self, r.nonce, r.aad, &r.buf[r.start..split]))
                .collect(),
        );

        // Check every tag (no early exit) before deciding the batch.
        let mut ok = true;
        for ((r, &split), (&off, tag)) in reqs
            .iter()
            .zip(splits.iter())
            .zip(spans.iter().zip(tags.iter()))
        {
            let s0 = &ks[off];
            let mut recv_tag = [0u8; 16];
            for i in 0..self.tag_len {
                recv_tag[i] = r.buf[split + i] ^ s0[i];
            }
            ok &= ct_eq(&recv_tag[..self.tag_len], &tag[..self.tag_len]);
        }
        if !ok {
            xor_data(reqs); // restore the original ciphertext bytes
            return Err(CryptoError::AuthFailed);
        }
        for (r, &split) in reqs.iter_mut().zip(splits.iter()) {
            r.buf.truncate(split);
        }
        Ok(())
    }

    /// Compute the raw (unencrypted) CBC-MAC tag over the block
    /// sequence [`MacStream`] yields.
    fn cbc_mac(&self, nonce: &[u8], aad: &[u8], msg: &[u8]) -> [u8; 16] {
        let mut stream = MacStream::new(self, nonce, aad, msg);
        let mut x = [0u8; 16];
        while stream.xor_next(&mut x) {
            self.aes.encrypt_block(&mut x);
        }
        x
    }

    /// CBC-MAC many packets at once: each packet's chain is the same
    /// sequential recurrence, but the block encryptions of all packets
    /// still alive at round `k` run through one wide
    /// [`Aes128::encrypt_blocks`] call. Packets whose streams are
    /// exhausted drop out; the survivors keep batching.
    fn cbc_mac_batch(&self, reqs: &[SealRequest<'_>]) -> Vec<[u8; 16]> {
        self.cbc_mac_streams(
            reqs.iter()
                .map(|r| MacStream::new(self, r.nonce, r.aad, &r.buf[r.start..]))
                .collect(),
        )
    }

    /// The interleaved CBC-MAC recurrence shared by the seal and open
    /// batches, over pre-built per-packet block streams.
    fn cbc_mac_streams(&self, mut streams: Vec<MacStream<'_>>) -> Vec<[u8; 16]> {
        let n = streams.len();
        let mut states = vec![[0u8; 16]; n];
        let mut scratch = vec![[0u8; 16]; n];
        let mut live: Vec<usize> = (0..n).collect();
        loop {
            live.retain(|&i| streams[i].xor_next(&mut states[i]));
            if live.is_empty() {
                return states;
            }
            for (slot, &i) in scratch.iter_mut().zip(live.iter()) {
                *slot = states[i];
            }
            self.aes.encrypt_blocks(&mut scratch[..live.len()]);
            for (slot, &i) in scratch.iter().zip(live.iter()) {
                states[i] = *slot;
            }
        }
    }

    /// Build counter block A_i.
    fn counter_block(&self, nonce: &[u8], counter: u64) -> [u8; 16] {
        let mut a = [0u8; 16];
        a[0] = (self.l - 1) as u8;
        a[1..1 + nonce.len()].copy_from_slice(nonce);
        let ctr = counter.to_be_bytes();
        a[16 - self.l..].copy_from_slice(&ctr[8 - self.l..]);
        a
    }

    /// Generate the whole CTR keystream in multi-block batches: `S_0`
    /// (counter 0) is XORed into `tag`, counters `1..` into `data`.
    /// Allocation-free; on AES-NI this keeps 8 counter blocks in
    /// flight even for a single packet.
    fn ctr_stream(&self, nonce: &[u8], tag: &mut [u8; 16], data: &mut [u8]) {
        const BATCH: usize = 8;
        let nblocks = data.len().div_ceil(16) as u64;
        let mut ks = [[0u8; 16]; BATCH];
        let mut next = 0u64;
        while next <= nblocks {
            let m = usize::min(BATCH, (nblocks - next + 1) as usize);
            for (i, block) in ks[..m].iter_mut().enumerate() {
                *block = self.counter_block(nonce, next + i as u64);
            }
            self.aes.encrypt_blocks(&mut ks[..m]);
            for (i, key) in ks[..m].iter().enumerate() {
                match next + i as u64 {
                    0 => {
                        for (t, k) in tag.iter_mut().zip(key.iter()) {
                            *t ^= k;
                        }
                    }
                    ctr => {
                        let off = (ctr - 1) as usize * 16;
                        let end = usize::min(off + 16, data.len());
                        for (b, k) in data[off..end].iter_mut().zip(key.iter()) {
                            *b ^= k;
                        }
                    }
                }
            }
            next += m as u64;
        }
    }
}

/// The CBC-MAC block sequence of one packet: `B_0`, then the
/// length-prefixed zero-padded AAD blocks, then the zero-padded message
/// blocks (RFC 3610 §2.2). Both the sequential and the batched MAC pull
/// blocks from this one derivation, so they cannot diverge.
struct MacStream<'a> {
    b0: [u8; 16],
    /// AAD length prefix (2, 6 or 10 bytes, RFC 3610 §2.2).
    prefix: [u8; 10],
    prefix_len: usize,
    aad: &'a [u8],
    msg: &'a [u8],
    /// Number of 16-byte blocks the AAD region occupies.
    aad_blocks: usize,
    /// Next block index to yield; `total` blocks overall.
    next: usize,
    total: usize,
}

impl<'a> MacStream<'a> {
    fn new(ccm: &AesCcm, nonce: &[u8], aad: &'a [u8], msg: &'a [u8]) -> Self {
        // B_0: flags || nonce || message length.
        let mut b0 = [0u8; 16];
        let adata_flag = if aad.is_empty() { 0 } else { 0x40 };
        let m_enc = ((ccm.tag_len - 2) / 2) as u8;
        let l_enc = (ccm.l - 1) as u8;
        b0[0] = adata_flag | (m_enc << 3) | l_enc;
        b0[1..1 + nonce.len()].copy_from_slice(nonce);
        let len_bytes = (msg.len() as u64).to_be_bytes();
        b0[16 - ccm.l..].copy_from_slice(&len_bytes[8 - ccm.l..]);

        let mut prefix = [0u8; 10];
        let alen = aad.len() as u64;
        let prefix_len = if aad.is_empty() {
            0
        } else if alen < 0xFF00 {
            prefix[..2].copy_from_slice(&(alen as u16).to_be_bytes());
            2
        } else if alen <= 0xFFFF_FFFF {
            prefix[..2].copy_from_slice(&[0xff, 0xfe]);
            prefix[2..6].copy_from_slice(&(alen as u32).to_be_bytes());
            6
        } else {
            prefix[..2].copy_from_slice(&[0xff, 0xff]);
            prefix[2..10].copy_from_slice(&alen.to_be_bytes());
            10
        };
        let aad_blocks = (prefix_len + aad.len()).div_ceil(16);
        let msg_blocks = msg.len().div_ceil(16);
        MacStream {
            b0,
            prefix,
            prefix_len,
            aad,
            msg,
            aad_blocks,
            next: 0,
            total: 1 + aad_blocks + msg_blocks,
        }
    }

    /// Byte `i` of the AAD region (prefix || aad || zero padding).
    #[inline]
    fn aad_byte(&self, i: usize) -> u8 {
        if i < self.prefix_len {
            self.prefix[i]
        } else {
            self.aad.get(i - self.prefix_len).copied().unwrap_or(0)
        }
    }

    /// XOR the next block of the sequence into `x`; `false` once the
    /// stream is exhausted.
    fn xor_next(&mut self, x: &mut [u8; 16]) -> bool {
        if self.next == self.total {
            return false;
        }
        let idx = self.next;
        self.next += 1;
        if idx == 0 {
            for (xb, b) in x.iter_mut().zip(self.b0.iter()) {
                *xb ^= b;
            }
        } else if idx <= self.aad_blocks {
            let base = (idx - 1) * 16;
            for (j, xb) in x.iter_mut().enumerate() {
                *xb ^= self.aad_byte(base + j);
            }
        } else {
            let base = (idx - 1 - self.aad_blocks) * 16;
            let chunk = &self.msg[base..usize::min(base + 16, self.msg.len())];
            for (xb, b) in x.iter_mut().zip(chunk.iter()) {
                *xb ^= b;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex(s: &str) -> Vec<u8> {
        let s: String = s.chars().filter(|c| !c.is_whitespace()).collect();
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    /// RFC 3610 packet vector #1: M=8, L=2, 13-byte nonce — exactly the
    /// COSE AES-CCM-16-64-128 configuration. Run on every backend.
    #[test]
    fn rfc3610_vector_1() {
        let key: [u8; 16] = unhex("C0C1C2C3C4C5C6C7C8C9CACBCCCDCECF")
            .try_into()
            .unwrap();
        let nonce = unhex("00000003020100A0A1A2A3A4A5");
        // Total packet 00..1E; first 8 bytes are AAD, rest plaintext.
        let packet = unhex("000102030405060708090A0B0C0D0E0F101112131415161718191A1B1C1D1E");
        let (aad, plain) = packet.split_at(8);
        let expect = unhex("588C979A61C663D2F066D0C2C0F989806D5F6B61DAC38417E8D12CFDF926E0");
        for backend in Backend::available() {
            let ccm = AesCcm::with_backend(&key, 8, 2, backend).unwrap();
            let sealed = ccm.seal(&nonce, aad, plain).unwrap();
            assert_eq!(sealed, expect, "{}", backend.label());
            let opened = ccm.open(&nonce, aad, &sealed).unwrap();
            assert_eq!(opened, plain, "{}", backend.label());
        }
    }

    /// `seal_in_place` / `seal_into` / `seal_suffix_in_place` /
    /// single-packet `seal_suffix_batch` are byte-identical to `seal`.
    #[test]
    fn seal_variants_agree() {
        let ccm = AesCcm::new(&[7u8; 16], 8, 2).unwrap();
        let nonce = [9u8; 13];
        let aad = b"binding";
        let plain = b"a plaintext spanning multiple AES blocks for good measure";
        let sealed = ccm.seal(&nonce, aad, plain).unwrap();

        let mut in_place = plain.to_vec();
        ccm.seal_in_place(&nonce, aad, &mut in_place).unwrap();
        assert_eq!(in_place, sealed);

        let mut framed = vec![0xEE, 0xFF]; // pre-existing framing bytes
        ccm.seal_into(&nonce, aad, plain, &mut framed).unwrap();
        assert_eq!(&framed[..2], &[0xEE, 0xFF]);
        assert_eq!(&framed[2..], &sealed[..]);

        let mut suffixed = vec![0xEE, 0xFF];
        suffixed.extend_from_slice(plain);
        ccm.seal_suffix_in_place(&nonce, aad, &mut suffixed, 2)
            .unwrap();
        assert_eq!(&suffixed[..2], &[0xEE, 0xFF]);
        assert_eq!(&suffixed[2..], &sealed[..]);

        let mut batched = vec![0xEE, 0xFF];
        batched.extend_from_slice(plain);
        let mut reqs = [SealRequest {
            nonce: &nonce,
            aad,
            buf: &mut batched,
            start: 2,
        }];
        ccm.seal_suffix_batch(&mut reqs).unwrap();
        assert_eq!(&batched[..2], &[0xEE, 0xFF]);
        assert_eq!(&batched[2..], &sealed[..]);

        assert_eq!(ccm.open(&nonce, aad, &sealed).unwrap(), plain);
    }

    /// Batched sealing is byte-exact with the sequential path across a
    /// spread of packet sizes (empty, sub-block, block-aligned, multi-
    /// block), mixed AADs, and every backend.
    #[test]
    fn batch_matches_sequential() {
        let key = [0x21u8; 16];
        let sizes = [0usize, 1, 15, 16, 17, 47, 48, 64, 200];
        for backend in Backend::available() {
            let ccm = AesCcm::with_backend(&key, 8, 2, backend).unwrap();
            let mut bufs: Vec<Vec<u8>> = sizes
                .iter()
                .enumerate()
                .map(|(i, &n)| (0..n).map(|j| (i * 31 + j) as u8).collect())
                .collect();
            let nonces: Vec<[u8; 13]> = (0..sizes.len())
                .map(|i| core::array::from_fn(|j| (i * 17 + j) as u8))
                .collect();
            let aads: Vec<Vec<u8>> = (0..sizes.len())
                .map(|i| vec![i as u8; i * 7 % 40])
                .collect();

            let expect: Vec<Vec<u8>> = bufs
                .iter()
                .enumerate()
                .map(|(i, buf)| ccm.seal(&nonces[i], &aads[i], buf).unwrap())
                .collect();

            let mut reqs: Vec<SealRequest<'_>> = bufs
                .iter_mut()
                .enumerate()
                .map(|(i, buf)| SealRequest {
                    nonce: &nonces[i],
                    aad: &aads[i],
                    buf,
                    start: 0,
                })
                .collect();
            ccm.seal_suffix_batch(&mut reqs).unwrap();
            assert_eq!(bufs, expect, "{}", backend.label());
        }
    }

    /// A bad packet anywhere in a batch leaves every buffer untouched.
    #[test]
    fn batch_validation_is_all_or_nothing() {
        let ccm = AesCcm::cose_ccm_16_64_128(&[1u8; 16]);
        let mut good = b"fine".to_vec();
        let mut bad = b"doomed".to_vec();
        let good_nonce = [2u8; 13];
        let bad_nonce = [3u8; 12]; // wrong length
        let mut reqs = [
            SealRequest {
                nonce: &good_nonce,
                aad: b"",
                buf: &mut good,
                start: 0,
            },
            SealRequest {
                nonce: &bad_nonce,
                aad: b"",
                buf: &mut bad,
                start: 0,
            },
        ];
        assert_eq!(
            ccm.seal_suffix_batch(&mut reqs),
            Err(CryptoError::InvalidParameter)
        );
        assert_eq!(good, b"fine");
        assert_eq!(bad, b"doomed");
    }

    /// Batched opening round-trips the sequential seal across a spread
    /// of packet sizes, mixed AADs, framing prefixes, and every
    /// backend — byte-exact with `open_suffix_in_place`.
    #[test]
    fn open_batch_matches_sequential() {
        let key = [0x43u8; 16];
        let sizes = [0usize, 1, 15, 16, 17, 47, 48, 64, 200];
        for backend in Backend::available() {
            let ccm = AesCcm::with_backend(&key, 8, 2, backend).unwrap();
            let nonces: Vec<[u8; 13]> = (0..sizes.len())
                .map(|i| core::array::from_fn(|j| (i * 29 + j) as u8))
                .collect();
            let aads: Vec<Vec<u8>> = (0..sizes.len())
                .map(|i| vec![i as u8; i * 5 % 33])
                .collect();
            let plains: Vec<Vec<u8>> = sizes
                .iter()
                .enumerate()
                .map(|(i, &n)| (0..n).map(|j| (i * 13 + j) as u8).collect())
                .collect();
            // Each buffer: 3 framing bytes, then ciphertext || tag.
            let mut bufs: Vec<Vec<u8>> = plains
                .iter()
                .enumerate()
                .map(|(i, p)| {
                    let mut buf = vec![0xEE, 0xFF, i as u8];
                    ccm.seal_into(&nonces[i], &aads[i], p, &mut buf).unwrap();
                    buf
                })
                .collect();
            let mut reqs: Vec<OpenRequest<'_>> = bufs
                .iter_mut()
                .enumerate()
                .map(|(i, buf)| OpenRequest {
                    nonce: &nonces[i],
                    aad: &aads[i],
                    buf,
                    start: 3,
                })
                .collect();
            ccm.open_suffix_batch(&mut reqs).unwrap();
            for (i, buf) in bufs.iter().enumerate() {
                assert_eq!(&buf[..3], &[0xEE, 0xFF, i as u8], "{}", backend.label());
                assert_eq!(&buf[3..], plains[i], "{}", backend.label());
            }
        }
    }

    /// A forged packet anywhere in an open batch fails the whole batch
    /// and restores *every* buffer byte-exactly — no plaintext of any
    /// packet (valid or forged) is left behind.
    #[test]
    fn open_batch_failure_restores_every_buffer() {
        let ccm = AesCcm::cose_ccm_16_64_128(&[0x61u8; 16]);
        let nonces: Vec<[u8; 13]> = (0..3).map(|i| [i as u8 + 1; 13]).collect();
        let mut bufs: Vec<Vec<u8>> = (0..3)
            .map(|i| {
                ccm.seal(&nonces[i], b"aad", format!("packet {i}").as_bytes())
                    .unwrap()
            })
            .collect();
        bufs[1][2] ^= 0x80; // forge the middle packet
        let snapshots = bufs.clone();
        let mut reqs: Vec<OpenRequest<'_>> = bufs
            .iter_mut()
            .enumerate()
            .map(|(i, buf)| OpenRequest {
                nonce: &nonces[i],
                aad: b"aad",
                buf,
                start: 0,
            })
            .collect();
        assert_eq!(
            ccm.open_suffix_batch(&mut reqs),
            Err(CryptoError::AuthFailed)
        );
        assert_eq!(bufs, snapshots, "all buffers restored on failure");

        // Parameter errors are caught before any buffer is touched: a
        // wrong nonce length is InvalidParameter, a suffix shorter
        // than the tag is AuthFailed.
        let short_nonce = [9u8; 12];
        let mut reqs: Vec<OpenRequest<'_>> = bufs
            .iter_mut()
            .map(|buf| OpenRequest {
                nonce: &short_nonce,
                aad: b"aad",
                buf,
                start: 0,
            })
            .collect();
        assert_eq!(
            ccm.open_suffix_batch(&mut reqs),
            Err(CryptoError::InvalidParameter)
        );
        let mut tiny = vec![1u8, 2, 3];
        let mut reqs = [OpenRequest {
            nonce: &nonces[0],
            aad: b"",
            buf: &mut tiny,
            start: 0,
        }];
        assert_eq!(
            ccm.open_suffix_batch(&mut reqs),
            Err(CryptoError::AuthFailed)
        );
        assert_eq!(tiny, vec![1u8, 2, 3]);
    }

    /// `new_cached` builds the same cipher as `new` (through the
    /// per-thread schedule cache) and rejects the same bad parameters.
    #[test]
    fn cached_constructor_matches_fresh() {
        let key = [0x37u8; 16];
        let nonce = [5u8; 13];
        let sealed = AesCcm::new(&key, 8, 2)
            .unwrap()
            .seal(&nonce, b"aad", b"hello")
            .unwrap();
        let cached = AesCcm::new_cached(&key, 8, 2).unwrap();
        assert_eq!(cached.seal(&nonce, b"aad", b"hello").unwrap(), sealed);
        assert_eq!(cached.open(&nonce, b"aad", &sealed).unwrap(), b"hello");
        assert!(AesCcm::new_cached(&key, 3, 2).is_err());
        assert!(AesCcm::new_cached(&key, 8, 1).is_err());
    }

    /// `open_into` appends after existing bytes, and restores the
    /// buffer on authentication failure.
    #[test]
    fn open_into_appends_and_rolls_back() {
        let ccm = AesCcm::cose_ccm_16_64_128(&[7u8; 16]);
        let nonce = [9u8; 13];
        let sealed = ccm.seal(&nonce, b"aad", b"payload").unwrap();
        let mut out = vec![0xAB];
        ccm.open_into(&nonce, b"aad", &sealed, &mut out).unwrap();
        assert_eq!(out, b"\xABpayload");
        let mut bad = sealed.clone();
        bad[0] ^= 1;
        let mut out = vec![0xAB];
        assert_eq!(
            ccm.open_into(&nonce, b"aad", &bad, &mut out),
            Err(CryptoError::AuthFailed)
        );
        assert_eq!(out, vec![0xAB], "buffer restored on failure");
    }

    /// `open_in_place` / `open_suffix_in_place` mirror the seal side:
    /// success leaves the plaintext, failure restores the ciphertext
    /// byte-exactly.
    #[test]
    fn open_in_place_roundtrip_and_restore() {
        let ccm = AesCcm::cose_ccm_16_64_128(&[7u8; 16]);
        let nonce = [9u8; 13];
        let plain = b"plaintext across blocks, in place this time";
        let sealed = ccm.seal(&nonce, b"aad", plain).unwrap();

        let mut buf = sealed.clone();
        ccm.open_in_place(&nonce, b"aad", &mut buf).unwrap();
        assert_eq!(buf, plain);

        let mut framed = vec![0xEE, 0xFF];
        framed.extend_from_slice(&sealed);
        ccm.open_suffix_in_place(&nonce, b"aad", &mut framed, 2)
            .unwrap();
        assert_eq!(&framed[..2], &[0xEE, 0xFF]);
        assert_eq!(&framed[2..], plain);

        // Tampered: buffer must be restored byte-exactly.
        let mut bad = sealed.clone();
        bad[3] ^= 0x80;
        let snapshot = bad.clone();
        assert_eq!(
            ccm.open_in_place(&nonce, b"aad", &mut bad),
            Err(CryptoError::AuthFailed)
        );
        assert_eq!(bad, snapshot, "ciphertext restored on failure");

        // Truncated input (shorter than the tag) fails cleanly.
        let mut tiny = sealed[..4].to_vec();
        assert_eq!(
            ccm.open_in_place(&nonce, b"aad", &mut tiny),
            Err(CryptoError::AuthFailed)
        );
        // `start` beyond the buffer is a parameter error, not a panic.
        let mut buf = sealed.clone();
        assert_eq!(
            ccm.open_suffix_in_place(&nonce, b"aad", &mut buf, sealed.len() + 1),
            Err(CryptoError::InvalidParameter)
        );
    }

    /// RFC 3610 packet vector #2 (plaintext not block-aligned).
    #[test]
    fn rfc3610_vector_2() {
        let key: [u8; 16] = unhex("C0C1C2C3C4C5C6C7C8C9CACBCCCDCECF")
            .try_into()
            .unwrap();
        let nonce = unhex("00000004030201A0A1A2A3A4A5");
        let packet = unhex("000102030405060708090A0B0C0D0E0F101112131415161718191A1B1C1D1E1F");
        let (aad, plain) = packet.split_at(8);
        let ccm = AesCcm::new(&key, 8, 2).unwrap();
        let sealed = ccm.seal(&nonce, aad, plain).unwrap();
        let expect = unhex("72C91A36E135F8CF291CA894085C87E3CC15C439C9E43A3BA091D56E10400916");
        assert_eq!(sealed, expect);
    }

    /// RFC 3610 packet vector #3.
    #[test]
    fn rfc3610_vector_3() {
        let key: [u8; 16] = unhex("C0C1C2C3C4C5C6C7C8C9CACBCCCDCECF")
            .try_into()
            .unwrap();
        let nonce = unhex("00000005040302A0A1A2A3A4A5");
        let packet = unhex("000102030405060708090A0B0C0D0E0F101112131415161718191A1B1C1D1E1F20");
        let (aad, plain) = packet.split_at(8);
        let ccm = AesCcm::new(&key, 8, 2).unwrap();
        let sealed = ccm.seal(&nonce, aad, plain).unwrap();
        let expect = unhex("51B1E5F44A197D1DA46B0F8E2D282AE871E838BB64DA8596574ADAA76FBD9FB0C5");
        assert_eq!(sealed, expect);
    }

    /// DTLS-style CCM-8 with 12-byte nonce round-trips.
    #[test]
    fn dtls_ccm8_roundtrip() {
        let key = [0x42u8; 16];
        let ccm = AesCcm::dtls_ccm8(&key);
        assert_eq!(ccm.nonce_len(), 12);
        let nonce = [7u8; 12];
        let aad = b"record header";
        let plain = b"application data of arbitrary length, hello DoC";
        let sealed = ccm.seal(&nonce, aad, plain).unwrap();
        assert_eq!(sealed.len(), plain.len() + 8);
        assert_eq!(ccm.open(&nonce, aad, &sealed).unwrap(), plain);
    }

    /// Tampering with ciphertext, tag, or AAD must fail authentication.
    #[test]
    fn tamper_detection() {
        let key = [3u8; 16];
        let ccm = AesCcm::cose_ccm_16_64_128(&key);
        let nonce = [9u8; 13];
        let sealed = ccm.seal(&nonce, b"aad", b"payload").unwrap();

        let mut bad = sealed.clone();
        bad[0] ^= 1;
        assert_eq!(ccm.open(&nonce, b"aad", &bad), Err(CryptoError::AuthFailed));

        let mut bad = sealed.clone();
        let last = bad.len() - 1;
        bad[last] ^= 1;
        assert_eq!(ccm.open(&nonce, b"aad", &bad), Err(CryptoError::AuthFailed));

        assert_eq!(
            ccm.open(&nonce, b"axd", &sealed),
            Err(CryptoError::AuthFailed)
        );
    }

    /// Wrong nonce fails authentication.
    #[test]
    fn wrong_nonce_fails() {
        let key = [3u8; 16];
        let ccm = AesCcm::cose_ccm_16_64_128(&key);
        let sealed = ccm.seal(&[1u8; 13], b"", b"payload").unwrap();
        assert_eq!(
            ccm.open(&[2u8; 13], b"", &sealed),
            Err(CryptoError::AuthFailed)
        );
    }

    /// Empty plaintext is legal: output is just the tag.
    #[test]
    fn empty_plaintext() {
        let key = [3u8; 16];
        let ccm = AesCcm::cose_ccm_16_64_128(&key);
        let nonce = [0u8; 13];
        let sealed = ccm.seal(&nonce, b"aad only", b"").unwrap();
        assert_eq!(sealed.len(), 8);
        assert_eq!(ccm.open(&nonce, b"aad only", &sealed).unwrap(), b"");
    }

    /// Empty AAD path (no adata flag) round-trips.
    #[test]
    fn empty_aad() {
        let key = [5u8; 16];
        let ccm = AesCcm::dtls_ccm8(&key);
        let nonce = [1u8; 12];
        let sealed = ccm.seal(&nonce, b"", b"data").unwrap();
        assert_eq!(ccm.open(&nonce, b"", &sealed).unwrap(), b"data");
    }

    /// Invalid parameters are rejected at construction.
    #[test]
    fn invalid_params() {
        let key = [0u8; 16];
        assert!(AesCcm::new(&key, 3, 2).is_err()); // odd tag
        assert!(AesCcm::new(&key, 2, 2).is_err()); // tag too short
        assert!(AesCcm::new(&key, 8, 1).is_err()); // L too small
        assert!(AesCcm::new(&key, 8, 9).is_err()); // L too large
    }

    /// Wrong nonce length is rejected.
    #[test]
    fn wrong_nonce_len() {
        let key = [0u8; 16];
        let ccm = AesCcm::dtls_ccm8(&key);
        assert_eq!(
            ccm.seal(&[0u8; 13], b"", b"x"),
            Err(CryptoError::InvalidParameter)
        );
    }

    /// Large AAD (>= 0xFF00 bytes) exercises the extended length encoding.
    #[test]
    fn large_aad_roundtrip() {
        let key = [1u8; 16];
        let ccm = AesCcm::cose_ccm_16_64_128(&key);
        let nonce = [4u8; 13];
        let aad = vec![0xA5u8; 0x1_0000];
        let sealed = ccm.seal(&nonce, &aad, b"tiny").unwrap();
        assert_eq!(ccm.open(&nonce, &aad, &sealed).unwrap(), b"tiny");
    }
}
