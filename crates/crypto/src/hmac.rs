//! HMAC-SHA256 (RFC 2104 / FIPS 198-1).

use crate::sha256::{Sha256, BLOCK_LEN, DIGEST_LEN};

/// Incremental HMAC-SHA256 context.
#[derive(Clone)]
pub struct HmacSha256 {
    inner: Sha256,
    opad_key: [u8; BLOCK_LEN],
}

impl HmacSha256 {
    /// Create a new HMAC context keyed with `key` (any length).
    pub fn new(key: &[u8]) -> Self {
        let mut k = [0u8; BLOCK_LEN];
        if key.len() > BLOCK_LEN {
            let d = crate::sha256::sha256(key);
            k[..DIGEST_LEN].copy_from_slice(&d);
        } else {
            k[..key.len()].copy_from_slice(key);
        }
        let mut ipad = [0u8; BLOCK_LEN];
        let mut opad = [0u8; BLOCK_LEN];
        for i in 0..BLOCK_LEN {
            ipad[i] = k[i] ^ 0x36;
            opad[i] = k[i] ^ 0x5c;
        }
        let mut inner = Sha256::new();
        inner.update(&ipad);
        HmacSha256 {
            inner,
            opad_key: opad,
        }
    }

    /// Absorb message data.
    pub fn update(&mut self, data: &[u8]) {
        self.inner.update(data);
    }

    /// Finish and return the 32-byte MAC.
    pub fn finalize(self) -> [u8; DIGEST_LEN] {
        let inner_digest = self.inner.finalize();
        let mut outer = Sha256::new();
        outer.update(&self.opad_key);
        outer.update(&inner_digest);
        outer.finalize()
    }
}

/// One-shot HMAC-SHA256.
pub fn hmac_sha256(key: &[u8], data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = HmacSha256::new(key);
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// RFC 4231 test case 1.
    #[test]
    fn rfc4231_tc1() {
        let key = [0x0bu8; 20];
        let mac = hmac_sha256(&key, b"Hi There");
        assert_eq!(
            hex(&mac),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7"
        );
    }

    /// RFC 4231 test case 2 ("Jefe").
    #[test]
    fn rfc4231_tc2() {
        let mac = hmac_sha256(b"Jefe", b"what do ya want for nothing?");
        assert_eq!(
            hex(&mac),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843"
        );
    }

    /// RFC 4231 test case 3 (0xaa key, 0xdd data).
    #[test]
    fn rfc4231_tc3() {
        let key = [0xaau8; 20];
        let data = [0xddu8; 50];
        let mac = hmac_sha256(&key, &data);
        assert_eq!(
            hex(&mac),
            "773ea91e36800e46854db8ebd09181a72959098b3ef8c122d9635514ced565fe"
        );
    }

    /// RFC 4231 test case 6 — key longer than the block size.
    #[test]
    fn rfc4231_tc6_long_key() {
        let key = [0xaau8; 131];
        let mac = hmac_sha256(
            &key,
            b"Test Using Larger Than Block-Size Key - Hash Key First",
        );
        assert_eq!(
            hex(&mac),
            "60e431591ee0b67f0d8a26aacbf5b77f8e0bc6213728c5140546040f0ee37f54"
        );
    }

    /// Incremental updates must match one-shot computation.
    #[test]
    fn incremental_equivalence() {
        let key = b"some key";
        let data = b"the quick brown fox jumps over the lazy dog";
        let oneshot = hmac_sha256(key, data);
        let mut h = HmacSha256::new(key);
        for chunk in data.chunks(7) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), oneshot);
    }
}
