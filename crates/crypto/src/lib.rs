//! `doc-crypto` — self-contained cryptographic and encoding substrate for
//! the DNS-over-CoAP reproduction.
//!
//! Implements everything the DoC protocol stack needs, from scratch:
//!
//! * [`aes`] — AES-128 block cipher (FIPS-197, encryption direction)
//!   with three runtime-dispatched implementations under [`backend`]:
//!   a scalar reference, a bitsliced constant-time fallback, and an
//!   AES-NI path (see the README "crypto substrate" section).
//! * [`ccm`] — AES-CCM authenticated encryption (RFC 3610), with the two
//!   parameterizations used by the paper: `AES-128-CCM-8` (DTLS,
//!   RFC 6655) and `AES-CCM-16-64-128` (COSE/OSCORE, RFC 8152).
//! * [`sha256`] — SHA-256 (FIPS 180-4).
//! * [`hmac`] — HMAC-SHA256 (RFC 2104).
//! * [`hkdf`] — HKDF extract/expand (RFC 5869), used by OSCORE context
//!   derivation.
//! * [`prf`] — the TLS 1.2 / DTLS 1.2 pseudo-random function
//!   (P_SHA256, RFC 5246 §5).
//! * [`base64url`] — unpadded base64url (RFC 4648 §5), used for the DoC
//!   GET request `dns=` query variable.
//! * [`cbor`] — a compact CBOR encoder/decoder (RFC 8949) sufficient for
//!   COSE structures and the `application/dns+cbor` format.
//!
//! All primitives are pure Rust with no dependencies. The AES/SHA hot
//! paths dispatch once per process to the fastest backend the CPU
//! offers (`DOC_CRYPTO_BACKEND=reference|soft|aesni|auto` overrides the
//! choice); the scalar reference implementations remain in-tree as the
//! ground truth the vector paths are differentially pinned to (see the
//! `crypto` fuzz family and `BENCH_crypto.json`).
//!
//! # Example
//!
//! Seal a DNS query under the OSCORE AEAD (`AES-CCM-16-64-128`) and
//! reject a tampered ciphertext:
//!
//! ```
//! use doc_crypto::ccm::AesCcm;
//!
//! let ccm = AesCcm::cose_ccm_16_64_128(b"0123456789abcdef");
//! let nonce = [0x42u8; 13];
//! let sealed = ccm.seal(&nonce, b"aad", b"dns query").unwrap();
//! assert_eq!(ccm.open(&nonce, b"aad", &sealed).unwrap(), b"dns query");
//!
//! let mut tampered = sealed.clone();
//! tampered[0] ^= 1;
//! assert!(ccm.open(&nonce, b"aad", &tampered).is_err());
//! ```

pub mod aes;
pub mod backend;
pub mod base64url;
pub mod cbor;
pub mod ccm;
pub mod hkdf;
pub mod hmac;
pub mod prf;
pub mod sha256;

/// Errors produced by cryptographic operations in this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CryptoError {
    /// Authentication tag verification failed on decryption.
    AuthFailed,
    /// A parameter (nonce length, tag length, key length) was invalid.
    InvalidParameter,
    /// Input data was malformed (e.g. bad base64 or truncated CBOR).
    Malformed,
}

impl core::fmt::Display for CryptoError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CryptoError::AuthFailed => write!(f, "authentication failed"),
            CryptoError::InvalidParameter => write!(f, "invalid parameter"),
            CryptoError::Malformed => write!(f, "malformed input"),
        }
    }
}

impl std::error::Error for CryptoError {}

/// Constant-time byte-slice comparison.
///
/// Used for MAC/tag verification so that unequal prefixes do not leak
/// timing information.
pub fn ct_eq(a: &[u8], b: &[u8]) -> bool {
    if a.len() != b.len() {
        return false;
    }
    let mut diff = 0u8;
    for (x, y) in a.iter().zip(b.iter()) {
        diff |= x ^ y;
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ct_eq_equal() {
        assert!(ct_eq(b"hello", b"hello"));
        assert!(ct_eq(b"", b""));
    }

    #[test]
    fn ct_eq_unequal_content() {
        assert!(!ct_eq(b"hello", b"hellp"));
    }

    #[test]
    fn ct_eq_unequal_length() {
        assert!(!ct_eq(b"hello", b"hell"));
    }

    #[test]
    fn error_display() {
        assert_eq!(CryptoError::AuthFailed.to_string(), "authentication failed");
        assert_eq!(
            CryptoError::InvalidParameter.to_string(),
            "invalid parameter"
        );
        assert_eq!(CryptoError::Malformed.to_string(), "malformed input");
    }
}
