//! AES-128 block cipher (FIPS-197) with runtime-dispatched backends.
//!
//! Only the encryption direction is implemented: every mode used in this
//! workspace (CCM = CTR + CBC-MAC) requires only the forward cipher.
//! Three implementations share the one portable key schedule:
//!
//! * the **reference** path below — a straightforward table-free
//!   byte-oriented cipher (`SubBytes` via a precomputed S-box,
//!   `MixColumns` via xtime), kept as the auditable ground truth;
//! * the **bitsliced** constant-time path in [`crate::backend::soft`],
//!   four blocks per pass;
//! * the **AES-NI** path in `crate::backend::aesni`, eight blocks in
//!   flight through hardware `aesenc`.
//!
//! [`Aes128::new`] picks the backend once per process (see
//! [`Backend::active`]); [`Aes128::with_backend`] pins one explicitly
//! for differential tests and benchmarks. [`Aes128::encrypt_blocks`]
//! is the multi-block entry point the batched CCM paths feed.

use crate::backend::{soft, Backend};
use crate::ct_eq;
use std::cell::RefCell;

/// The AES S-box (FIPS-197 Figure 7).
#[rustfmt::skip]
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

/// Round constants for key expansion.
const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

/// Multiply a GF(2^8) element by x (i.e. {02}).
#[inline]
fn xtime(b: u8) -> u8 {
    (b << 1) ^ (((b >> 7) & 1) * 0x1b)
}

/// An expanded AES-128 key schedule ready for block encryption.
#[derive(Clone)]
pub struct Aes128 {
    /// 11 round keys of 16 bytes each.
    round_keys: [[u8; 16]; 11],
    /// The bitsliced schedule for the `Soft` backend (zero otherwise).
    sliced_keys: soft::SlicedKeys,
    /// Which implementation executes this instance's blocks.
    backend: Backend,
}

impl Aes128 {
    /// Expand a 16-byte key for the process-wide active backend.
    pub fn new(key: &[u8; 16]) -> Self {
        Self::with_backend(key, Backend::active())
    }

    /// Fetch the expanded schedule for `key` from the per-thread cache,
    /// expanding (and caching) it on a miss. Re-deriving the same
    /// traffic key — e.g. `PacketKeys::derive` running both directions
    /// of every QUIC connection through HKDF — then skips the key
    /// expansion entirely. Entries are keyed on (key, active backend)
    /// so a backend override between calls cannot serve a schedule
    /// built for the wrong implementation; lookups compare keys in
    /// constant time.
    pub fn cached(key: &[u8; 16]) -> Self {
        let backend = Backend::active();
        SCHEDULE_CACHE.with(|cache| {
            let mut cache = cache.borrow_mut();
            if let Some(i) = cache
                .entries
                .iter()
                .position(|(k, b, _)| *b == backend && ct_eq(k, key))
            {
                cache.hits += 1;
                // Move-to-front keeps the hot keys resident.
                let entry = cache.entries.remove(i);
                let aes = entry.2.clone();
                cache.entries.insert(0, entry);
                return aes;
            }
            let aes = Self::with_backend(key, backend);
            cache.entries.insert(0, (*key, backend, aes.clone()));
            cache.entries.truncate(SCHEDULE_CACHE_CAP);
            aes
        })
    }

    /// Expand a 16-byte key, pinning a specific backend — used by the
    /// known-answer tests and benchmarks that must exercise every
    /// implementation regardless of what the machine would pick.
    pub fn with_backend(key: &[u8; 16], backend: Backend) -> Self {
        let round_keys = expand_key(key);
        let sliced_keys = if backend == Backend::Soft {
            soft::slice_round_keys(&round_keys)
        } else {
            [[0u64; 8]; 11]
        };
        Aes128 {
            round_keys,
            sliced_keys,
            backend,
        }
    }

    /// The backend this instance dispatches to.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Encrypt one 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        match self.backend {
            Backend::Reference => scalar_encrypt_block(&self.round_keys, block),
            _ => self.encrypt_blocks(core::slice::from_mut(block)),
        }
    }

    /// Encrypt many 16-byte blocks in place — the batch entry point.
    /// AES-NI keeps eight blocks in flight, the bitsliced fallback
    /// packs four per pass, the reference path loops one at a time.
    pub fn encrypt_blocks(&self, blocks: &mut [[u8; 16]]) {
        match self.backend {
            Backend::Reference => {
                for block in blocks.iter_mut() {
                    scalar_encrypt_block(&self.round_keys, block);
                }
            }
            Backend::Soft => soft::encrypt_blocks(&self.sliced_keys, blocks),
            Backend::AesNi => {
                #[cfg(target_arch = "x86_64")]
                // SAFETY: `Backend::AesNi` is only selected by
                // `Backend::active`/`Backend::available` after
                // `is_x86_feature_detected!("aes")` confirmed the CPU
                // executes the AES-NI instruction set.
                unsafe {
                    crate::backend::aesni::encrypt_blocks(&self.round_keys, blocks)
                }
                #[cfg(not(target_arch = "x86_64"))]
                unreachable!("AesNi backend cannot be constructed off x86_64")
            }
        }
    }

    /// Encrypt a copy of `block` and return the ciphertext block.
    pub fn encrypt(&self, block: &[u8; 16]) -> [u8; 16] {
        let mut out = *block;
        self.encrypt_block(&mut out);
        out
    }
}

/// How many distinct key schedules the per-thread cache retains.
///
/// Sized for the working set of a pool worker: a handful of live
/// traffic keys plus the DTLS/OSCORE contexts it multiplexes. The
/// cache is deliberately thread-local — no locking on the hot path,
/// and keys never cross a thread boundary through it.
const SCHEDULE_CACHE_CAP: usize = 8;

struct ScheduleCache {
    entries: Vec<([u8; 16], Backend, Aes128)>,
    hits: u64,
}

thread_local! {
    static SCHEDULE_CACHE: RefCell<ScheduleCache> = const {
        RefCell::new(ScheduleCache {
            entries: Vec::new(),
            hits: 0,
        })
    };
}

/// Cumulative [`Aes128::cached`] hit count on the calling thread —
/// lets tests (and diagnostics) observe that rederivations actually
/// bypass key expansion.
pub fn schedule_cache_hits() -> u64 {
    SCHEDULE_CACHE.with(|cache| cache.borrow().hits)
}

/// Expand a 16-byte key into the 11-round-key schedule (FIPS-197 §5.2).
fn expand_key(key: &[u8; 16]) -> [[u8; 16]; 11] {
    let mut w = [[0u8; 4]; 44];
    for (i, chunk) in key.chunks_exact(4).enumerate() {
        w[i].copy_from_slice(chunk);
    }
    for i in 4..44 {
        let mut temp = w[i - 1];
        if i % 4 == 0 {
            // RotWord + SubWord + Rcon
            temp.rotate_left(1);
            for t in temp.iter_mut() {
                *t = SBOX[*t as usize];
            }
            temp[0] ^= RCON[i / 4 - 1];
        }
        for j in 0..4 {
            w[i][j] = w[i - 4][j] ^ temp[j];
        }
    }
    let mut round_keys = [[0u8; 16]; 11];
    for (r, rk) in round_keys.iter_mut().enumerate() {
        for c in 0..4 {
            rk[c * 4..c * 4 + 4].copy_from_slice(&w[r * 4 + c]);
        }
    }
    round_keys
}

/// The scalar reference round function — ground truth for every other
/// backend's differential tests.
fn scalar_encrypt_block(round_keys: &[[u8; 16]; 11], block: &mut [u8; 16]) {
    add_round_key(block, &round_keys[0]);
    for rk in &round_keys[1..10] {
        scalar_sub_bytes(block);
        scalar_shift_rows(block);
        scalar_mix_columns(block);
        add_round_key(block, rk);
    }
    scalar_sub_bytes(block);
    scalar_shift_rows(block);
    add_round_key(block, &round_keys[10]);
}

#[inline]
fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for (s, k) in state.iter_mut().zip(rk.iter()) {
        *s ^= k;
    }
}

#[inline]
pub(crate) fn scalar_sub_bytes(state: &mut [u8; 16]) {
    for s in state.iter_mut() {
        *s = SBOX[*s as usize];
    }
}

/// State layout is column-major: byte `state[c*4 + r]` is row `r`,
/// column `c` (as in FIPS-197 when blocks are loaded column-wise).
#[inline]
pub(crate) fn scalar_shift_rows(state: &mut [u8; 16]) {
    // Row 1: rotate left by 1.
    let t = state[1];
    state[1] = state[5];
    state[5] = state[9];
    state[9] = state[13];
    state[13] = t;
    // Row 2: rotate left by 2.
    state.swap(2, 10);
    state.swap(6, 14);
    // Row 3: rotate left by 3 (== right by 1).
    let t = state[15];
    state[15] = state[11];
    state[11] = state[7];
    state[7] = state[3];
    state[3] = t;
}

#[inline]
pub(crate) fn scalar_mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let i = c * 4;
        let (a0, a1, a2, a3) = (state[i], state[i + 1], state[i + 2], state[i + 3]);
        let x = a0 ^ a1 ^ a2 ^ a3;
        state[i] ^= x ^ xtime(a0 ^ a1);
        state[i + 1] ^= x ^ xtime(a1 ^ a2);
        state[i + 2] ^= x ^ xtime(a2 ^ a3);
        state[i + 3] ^= x ^ xtime(a3 ^ a0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The per-thread schedule cache returns the same cipher as a
    /// fresh expansion, and a repeated key actually hits the cache.
    #[test]
    fn schedule_cache_matches_fresh_expansion() {
        let key = [0x5Au8; 16];
        let block = [0x3Cu8; 16];
        let fresh = Aes128::new(&key).encrypt(&block);
        assert_eq!(Aes128::cached(&key).encrypt(&block), fresh);
        let hits_before = schedule_cache_hits();
        assert_eq!(Aes128::cached(&key).encrypt(&block), fresh);
        assert!(
            schedule_cache_hits() > hits_before,
            "second lookup of the same key must hit the cache"
        );
        // Distinct keys get distinct schedules, even through the cache.
        let other = Aes128::cached(&[0xA5u8; 16]).encrypt(&block);
        assert_ne!(other, fresh);
    }

    /// FIPS-197 Appendix C.1 example vector — on every backend the
    /// machine can run.
    #[test]
    fn fips197_c1_all_backends() {
        let key: [u8; 16] = [
            0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
            0x0e, 0x0f,
        ];
        let plain: [u8; 16] = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        let expect: [u8; 16] = [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a,
        ];
        for backend in Backend::available() {
            let aes = Aes128::with_backend(&key, backend);
            assert_eq!(aes.encrypt(&plain), expect, "{}", backend.label());
        }
    }

    /// FIPS-197 Appendix B example vector.
    #[test]
    fn fips197_appendix_b() {
        let key: [u8; 16] = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let plain: [u8; 16] = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let expect: [u8; 16] = [
            0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
            0x0b, 0x32,
        ];
        for backend in Backend::available() {
            let aes = Aes128::with_backend(&key, backend);
            assert_eq!(aes.encrypt(&plain), expect, "{}", backend.label());
        }
    }

    /// Multi-block encryption is byte-exact with the scalar reference
    /// for every batch size that crosses the backends' group widths.
    #[test]
    fn encrypt_blocks_matches_reference_at_all_widths() {
        let key = [0x5Au8; 16];
        let reference = Aes128::with_backend(&key, Backend::Reference);
        for backend in Backend::available() {
            let aes = Aes128::with_backend(&key, backend);
            for n in 0..=19 {
                let mut blocks: Vec<[u8; 16]> = (0..n)
                    .map(|i| core::array::from_fn(|j| (i * 16 + j) as u8 ^ 0xC3))
                    .collect();
                let mut expect = blocks.clone();
                for b in expect.iter_mut() {
                    *b = reference.encrypt(b);
                }
                aes.encrypt_blocks(&mut blocks);
                assert_eq!(blocks, expect, "{} n={n}", backend.label());
            }
        }
    }

    /// Encryption must be deterministic and not modify its input when
    /// using the copying API.
    #[test]
    fn encrypt_is_pure() {
        let key = [7u8; 16];
        let block = [42u8; 16];
        let aes = Aes128::new(&key);
        let c1 = aes.encrypt(&block);
        let c2 = aes.encrypt(&block);
        assert_eq!(c1, c2);
        assert_ne!(c1, block);
    }

    /// Different keys must produce different ciphertexts for the same
    /// plaintext (sanity, not a security proof).
    #[test]
    fn key_separation() {
        let block = [0u8; 16];
        let c1 = Aes128::new(&[1u8; 16]).encrypt(&block);
        let c2 = Aes128::new(&[2u8; 16]).encrypt(&block);
        assert_ne!(c1, c2);
    }
}
