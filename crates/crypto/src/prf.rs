//! The TLS 1.2 / DTLS 1.2 pseudo-random function (RFC 5246 §5).
//!
//! `PRF(secret, label, seed) = P_SHA256(secret, label || seed)` — TLS 1.2
//! uses a single P_hash based on the negotiated MAC hash, which for the
//! paper's `TLS_PSK_WITH_AES_128_CCM_8` suite is SHA-256.
//!
//! Also provides the PSK premaster-secret construction of RFC 4279 §2.

use crate::hmac::HmacSha256;

/// `P_SHA256(secret, seed)` producing `out.len()` bytes (RFC 5246 §5).
pub fn p_sha256(secret: &[u8], seed: &[u8], out: &mut [u8]) {
    // A(0) = seed; A(i) = HMAC(secret, A(i-1))
    let mut a = {
        let mut h = HmacSha256::new(secret);
        h.update(seed);
        h.finalize()
    };
    let mut written = 0usize;
    while written < out.len() {
        let mut h = HmacSha256::new(secret);
        h.update(&a);
        h.update(seed);
        let block = h.finalize();
        let take = (out.len() - written).min(block.len());
        out[written..written + take].copy_from_slice(&block[..take]);
        written += take;
        let mut h = HmacSha256::new(secret);
        h.update(&a);
        a = h.finalize();
    }
}

/// `PRF(secret, label, seed)` per RFC 5246 §5.
pub fn prf(secret: &[u8], label: &[u8], seed: &[u8], out: &mut [u8]) {
    let mut label_seed = Vec::with_capacity(label.len() + seed.len());
    label_seed.extend_from_slice(label);
    label_seed.extend_from_slice(seed);
    p_sha256(secret, &label_seed, out);
}

/// Build the PSK premaster secret (RFC 4279 §2):
/// `uint16 N || N zero octets || uint16 N || psk` where `N = psk.len()`.
pub fn psk_premaster_secret(psk: &[u8]) -> Vec<u8> {
    let n = psk.len() as u16;
    let mut out = Vec::with_capacity(4 + 2 * psk.len());
    out.extend_from_slice(&n.to_be_bytes());
    out.extend(std::iter::repeat_n(0u8, psk.len()));
    out.extend_from_slice(&n.to_be_bytes());
    out.extend_from_slice(psk);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// Published TLS 1.2 PRF (SHA-256) test vector
    /// (widely used interop vector, e.g. from the mbedTLS / IETF TLS WG
    /// test set): secret=9b be43 6b a9 40 f0 17 b1 76 52 84 9a 71 db 35,
    /// label="test label", seed=a0 ba 9f 93 6c da 31 18 27 a6 f7 96 ff d5 19 8c.
    #[test]
    fn tls12_prf_vector() {
        let secret = [
            0x9bu8, 0xbe, 0x43, 0x6b, 0xa9, 0x40, 0xf0, 0x17, 0xb1, 0x76, 0x52, 0x84, 0x9a, 0x71,
            0xdb, 0x35,
        ];
        let seed = [
            0xa0u8, 0xba, 0x9f, 0x93, 0x6c, 0xda, 0x31, 0x18, 0x27, 0xa6, 0xf7, 0x96, 0xff, 0xd5,
            0x19, 0x8c,
        ];
        let mut out = [0u8; 100];
        prf(&secret, b"test label", &seed, &mut out);
        assert_eq!(
            hex(&out),
            "e3f229ba727be17b8d122620557cd453c2aab21d07c3d495329b52d4e61edb5a\
             6b301791e90d35c9c9a46b4e14baf9af0fa022f7077def17abfd3797c0564bab\
             4fbc91666e9def9b97fce34f796789baa48082d122ee42c5a72e5a5110fff701\
             87347b66"
        );
    }

    /// PSK premaster secret layout for a 9-byte PSK (the paper uses
    /// 9-byte pre-shared keys).
    #[test]
    fn psk_premaster_layout() {
        let psk = b"123456789";
        let pms = psk_premaster_secret(psk);
        assert_eq!(pms.len(), 4 + 18);
        assert_eq!(&pms[0..2], &[0x00, 0x09]);
        assert_eq!(&pms[2..11], &[0u8; 9]);
        assert_eq!(&pms[11..13], &[0x00, 0x09]);
        assert_eq!(&pms[13..], psk);
    }

    /// PRF output must be deterministic and label-separated.
    #[test]
    fn label_separation() {
        let mut a = [0u8; 32];
        let mut b = [0u8; 32];
        prf(b"secret", b"label one", b"seed", &mut a);
        prf(b"secret", b"label two", b"seed", &mut b);
        assert_ne!(a, b);
        let mut a2 = [0u8; 32];
        prf(b"secret", b"label one", b"seed", &mut a2);
        assert_eq!(a, a2);
    }

    /// Prefix property: asking for fewer bytes yields a prefix of more.
    #[test]
    fn prefix_property() {
        let mut long = [0u8; 64];
        let mut short = [0u8; 16];
        prf(b"s", b"l", b"x", &mut long);
        prf(b"s", b"l", b"x", &mut short);
        assert_eq!(&long[..16], &short[..]);
    }
}
