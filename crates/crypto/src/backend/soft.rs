//! Bitsliced constant-time AES-128 — the software fallback backend.
//!
//! Four blocks are packed into eight 64-bit words: bit `p` of word `i`
//! holds bit `i` of byte `p` of the 64-byte group (`p = 16*block +
//! 4*col + row`, the same column-major state order the scalar cipher
//! uses). Every round operation is then pure boolean algebra over the
//! eight bit-planes: `SubBytes` is a GF(2^8) inversion computed with an
//! addition chain of bitsliced multiplications, `ShiftRows` /
//! `MixColumns` are shift-and-mask lane rotations. There are **no
//! secret-indexed table loads and no secret-dependent branches**, so
//! (unlike the byte-oriented reference cipher's S-box lookups) the data
//! path is constant-time; and four blocks ride one pass, which is what
//! makes batched CCM worthwhile without hardware AES.
//!
//! The key *schedule* is still expanded with the scalar S-box — it runs
//! once per key (cipher instances are cached by the transports), and
//! keys in this workspace are not attacker-observable through timing.

/// Blocks per bitsliced pass.
pub(crate) const GROUP: usize = 4;

/// A bitsliced round-key schedule: each round key replicated across the
/// four block lanes, ready to XOR into the state planes.
pub(crate) type SlicedKeys = [[u64; 8]; 11];

/// Bitslice the scalar round-key schedule once at key setup.
pub(crate) fn slice_round_keys(round_keys: &[[u8; 16]; 11]) -> SlicedKeys {
    let mut out = [[0u64; 8]; 11];
    for (r, rk) in round_keys.iter().enumerate() {
        let mut group = [0u8; 64];
        for lane in 0..GROUP {
            group[lane * 16..][..16].copy_from_slice(rk);
        }
        out[r] = bitslice(&group);
    }
    out
}

/// Encrypt any number of blocks, four per bitsliced pass.
pub(crate) fn encrypt_blocks(keys: &SlicedKeys, blocks: &mut [[u8; 16]]) {
    for group in blocks.chunks_mut(GROUP) {
        encrypt_group(keys, group);
    }
}

/// Encrypt up to four blocks in one pass (unused lanes carry zeros and
/// are discarded).
fn encrypt_group(keys: &SlicedKeys, blocks: &mut [[u8; 16]]) {
    debug_assert!(blocks.len() <= GROUP);
    let mut buf = [0u8; 64];
    for (lane, block) in blocks.iter().enumerate() {
        buf[lane * 16..][..16].copy_from_slice(block);
    }
    let mut w = bitslice(&buf);
    xor_keys(&mut w, &keys[0]);
    for keys in &keys[1..10] {
        sub_bytes(&mut w);
        shift_rows(&mut w);
        mix_columns(&mut w);
        xor_keys(&mut w, keys);
    }
    sub_bytes(&mut w);
    shift_rows(&mut w);
    xor_keys(&mut w, &keys[10]);
    let buf = unbitslice(&w);
    for (lane, block) in blocks.iter_mut().enumerate() {
        block.copy_from_slice(&buf[lane * 16..][..16]);
    }
}

#[inline]
fn xor_keys(w: &mut [u64; 8], rk: &[u64; 8]) {
    for (wi, ki) in w.iter_mut().zip(rk.iter()) {
        *wi ^= ki;
    }
}

// ---------------------------------------------------------------------------
// (Un)bitslicing: a 64x8 bit-matrix transpose done as a per-word 8x8
// bit transpose followed by an 8x8 byte transpose across the words.
// Writing byte p's bits as coordinates (word j, byte k, bit b) with
// p = 8j + k, the target layout (word b, byte j, bit k) is reached by
// first swapping k<->b inside each word, then swapping j<->b across
// words. Both halves are their own inverse, so unbitslicing runs the
// same two steps in reverse order.
// ---------------------------------------------------------------------------

/// Pack 64 bytes (4 blocks) into 8 bit-plane words.
fn bitslice(bytes: &[u8; 64]) -> [u64; 8] {
    let mut w = [0u64; 8];
    for (wi, chunk) in w.iter_mut().zip(bytes.chunks_exact(8)) {
        *wi = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
    }
    for wi in w.iter_mut() {
        *wi = transpose_bits(*wi);
    }
    transpose_bytes(&mut w);
    w
}

/// Unpack 8 bit-plane words back into 64 bytes.
fn unbitslice(w: &[u64; 8]) -> [u8; 64] {
    let mut w = *w;
    transpose_bytes(&mut w);
    let mut bytes = [0u8; 64];
    for (wi, chunk) in w.iter().zip(bytes.chunks_exact_mut(8)) {
        chunk.copy_from_slice(&transpose_bits(*wi).to_le_bytes());
    }
    bytes
}

/// Transpose a u64 viewed as an 8x8 bit matrix (bit `8r + c` <-> bit
/// `8c + r`) with three delta swaps (Hacker's Delight §7-3).
#[inline]
fn transpose_bits(mut x: u64) -> u64 {
    let t = (x ^ (x >> 7)) & 0x00AA_00AA_00AA_00AA;
    x ^= t ^ (t << 7);
    let t = (x ^ (x >> 14)) & 0x0000_CCCC_0000_CCCC;
    x ^= t ^ (t << 14);
    let t = (x ^ (x >> 28)) & 0x0000_0000_F0F0_F0F0;
    x ^= t ^ (t << 28);
    x
}

/// Transpose the 8x8 byte matrix whose rows are the eight words
/// (word `j` byte `k` <-> word `k` byte `j`), again by delta swaps.
#[inline]
fn transpose_bytes(w: &mut [u64; 8]) {
    #[inline]
    fn delta(w: &mut [u64; 8], a: usize, b: usize, s: u32, mask: u64) {
        let t = ((w[a] >> s) ^ w[b]) & mask;
        w[b] ^= t;
        w[a] ^= t << s;
    }
    for pair in [(0, 1), (2, 3), (4, 5), (6, 7)] {
        delta(w, pair.0, pair.1, 8, 0x00FF_00FF_00FF_00FF);
    }
    for pair in [(0, 2), (1, 3), (4, 6), (5, 7)] {
        delta(w, pair.0, pair.1, 16, 0x0000_FFFF_0000_FFFF);
    }
    for pair in [(0, 4), (1, 5), (2, 6), (3, 7)] {
        delta(w, pair.0, pair.1, 32, 0x0000_0000_FFFF_FFFF);
    }
}

// ---------------------------------------------------------------------------
// Round operations on the bit-plane representation.
// ---------------------------------------------------------------------------

/// `SubBytes`: GF(2^8) inversion as x^254 (addition chain: 4 bitsliced
/// multiplications + 7 squarings) followed by the FIPS-197 affine map.
fn sub_bytes(w: &mut [u64; 8]) {
    // x^254 = ((x^15)^16 * x^12) * x^2 with x^15 = x^12 * x^3.
    let x2 = gf_square(w);
    let x3 = gf_mul(&x2, w);
    let x6 = gf_square(&x3);
    let x12 = gf_square(&x6);
    let x15 = gf_mul(&x12, &x3);
    let mut x240 = x15;
    for _ in 0..4 {
        x240 = gf_square(&x240);
    }
    let x252 = gf_mul(&x240, &x12);
    let inv = gf_mul(&x252, &x2);
    // Affine: b_i = a_i ^ a_{i+4} ^ a_{i+5} ^ a_{i+6} ^ a_{i+7} ^ c_i
    // (indices mod 8, c = 0x63 so planes 0,1,5,6 are complemented).
    for i in 0..8 {
        w[i] = inv[i] ^ inv[(i + 4) % 8] ^ inv[(i + 5) % 8] ^ inv[(i + 6) % 8] ^ inv[(i + 7) % 8];
    }
    for i in [0usize, 1, 5, 6] {
        w[i] = !w[i];
    }
}

/// Bitsliced GF(2^8) multiply: 64 AND partial products folded by the
/// reduction x^8 = x^4 + x^3 + x + 1.
#[inline]
fn gf_mul(a: &[u64; 8], b: &[u64; 8]) -> [u64; 8] {
    let mut t = [0u64; 15];
    for i in 0..8 {
        for j in 0..8 {
            t[i + j] ^= a[i] & b[j];
        }
    }
    for k in (8..15).rev() {
        let hi = t[k];
        t[k - 4] ^= hi;
        t[k - 5] ^= hi;
        t[k - 7] ^= hi;
        t[k - 8] ^= hi;
    }
    t[..8].try_into().expect("8 reduced planes")
}

/// Bitsliced GF(2^8) squaring — linear over GF(2), so just XORs of
/// planes (coefficients of (sum a_i x^i)^2 reduced mod the AES poly).
#[inline]
fn gf_square(a: &[u64; 8]) -> [u64; 8] {
    [
        a[0] ^ a[4] ^ a[6],
        a[4] ^ a[6] ^ a[7],
        a[1] ^ a[5],
        a[4] ^ a[5] ^ a[6] ^ a[7],
        a[2] ^ a[4] ^ a[7],
        a[5] ^ a[6],
        a[3] ^ a[5],
        a[6] ^ a[7],
    ]
}

/// `ShiftRows`: row `r` lives at bit positions `== r (mod 4)`; rotating
/// it left by `r` columns is a lane rotation by `4r` bits within each
/// block's 16-bit lane.
fn shift_rows(w: &mut [u64; 8]) {
    const ROW: u64 = 0x1111_1111_1111_1111;
    for wi in w.iter_mut() {
        let x = *wi;
        *wi = (x & ROW)
            | lane_ror(x & (ROW << 1), 4)
            | lane_ror(x & (ROW << 2), 8)
            | lane_ror(x & (ROW << 3), 12);
    }
}

/// Rotate each 16-bit lane of `x` right by `s` bits.
#[inline]
fn lane_ror(x: u64, s: u32) -> u64 {
    let lo = 0xFFFFu64 >> s;
    let lo = lo | lo << 16 | lo << 32 | lo << 48;
    let hi = (0xFFFFu64 << (16 - s)) & 0xFFFF;
    let hi = hi | hi << 16 | hi << 32 | hi << 48;
    ((x >> s) & lo) | ((x << (16 - s)) & hi)
}

/// `MixColumns`: with a column's four row bytes as a 4-bit group, the
/// group rotations r_k place row `r+k` at position `r`, and the FIPS
/// column mix is `2*(a_r ^ a_{r+1}) ^ a_{r+1} ^ a_{r+2} ^ a_{r+3}`.
fn mix_columns(w: &mut [u64; 8]) {
    let mut doubled = [0u64; 8];
    let mut rest = [0u64; 8];
    for i in 0..8 {
        let r1 = grp_ror1(w[i]);
        doubled[i] = w[i] ^ r1;
        rest[i] = r1 ^ grp_ror2(w[i]) ^ grp_ror3(w[i]);
    }
    let xt = xtime_planes(&doubled);
    for i in 0..8 {
        w[i] = xt[i] ^ rest[i];
    }
}

/// Rotate each 4-bit group right by one bit (row r takes row r+1).
#[inline]
fn grp_ror1(x: u64) -> u64 {
    ((x >> 1) & 0x7777_7777_7777_7777) | ((x << 3) & 0x8888_8888_8888_8888)
}

/// Rotate each 4-bit group right by two bits.
#[inline]
fn grp_ror2(x: u64) -> u64 {
    ((x >> 2) & 0x3333_3333_3333_3333) | ((x << 2) & 0xCCCC_CCCC_CCCC_CCCC)
}

/// Rotate each 4-bit group right by three bits.
#[inline]
fn grp_ror3(x: u64) -> u64 {
    ((x >> 3) & 0x1111_1111_1111_1111) | ((x << 1) & 0xEEEE_EEEE_EEEE_EEEE)
}

/// Multiply every byte (spread across the planes) by {02}: shift the
/// planes up one and fold the carry back per the AES polynomial 0x1b.
#[inline]
fn xtime_planes(a: &[u64; 8]) -> [u64; 8] {
    [
        a[7],
        a[0] ^ a[7],
        a[1],
        a[2] ^ a[7],
        a[3] ^ a[7],
        a[4],
        a[5],
        a[6],
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Bit-by-bit reference for the packing: bit `p` of plane `i` is
    /// bit `i` of byte `p`.
    fn naive_bitslice(bytes: &[u8; 64]) -> [u64; 8] {
        let mut w = [0u64; 8];
        for (p, byte) in bytes.iter().enumerate() {
            for (i, wi) in w.iter_mut().enumerate() {
                *wi |= u64::from((byte >> i) & 1) << p;
            }
        }
        w
    }

    fn pseudo_random_bytes(seed: u64) -> [u8; 64] {
        let mut x = seed | 1;
        let mut out = [0u8; 64];
        for b in out.iter_mut() {
            // xorshift64 — deterministic test data, not crypto.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            *b = x as u8;
        }
        out
    }

    #[test]
    fn bitslice_matches_naive_reference() {
        for seed in 0..64 {
            let bytes = pseudo_random_bytes(seed);
            assert_eq!(bitslice(&bytes), naive_bitslice(&bytes), "seed {seed}");
        }
    }

    #[test]
    fn unbitslice_roundtrips() {
        for seed in 0..64 {
            let bytes = pseudo_random_bytes(seed);
            assert_eq!(unbitslice(&bitslice(&bytes)), bytes, "seed {seed}");
        }
    }

    /// Drive each bitsliced round primitive against the scalar cipher's
    /// byte-oriented equivalent on random states.
    #[test]
    fn round_ops_match_scalar_semantics() {
        for seed in 0..16 {
            let bytes = pseudo_random_bytes(seed);
            let mut w = bitslice(&bytes);
            sub_bytes(&mut w);
            shift_rows(&mut w);
            mix_columns(&mut w);
            let fast = unbitslice(&w);

            let mut expect = bytes;
            for block in expect.chunks_exact_mut(16) {
                let block: &mut [u8; 16] = block.try_into().unwrap();
                crate::aes::scalar_sub_bytes(block);
                crate::aes::scalar_shift_rows(block);
                crate::aes::scalar_mix_columns(block);
            }
            assert_eq!(fast, expect, "seed {seed}");
        }
    }

    /// GF inversion sanity: squaring then multiplying matches the
    /// scalar multiply on every byte value.
    #[test]
    fn gf_square_is_self_multiply() {
        let bytes = pseudo_random_bytes(99);
        let w = bitslice(&bytes);
        assert_eq!(gf_square(&w), gf_mul(&w, &w));
    }
}
