//! Hardware AES via the x86_64 AES-NI instructions.
//!
//! One `aesenc` per round per block, with up to eight independent
//! blocks in flight per chunk so the pipelined AES units overlap the
//! rounds of neighbouring blocks — this is where batched CCM gets its
//! throughput: a batch's counter blocks and interleaved CBC-MAC states
//! all ride the same eight-wide chunks.
//!
//! The round keys are expanded once by the portable schedule in
//! [`crate::aes`] and loaded with unaligned moves here; no
//! `aeskeygenassist` is needed. All functions carry
//! `#[target_feature(enable = "aes")]` and are **safe to declare but
//! unsafe to reach**: the single dispatch site in `crate::aes` only
//! calls in after `is_x86_feature_detected!("aes")` has confirmed
//! support (cached in [`super::Backend::active`]).

use core::arch::x86_64::{
    __m128i, _mm_aesenc_si128, _mm_aesenclast_si128, _mm_loadu_si128, _mm_setzero_si128,
    _mm_storeu_si128, _mm_xor_si128,
};

/// Blocks kept in flight per chunk.
pub(crate) const PIPELINE: usize = 8;

/// Encrypt `blocks` in place with the expanded schedule `round_keys`.
#[target_feature(enable = "aes")]
pub(crate) fn encrypt_blocks(round_keys: &[[u8; 16]; 11], blocks: &mut [[u8; 16]]) {
    let mut rk = [_mm_setzero_si128(); 11];
    for (r, key) in rk.iter_mut().zip(round_keys.iter()) {
        // SAFETY: `key` points at 16 readable bytes and `loadu` has no
        // alignment requirement.
        *r = unsafe { _mm_loadu_si128(key.as_ptr().cast()) };
    }
    for chunk in blocks.chunks_mut(PIPELINE) {
        let mut s = [_mm_setzero_si128(); PIPELINE];
        for (si, block) in s.iter_mut().zip(chunk.iter()) {
            // SAFETY: each block is 16 readable bytes; unaligned load.
            *si = unsafe { _mm_loadu_si128(block.as_ptr().cast()) };
        }
        let live = &mut s[..chunk.len()];
        for si in live.iter_mut() {
            *si = _mm_xor_si128(*si, rk[0]);
        }
        for r in &rk[1..10] {
            // Independent chains: the CPU overlaps these aesenc ops.
            for si in live.iter_mut() {
                *si = _mm_aesenc_si128(*si, *r);
            }
        }
        for si in live.iter_mut() {
            *si = _mm_aesenclast_si128(*si, rk[10]);
        }
        for (block, si) in chunk.iter_mut().zip(s.iter()) {
            // SAFETY: each block is 16 writable bytes; unaligned store.
            unsafe { _mm_storeu_si128(block.as_mut_ptr().cast::<__m128i>(), *si) };
        }
    }
}
