//! Runtime-dispatched AES/SHA acceleration backends.
//!
//! Three interchangeable AES-128 block-encryption implementations live
//! under this module:
//!
//! * [`Backend::Reference`] — the original table-free, byte-oriented
//!   scalar cipher in [`crate::aes`]. Slowest, simplest, and the
//!   ground truth every other backend is differentially pinned to.
//! * [`Backend::Soft`] — a bitsliced constant-time implementation
//!   ([`soft`]) that packs four blocks into eight 64-bit words and runs
//!   the round function with pure boolean algebra: no secret-indexed
//!   table loads, and four blocks per pass.
//! * [`Backend::AesNi`] — hardware AES via `core::arch::x86_64`
//!   intrinsics ([`aesni`]), pipelining up to eight independent blocks
//!   through `aesenc`.
//!
//! Selection happens **once per process**: the first call to
//! [`Backend::active`] probes CPU features (`is_x86_feature_detected!`)
//! and the `DOC_CRYPTO_BACKEND` environment variable, then caches the
//! answer in an atomic so the hot path pays one relaxed load. Set
//! `DOC_CRYPTO_BACKEND=reference|soft|aesni|auto` to force a backend
//! (benchmarks use this to measure the fallbacks on AES-NI hardware);
//! requesting an unavailable backend silently falls back to the best
//! one that is available, so the variable can never break a deploy.

#[cfg(target_arch = "x86_64")]
pub(crate) mod aesni;
pub(crate) mod soft;

use core::sync::atomic::{AtomicU8, Ordering};

/// Which AES-128 implementation a cipher instance executes on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Scalar byte-oriented reference implementation (always available).
    Reference,
    /// Bitsliced constant-time software implementation, 4 blocks/pass
    /// (always available).
    Soft,
    /// AES-NI hardware path, 8 blocks in flight (x86_64 with the `aes`
    /// feature only).
    AesNi,
}

/// Cached process-wide selection: 0 = undecided, else `backend as u8 + 1`.
static ACTIVE: AtomicU8 = AtomicU8::new(0);

/// Cached SHA-NI availability: 0 = undecided, 1 = no, 2 = yes.
static SHA_NI: AtomicU8 = AtomicU8::new(0);

impl Backend {
    /// The process-wide backend new [`crate::aes::Aes128`] instances
    /// use. Decided on first call (CPU probe + `DOC_CRYPTO_BACKEND`
    /// override), cached forever after.
    pub fn active() -> Backend {
        match ACTIVE.load(Ordering::Relaxed) {
            0 => {
                let chosen = Self::select();
                ACTIVE.store(chosen.tag(), Ordering::Relaxed);
                chosen
            }
            tag => Self::from_tag(tag),
        }
    }

    /// Every backend the current machine can execute, reference first.
    /// Known-answer tests iterate this so a machine without AES-NI
    /// still proves both software paths.
    pub fn available() -> Vec<Backend> {
        let mut v = vec![Backend::Reference, Backend::Soft];
        if aesni_detected() {
            v.push(Backend::AesNi);
        }
        v
    }

    /// Stable lowercase label used in bench artifacts and env overrides.
    pub fn label(self) -> &'static str {
        match self {
            Backend::Reference => "reference",
            Backend::Soft => "soft",
            Backend::AesNi => "aesni",
        }
    }

    fn tag(self) -> u8 {
        match self {
            Backend::Reference => 1,
            Backend::Soft => 2,
            Backend::AesNi => 3,
        }
    }

    fn from_tag(tag: u8) -> Backend {
        match tag {
            1 => Backend::Reference,
            2 => Backend::Soft,
            _ => Backend::AesNi,
        }
    }

    /// One-time selection: env override first, then best detected.
    fn select() -> Backend {
        let forced = std::env::var("DOC_CRYPTO_BACKEND").ok();
        match forced.as_deref() {
            Some("reference") => return Backend::Reference,
            Some("soft") => return Backend::Soft,
            Some("aesni") if aesni_detected() => return Backend::AesNi,
            // "auto", unknown values, and unavailable requests all fall
            // through to detection.
            _ => {}
        }
        if aesni_detected() {
            Backend::AesNi
        } else {
            Backend::Soft
        }
    }
}

/// Whether the CPU supports the AES-NI instruction set.
#[cfg(target_arch = "x86_64")]
fn aesni_detected() -> bool {
    std::arch::is_x86_feature_detected!("aes")
}

/// Non-x86_64 targets never have AES-NI.
#[cfg(not(target_arch = "x86_64"))]
fn aesni_detected() -> bool {
    false
}

/// Whether the SHA-256 compression loop should use the SHA-NI path.
/// Shares the `DOC_CRYPTO_BACKEND` override: forcing a software AES
/// backend also forces the scalar SHA-256 schedule, so "measure the
/// fallback" means the whole substrate, not just the block cipher.
pub fn sha_ni_active() -> bool {
    match SHA_NI.load(Ordering::Relaxed) {
        0 => {
            let on = sha_ni_detected()
                && !matches!(
                    std::env::var("DOC_CRYPTO_BACKEND").ok().as_deref(),
                    Some("reference") | Some("soft")
                );
            SHA_NI.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
        tag => tag == 2,
    }
}

/// Whether the CPU supports the SHA-NI extension (plus the SSE4.1 /
/// SSSE3 shuffles the round loop leans on).
#[cfg(target_arch = "x86_64")]
pub fn sha_ni_detected() -> bool {
    std::arch::is_x86_feature_detected!("sha")
        && std::arch::is_x86_feature_detected!("sse4.1")
        && std::arch::is_x86_feature_detected!("ssse3")
}

/// Non-x86_64 targets never have SHA-NI.
#[cfg(not(target_arch = "x86_64"))]
pub fn sha_ni_detected() -> bool {
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn active_is_cached_and_available() {
        let first = Backend::active();
        let second = Backend::active();
        assert_eq!(first, second);
        assert!(Backend::available().contains(&first));
    }

    #[test]
    fn reference_and_soft_always_available() {
        let avail = Backend::available();
        assert!(avail.contains(&Backend::Reference));
        assert!(avail.contains(&Backend::Soft));
        assert_eq!(avail[0], Backend::Reference);
    }

    #[test]
    fn labels_are_stable() {
        assert_eq!(Backend::Reference.label(), "reference");
        assert_eq!(Backend::Soft.label(), "soft");
        assert_eq!(Backend::AesNi.label(), "aesni");
    }

    #[test]
    fn tag_roundtrip() {
        for b in [Backend::Reference, Backend::Soft, Backend::AesNi] {
            assert_eq!(Backend::from_tag(b.tag()), b);
        }
    }
}
