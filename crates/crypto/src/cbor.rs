//! Concise Binary Object Representation (RFC 8949).
//!
//! A small, allocation-friendly CBOR encoder/decoder covering the subset
//! needed by COSE (`Encrypt0` structures, OSCORE `info` arrays) and by
//! the `application/dns+cbor` message format of
//! draft-lenders-dns-cbor (§7 of the paper).
//!
//! Supported: unsigned/negative integers, byte strings, text strings,
//! arrays, maps, tags, booleans, null. Indefinite lengths and floats are
//! intentionally omitted (neither COSE deterministic encoding nor
//! dns+cbor uses them); the decoder rejects them as
//! [`CryptoError::Malformed`].
//!
//! Encoding follows the RFC 8949 §4.2.1 core deterministic requirements:
//! shortest-form argument encoding.

use crate::CryptoError;

/// A decoded CBOR data item.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Major type 0.
    Uint(u64),
    /// Major type 1: the value `-1 - n` is stored as `Nint(n)`.
    Nint(u64),
    /// Major type 2.
    Bytes(Vec<u8>),
    /// Major type 3.
    Text(String),
    /// Major type 4.
    Array(Vec<Value>),
    /// Major type 5 (keys may be any value; order preserved).
    Map(Vec<(Value, Value)>),
    /// Major type 6.
    Tag(u64, Box<Value>),
    /// Simple values true/false.
    Bool(bool),
    /// Simple value null.
    Null,
}

impl Value {
    /// Convenience: view as u64 if this is an unsigned integer.
    pub fn as_uint(&self) -> Option<u64> {
        match self {
            Value::Uint(n) => Some(*n),
            _ => None,
        }
    }

    /// Convenience: view as byte slice.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Convenience: view as text.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(t) => Some(t),
            _ => None,
        }
    }

    /// Convenience: view as array slice.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Encode this value to bytes.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Encode this value, appending to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Value::Uint(n) => write_head(out, 0, *n),
            Value::Nint(n) => write_head(out, 1, *n),
            Value::Bytes(b) => {
                write_head(out, 2, b.len() as u64);
                out.extend_from_slice(b);
            }
            Value::Text(t) => {
                write_head(out, 3, t.len() as u64);
                out.extend_from_slice(t.as_bytes());
            }
            Value::Array(items) => {
                write_head(out, 4, items.len() as u64);
                for item in items {
                    item.encode_into(out);
                }
            }
            Value::Map(pairs) => {
                write_head(out, 5, pairs.len() as u64);
                for (k, v) in pairs {
                    k.encode_into(out);
                    v.encode_into(out);
                }
            }
            Value::Tag(tag, inner) => {
                write_head(out, 6, *tag);
                inner.encode_into(out);
            }
            Value::Bool(false) => out.push(0xf4),
            Value::Bool(true) => out.push(0xf5),
            Value::Null => out.push(0xf6),
        }
    }

    /// Decode a single CBOR item consuming the entire input.
    pub fn decode(data: &[u8]) -> Result<Value, CryptoError> {
        let mut dec = Decoder::new(data);
        let v = dec.item()?;
        if !dec.is_empty() {
            return Err(CryptoError::Malformed);
        }
        Ok(v)
    }

    /// Construct a signed integer value.
    pub fn int(n: i64) -> Value {
        if n >= 0 {
            Value::Uint(n as u64)
        } else {
            Value::Nint((-1 - n) as u64)
        }
    }

    /// View as a signed integer if integral.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Uint(n) if *n <= i64::MAX as u64 => Some(*n as i64),
            Value::Nint(n) if *n < i64::MAX as u64 => Some(-1 - (*n as i64)),
            _ => None,
        }
    }
}

/// Write a major-type head with shortest-form argument.
fn write_head(out: &mut Vec<u8>, major: u8, arg: u64) {
    let mt = major << 5;
    if arg < 24 {
        out.push(mt | arg as u8);
    } else if arg <= 0xff {
        out.push(mt | 24);
        out.push(arg as u8);
    } else if arg <= 0xffff {
        out.push(mt | 25);
        out.extend_from_slice(&(arg as u16).to_be_bytes());
    } else if arg <= 0xffff_ffff {
        out.push(mt | 26);
        out.extend_from_slice(&(arg as u32).to_be_bytes());
    } else {
        out.push(mt | 27);
        out.extend_from_slice(&arg.to_be_bytes());
    }
}

/// Stateful CBOR decoder over a byte slice.
pub struct Decoder<'a> {
    data: &'a [u8],
    pos: usize,
    depth: usize,
}

/// Maximum nesting depth accepted (defends against stack exhaustion from
/// adversarial input).
const MAX_DEPTH: usize = 32;

impl<'a> Decoder<'a> {
    /// Create a decoder over `data`.
    pub fn new(data: &'a [u8]) -> Self {
        Decoder {
            data,
            pos: 0,
            depth: 0,
        }
    }

    /// Whether all input has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos == self.data.len()
    }

    fn byte(&mut self) -> Result<u8, CryptoError> {
        let b = *self.data.get(self.pos).ok_or(CryptoError::Malformed)?;
        self.pos += 1;
        Ok(b)
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CryptoError> {
        if self.data.len() - self.pos < n {
            return Err(CryptoError::Malformed);
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn argument(&mut self, info: u8) -> Result<u64, CryptoError> {
        match info {
            0..=23 => Ok(info as u64),
            24 => Ok(self.byte()? as u64),
            25 => {
                let b = self.take(2)?;
                Ok(u16::from_be_bytes([b[0], b[1]]) as u64)
            }
            26 => {
                let b = self.take(4)?;
                Ok(u32::from_be_bytes([b[0], b[1], b[2], b[3]]) as u64)
            }
            27 => {
                let b = self.take(8)?;
                Ok(u64::from_be_bytes(b.try_into().expect("8 bytes")))
            }
            _ => Err(CryptoError::Malformed), // indefinite / reserved
        }
    }

    /// Decode the next data item.
    pub fn item(&mut self) -> Result<Value, CryptoError> {
        if self.depth >= MAX_DEPTH {
            return Err(CryptoError::Malformed);
        }
        let initial = self.byte()?;
        let major = initial >> 5;
        let info = initial & 0x1f;
        match major {
            0 => Ok(Value::Uint(self.argument(info)?)),
            1 => Ok(Value::Nint(self.argument(info)?)),
            2 => {
                let len = self.argument(info)? as usize;
                Ok(Value::Bytes(self.take(len)?.to_vec()))
            }
            3 => {
                let len = self.argument(info)? as usize;
                let raw = self.take(len)?;
                let s = std::str::from_utf8(raw).map_err(|_| CryptoError::Malformed)?;
                Ok(Value::Text(s.to_string()))
            }
            4 => {
                let len = self.argument(info)? as usize;
                // Each element takes at least one byte — pre-check to
                // bound allocation on adversarial length claims.
                if len > self.data.len() - self.pos {
                    return Err(CryptoError::Malformed);
                }
                let mut items = Vec::with_capacity(len.min(64));
                self.depth += 1;
                for _ in 0..len {
                    items.push(self.item()?);
                }
                self.depth -= 1;
                Ok(Value::Array(items))
            }
            5 => {
                let len = self.argument(info)? as usize;
                if len > (self.data.len() - self.pos) / 2 {
                    return Err(CryptoError::Malformed);
                }
                let mut pairs = Vec::with_capacity(len.min(64));
                self.depth += 1;
                for _ in 0..len {
                    let k = self.item()?;
                    let v = self.item()?;
                    pairs.push((k, v));
                }
                self.depth -= 1;
                Ok(Value::Map(pairs))
            }
            6 => {
                let tag = self.argument(info)?;
                self.depth += 1;
                let inner = self.item()?;
                self.depth -= 1;
                Ok(Value::Tag(tag, Box::new(inner)))
            }
            7 => match info {
                20 => Ok(Value::Bool(false)),
                21 => Ok(Value::Bool(true)),
                22 => Ok(Value::Null),
                _ => Err(CryptoError::Malformed),
            },
            _ => unreachable!("major type is 3 bits"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    /// RFC 8949 Appendix A examples for integers.
    #[test]
    fn rfc8949_integers() {
        assert_eq!(Value::Uint(0).encode(), unhex("00"));
        assert_eq!(Value::Uint(23).encode(), unhex("17"));
        assert_eq!(Value::Uint(24).encode(), unhex("1818"));
        assert_eq!(Value::Uint(100).encode(), unhex("1864"));
        assert_eq!(Value::Uint(1000).encode(), unhex("1903e8"));
        assert_eq!(Value::Uint(1_000_000).encode(), unhex("1a000f4240"));
        assert_eq!(
            Value::Uint(1_000_000_000_000).encode(),
            unhex("1b000000e8d4a51000")
        );
        assert_eq!(Value::int(-1).encode(), unhex("20"));
        assert_eq!(Value::int(-10).encode(), unhex("29"));
        assert_eq!(Value::int(-100).encode(), unhex("3863"));
        assert_eq!(Value::int(-1000).encode(), unhex("3903e7"));
    }

    /// RFC 8949 Appendix A examples for strings/arrays/maps.
    #[test]
    fn rfc8949_composites() {
        assert_eq!(
            Value::Bytes(unhex("01020304")).encode(),
            unhex("4401020304")
        );
        assert_eq!(Value::Text("IETF".into()).encode(), unhex("6449455446"));
        assert_eq!(
            Value::Array(vec![Value::Uint(1), Value::Uint(2), Value::Uint(3)]).encode(),
            unhex("83010203")
        );
        assert_eq!(
            Value::Map(vec![
                (Value::Uint(1), Value::Uint(2)),
                (Value::Uint(3), Value::Uint(4))
            ])
            .encode(),
            unhex("a201020304")
        );
        assert_eq!(Value::Bool(true).encode(), unhex("f5"));
        assert_eq!(Value::Null.encode(), unhex("f6"));
    }

    #[test]
    fn tag_roundtrip() {
        let v = Value::Tag(24, Box::new(Value::Bytes(vec![1, 2, 3])));
        assert_eq!(Value::decode(&v.encode()).unwrap(), v);
    }

    #[test]
    fn roundtrip_nested() {
        let v = Value::Array(vec![
            Value::Text("example.org".into()),
            Value::Uint(28),
            Value::Map(vec![(Value::int(-5), Value::Bytes(vec![0xAA; 20]))]),
            Value::Null,
            Value::Bool(false),
        ]);
        assert_eq!(Value::decode(&v.encode()).unwrap(), v);
    }

    #[test]
    fn reject_trailing_garbage() {
        let mut data = Value::Uint(1).encode();
        data.push(0x00);
        assert!(Value::decode(&data).is_err());
    }

    #[test]
    fn reject_truncated() {
        let data = Value::Bytes(vec![1, 2, 3, 4]).encode();
        assert!(Value::decode(&data[..3]).is_err());
    }

    #[test]
    fn reject_indefinite_and_floats() {
        assert!(Value::decode(&unhex("5f")).is_err()); // indefinite bytes
        assert!(Value::decode(&unhex("f97e00")).is_err()); // float16 NaN
        assert!(Value::decode(&unhex("ff")).is_err()); // lone break
    }

    #[test]
    fn reject_bad_utf8_text() {
        // Text string of length 2 with invalid UTF-8.
        assert!(Value::decode(&[0x62, 0xff, 0xfe]).is_err());
    }

    #[test]
    fn reject_huge_claimed_array() {
        // Array claiming 2^32 elements with no content must not allocate.
        assert!(Value::decode(&unhex("9affffffff")).is_err());
    }

    #[test]
    fn reject_deep_nesting() {
        // 64 nested arrays exceeds MAX_DEPTH.
        let mut data = vec![0x81u8; 64];
        data.push(0x01);
        assert!(Value::decode(&data).is_err());
    }

    #[test]
    fn int_conversions() {
        assert_eq!(Value::int(-1).as_int(), Some(-1));
        assert_eq!(Value::int(42).as_int(), Some(42));
        assert_eq!(Value::Uint(u64::MAX).as_int(), None);
        assert_eq!(Value::int(i64::MIN + 1).as_int(), Some(i64::MIN + 1));
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Uint(7).as_uint(), Some(7));
        assert_eq!(Value::Text("x".into()).as_text(), Some("x"));
        assert_eq!(Value::Bytes(vec![1]).as_bytes(), Some(&[1u8][..]));
        assert!(Value::Array(vec![]).as_array().is_some());
        assert_eq!(Value::Null.as_uint(), None);
    }
}
