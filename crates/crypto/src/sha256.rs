//! SHA-256 (FIPS 180-4).
//!
//! Streaming implementation used by [`crate::hmac`], [`crate::hkdf`]
//! and the DTLS handshake transcript hash. The compression loop is
//! multi-block: bulk input is fed straight from the caller's slice
//! (no per-block copy), and on x86_64 with the SHA extensions the
//! whole run goes through the hardware `sha256rnds2` schedule —
//! sharing the crypto substrate's one dispatch decision (see
//! [`crate::backend::sha_ni_active`]; `DOC_CRYPTO_BACKEND=reference` or
//! `soft` forces the scalar loop). [`sha256_portable`] pins the scalar
//! path for differential tests.

/// SHA-256 output size in bytes.
pub const DIGEST_LEN: usize = 32;
/// SHA-256 block size in bytes (relevant for HMAC).
pub const BLOCK_LEN: usize = 64;

#[rustfmt::skip]
const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Incremental SHA-256 hasher.
#[derive(Clone)]
pub struct Sha256 {
    state: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
    /// Whether this hasher runs the SHA-NI compression (decided once at
    /// construction from the process-wide dispatch).
    accel: bool,
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

impl Sha256 {
    /// Create a fresh hasher on the dispatched compression path.
    pub fn new() -> Self {
        Self::with_accel(crate::backend::sha_ni_active())
    }

    /// Create a hasher pinned to the portable scalar compression loop,
    /// regardless of hardware — the differential-test reference.
    pub fn new_portable() -> Self {
        Self::with_accel(false)
    }

    fn with_accel(accel: bool) -> Self {
        Sha256 {
            state: H0,
            buf: [0u8; 64],
            buf_len: 0,
            total_len: 0,
            accel,
        }
    }

    /// Absorb `data` into the hash state.
    pub fn update(&mut self, data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        let mut data = data;
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress_blocks(&block);
                self.buf_len = 0;
            }
        }
        // Bulk blocks stream straight from the caller's slice — one
        // multi-block compression call, no staging copy.
        let whole = data.len() - data.len() % 64;
        if whole > 0 {
            let (blocks, rest) = data.split_at(whole);
            self.compress_blocks(blocks);
            data = rest;
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finish the hash and return the 32-byte digest.
    pub fn finalize(mut self) -> [u8; DIGEST_LEN] {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80 then zeros then 64-bit big-endian length.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Manually absorb the length without updating total_len semantics.
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress_blocks(&block);
        let mut out = [0u8; DIGEST_LEN];
        for (i, word) in self.state.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&word.to_be_bytes());
        }
        out
    }

    /// Compress a whole run of 64-byte blocks.
    fn compress_blocks(&mut self, blocks: &[u8]) {
        debug_assert!(blocks.len().is_multiple_of(64));
        #[cfg(target_arch = "x86_64")]
        if self.accel {
            // SAFETY: `accel` is only set when `sha_ni_active` reported
            // the sha/sse4.1/ssse3 features present on this CPU, which
            // is the target-feature contract of the SHA-NI path.
            unsafe { shani::compress_blocks(&mut self.state, blocks) };
            return;
        }
        scalar_compress_blocks(&mut self.state, blocks);
    }
}

/// The portable FIPS 180-4 §6.2 compression loop over a run of blocks.
fn scalar_compress_blocks(state: &mut [u32; 8], blocks: &[u8]) {
    for block in blocks.chunks_exact(64) {
        let mut w = [0u32; 64];
        for (i, c) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = *state;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ ((!e) & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        state[0] = state[0].wrapping_add(a);
        state[1] = state[1].wrapping_add(b);
        state[2] = state[2].wrapping_add(c);
        state[3] = state[3].wrapping_add(d);
        state[4] = state[4].wrapping_add(e);
        state[5] = state[5].wrapping_add(f);
        state[6] = state[6].wrapping_add(g);
        state[7] = state[7].wrapping_add(h);
    }
}

/// Hardware compression via the x86_64 SHA extensions: two
/// `sha256rnds2` per four rounds on the ABEF/CDGH register split, with
/// the message schedule advanced by `sha256msg1`/`sha256msg2`.
#[cfg(target_arch = "x86_64")]
mod shani {
    use super::K;
    use core::arch::x86_64::{
        _mm_add_epi32, _mm_alignr_epi8, _mm_blend_epi16, _mm_loadu_si128, _mm_set_epi64x,
        _mm_sha256msg1_epu32, _mm_sha256msg2_epu32, _mm_sha256rnds2_epu32, _mm_shuffle_epi32,
        _mm_shuffle_epi8, _mm_storeu_si128,
    };

    /// Compress a run of 64-byte blocks into `state`. Safe to declare,
    /// unsafe to reach: the one call site dispatches in only after
    /// `sha_ni_active` confirmed the features below at runtime.
    #[target_feature(enable = "sha,sse4.1,ssse3,sse2")]
    pub(super) fn compress_blocks(state: &mut [u32; 8], blocks: &[u8]) {
        // Big-endian 32-bit loads: byteswap each word lane.
        let mask = _mm_set_epi64x(0x0c0d0e0f_08090a0bu64 as i64, 0x04050607_00010203u64 as i64);

        // Pack {a..h} into the ABEF / CDGH register split the sha256
        // round instruction expects.
        // SAFETY: `state` is 8 readable u32s; unaligned loads.
        let (tmp, st1) = unsafe {
            (
                _mm_loadu_si128(state.as_ptr().cast()),
                _mm_loadu_si128(state.as_ptr().add(4).cast()),
            )
        };
        let tmp = _mm_shuffle_epi32(tmp, 0xB1); // CDAB
        let st1 = _mm_shuffle_epi32(st1, 0x1B); // EFGH
        let mut state0 = _mm_alignr_epi8(tmp, st1, 8); // ABEF
        let mut state1 = _mm_blend_epi16(st1, tmp, 0xF0); // CDGH

        for block in blocks.chunks_exact(64) {
            let save0 = state0;
            let save1 = state1;

            // SAFETY: `block` is exactly 64 readable bytes; unaligned
            // loads of its four 16-byte quarters.
            let mut m = unsafe {
                [
                    _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().cast()), mask),
                    _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().add(16).cast()), mask),
                    _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().add(32).cast()), mask),
                    _mm_shuffle_epi8(_mm_loadu_si128(block.as_ptr().add(48).cast()), mask),
                ]
            };

            for j in 0..16 {
                // SAFETY: `K` holds 64 u32s and `4*j <= 60`, so the
                // 16-byte unaligned load stays in bounds.
                let k = unsafe { _mm_loadu_si128(K.as_ptr().add(4 * j).cast()) };
                let msg = _mm_add_epi32(m[j % 4], k);
                state1 = _mm_sha256rnds2_epu32(state1, state0, msg);
                let msg_hi = _mm_shuffle_epi32(msg, 0x0E);
                state0 = _mm_sha256rnds2_epu32(state0, state1, msg_hi);
                if j < 12 {
                    // Advance the message schedule: W[t] from W[t-16],
                    // W[t-15], W[t-7], W[t-2] via msg1 + alignr + msg2.
                    let w47 = _mm_alignr_epi8(m[(j + 3) % 4], m[(j + 2) % 4], 4);
                    let part = _mm_add_epi32(_mm_sha256msg1_epu32(m[j % 4], m[(j + 1) % 4]), w47);
                    m[j % 4] = _mm_sha256msg2_epu32(part, m[(j + 3) % 4]);
                }
            }

            state0 = _mm_add_epi32(state0, save0);
            state1 = _mm_add_epi32(state1, save1);
        }

        // Unpack ABEF/CDGH back to {a..h}.
        let tmp = _mm_shuffle_epi32(state0, 0x1B); // FEBA
        let st1 = _mm_shuffle_epi32(state1, 0xB1); // DCHG
        let out0 = _mm_blend_epi16(tmp, st1, 0xF0); // DCBA
        let out1 = _mm_alignr_epi8(st1, tmp, 8); // ABEF -> HGFE
                                                 // SAFETY: `state` is 8 writable u32s; unaligned stores.
        unsafe {
            _mm_storeu_si128(state.as_mut_ptr().cast(), out0);
            _mm_storeu_si128(state.as_mut_ptr().add(4).cast(), out1);
        }
    }
}

/// Hash `data` in one shot on the dispatched compression path.
pub fn sha256(data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

/// Hash `data` in one shot on the portable scalar loop — the reference
/// the hardware path is differentially pinned to.
pub fn sha256_portable(data: &[u8]) -> [u8; DIGEST_LEN] {
    let mut h = Sha256::new_portable();
    h.update(data);
    h.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    /// FIPS 180-4 "abc" vector, on the dispatched and portable paths.
    #[test]
    fn nist_abc() {
        let expect = "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad";
        assert_eq!(hex(&sha256(b"abc")), expect);
        assert_eq!(hex(&sha256_portable(b"abc")), expect);
    }

    /// Empty-message vector.
    #[test]
    fn empty() {
        let expect = "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855";
        assert_eq!(hex(&sha256(b"")), expect);
        assert_eq!(hex(&sha256_portable(b"")), expect);
    }

    /// Two-block message vector ("abcdbcde...").
    #[test]
    fn nist_two_blocks() {
        let msg = b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq";
        let expect = "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1";
        assert_eq!(hex(&sha256(msg)), expect);
        assert_eq!(hex(&sha256_portable(msg)), expect);
    }

    /// The dispatched path (SHA-NI where available) must agree with the
    /// portable loop on every length crossing the block boundaries.
    #[test]
    fn dispatched_matches_portable() {
        let data: Vec<u8> = (0..512u32)
            .map(|i| (i.wrapping_mul(37) >> 3) as u8)
            .collect();
        for len in [0, 1, 55, 56, 63, 64, 65, 127, 128, 129, 256, 512] {
            assert_eq!(
                sha256(&data[..len]),
                sha256_portable(&data[..len]),
                "len {len}"
            );
        }
    }

    /// Streaming in odd-sized chunks must equal one-shot hashing.
    #[test]
    fn streaming_equivalence() {
        let data: Vec<u8> = (0..1000u32).map(|i| (i % 251) as u8).collect();
        let oneshot = sha256(&data);
        let mut h = Sha256::new();
        for chunk in data.chunks(17) {
            h.update(chunk);
        }
        assert_eq!(h.finalize(), oneshot);
    }

    /// A message exactly one block long exercises the two-block padding
    /// path.
    #[test]
    fn exactly_64_bytes() {
        let data = [0xabu8; 64];
        let mut h = Sha256::new();
        h.update(&data);
        let d1 = h.finalize();
        let mut h2 = Sha256::new();
        h2.update(&data[..32]);
        h2.update(&data[32..]);
        assert_eq!(h2.finalize(), d1);
    }

    /// One-million-'a' vector (FIPS 180-4), on both paths.
    #[test]
    fn million_a() {
        let expect = "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0";
        for portable in [false, true] {
            let mut h = if portable {
                Sha256::new_portable()
            } else {
                Sha256::new()
            };
            let chunk = [b'a'; 1000];
            for _ in 0..1000 {
                h.update(&chunk);
            }
            assert_eq!(hex(&h.finalize()), expect, "portable={portable}");
        }
    }
}
