//! HKDF with SHA-256 (RFC 5869).
//!
//! OSCORE (RFC 8613 §3.2) derives its sender/recipient keys and common
//! IV via `HKDF-Extract(salt = master salt, IKM = master secret)`
//! followed by `HKDF-Expand(PRK, info, L)`.

use crate::hmac::{hmac_sha256, HmacSha256};
use crate::sha256::DIGEST_LEN;

/// `HKDF-Extract(salt, ikm) -> PRK`.
///
/// An empty salt is treated as `HashLen` zero bytes per RFC 5869.
pub fn extract(salt: &[u8], ikm: &[u8]) -> [u8; DIGEST_LEN] {
    if salt.is_empty() {
        hmac_sha256(&[0u8; DIGEST_LEN], ikm)
    } else {
        hmac_sha256(salt, ikm)
    }
}

/// `HKDF-Expand(prk, info, out.len())`.
///
/// # Panics
/// Panics if more than `255 * 32` bytes are requested (RFC 5869 limit);
/// callers in this workspace only ever request at most 32 bytes.
pub fn expand(prk: &[u8], info: &[u8], out: &mut [u8]) {
    assert!(out.len() <= 255 * DIGEST_LEN, "HKDF-Expand output too long");
    let mut t: Vec<u8> = Vec::new();
    let mut generated = 0usize;
    let mut counter = 1u8;
    while generated < out.len() {
        let mut mac = HmacSha256::new(prk);
        mac.update(&t);
        mac.update(info);
        mac.update(&[counter]);
        let block = mac.finalize();
        let take = (out.len() - generated).min(DIGEST_LEN);
        out[generated..generated + take].copy_from_slice(&block[..take]);
        generated += take;
        t = block.to_vec();
        counter = counter.wrapping_add(1);
    }
}

/// Convenience: extract-then-expand to a `Vec` of `len` bytes.
pub fn hkdf(salt: &[u8], ikm: &[u8], info: &[u8], len: usize) -> Vec<u8> {
    let prk = extract(salt, ikm);
    let mut out = vec![0u8; len];
    expand(&prk, info, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(bytes: &[u8]) -> String {
        bytes.iter().map(|b| format!("{b:02x}")).collect()
    }

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    /// RFC 5869 test case 1.
    #[test]
    fn rfc5869_tc1() {
        let ikm = [0x0bu8; 22];
        let salt = unhex("000102030405060708090a0b0c");
        let info = unhex("f0f1f2f3f4f5f6f7f8f9");
        let prk = extract(&salt, &ikm);
        assert_eq!(
            hex(&prk),
            "077709362c2e32df0ddc3f0dc47bba6390b6c73bb50f9c3122ec844ad7c2b3e5"
        );
        let mut okm = [0u8; 42];
        expand(&prk, &info, &mut okm);
        assert_eq!(
            hex(&okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf34007208d5b887185865"
        );
    }

    /// RFC 5869 test case 3 (zero-length salt and info).
    #[test]
    fn rfc5869_tc3() {
        let ikm = [0x0bu8; 22];
        let okm = hkdf(&[], &ikm, &[], 42);
        assert_eq!(
            hex(&okm),
            "8da4e775a563c18f715f802a063c5a31b8a11f5c5ee1879ec3454e5f3c738d2d9d201395faa4b61a96c8"
        );
    }

    /// Output longer than one hash block exercises the T(n) chaining.
    #[test]
    fn multi_block_expand() {
        let okm = hkdf(b"salt", b"ikm", b"info", 100);
        assert_eq!(okm.len(), 100);
        // The first 32 bytes must be stable regardless of requested length.
        let short = hkdf(b"salt", b"ikm", b"info", 32);
        assert_eq!(&okm[..32], &short[..]);
    }
}
