//! Group OSCORE (draft-ietf-core-oscore-groupcomm) — the paper's §7/§8
//! future-work item: "DoC integration for mDNS protected by Group
//! OSCORE to enable service discovery".
//!
//! A group shares a Group Manager-provisioned security context; every
//! member derives per-sender keys from the group master secret and the
//! sender's ID, so any member can decrypt any other member's messages.
//! One multicast request (e.g. an mDNS PTR browse) yields protected
//! unicast responses from several members, each bound to the request.
//!
//! **Substitution note (see DESIGN.md):** real Group OSCORE
//! additionally countersigns every message with the sender's asymmetric
//! key pair so that group members cannot impersonate each other. This
//! workspace has no asymmetric-crypto substrate; the group mode
//! documented here provides group confidentiality and request binding
//! (the properties the paper's discussion evaluates for DNS-SD) and
//! carries an HMAC-based authenticity tag keyed with a per-sender
//! authentication key in place of the countersignature. The packet
//! *shape* (ciphertext + fixed-size authenticity tag) matches; the
//! source-authenticity guarantee is group-internal rather than
//! cryptographically non-repudiable.

use crate::context::{decode_piv, ALG_AES_CCM_16_64_128, KEY_LEN, NONCE_LEN, TAG_LEN};
use crate::protect::{OscoreOption, ReplayWindow};
use crate::OscoreError;
use doc_coap::msg::{CoapMessage, Code, MsgType};
use doc_coap::opt::{CoapOption, OptionNumber};
use doc_crypto::cbor::Value;
use doc_crypto::ccm::AesCcm;
use doc_crypto::hkdf;
use std::collections::HashMap;

/// Length of the per-message authenticity tag standing in for the
/// Group OSCORE countersignature.
pub const AUTH_TAG_LEN: usize = 8;

/// One member's view of the group security context.
pub struct GroupContext {
    /// This member's sender ID.
    pub sender_id: Vec<u8>,
    /// Group identifier (the OSCORE `kid context`).
    pub group_id: Vec<u8>,
    group_secret: Vec<u8>,
    group_salt: Vec<u8>,
    /// Our derived sender key.
    sender_key: [u8; KEY_LEN],
    /// Our derived authenticity key (countersignature stand-in).
    sender_auth_key: [u8; 32],
    /// Common IV shared by the group.
    common_iv: [u8; NONCE_LEN],
    /// Next partial IV.
    sender_seq: u64,
    /// Replay windows per known peer.
    replay: HashMap<Vec<u8>, ReplayWindow>,
}

fn kdf_info(id: &[u8], group_id: &[u8], type_: &str, len: usize) -> Vec<u8> {
    Value::Array(vec![
        Value::Bytes(id.to_vec()),
        Value::Bytes(group_id.to_vec()),
        Value::int(ALG_AES_CCM_16_64_128),
        Value::Text(type_.to_string()),
        Value::Uint(len as u64),
    ])
    .encode()
}

impl GroupContext {
    /// Join a group: derive this member's keys from the group master
    /// secret/salt (as provisioned by a Group Manager).
    pub fn join(group_secret: &[u8], group_salt: &[u8], group_id: &[u8], sender_id: &[u8]) -> Self {
        let mut sender_key = [0u8; KEY_LEN];
        sender_key.copy_from_slice(&hkdf::hkdf(
            group_salt,
            group_secret,
            &kdf_info(sender_id, group_id, "Key", KEY_LEN),
            KEY_LEN,
        ));
        let mut sender_auth_key = [0u8; 32];
        sender_auth_key.copy_from_slice(&hkdf::hkdf(
            group_salt,
            group_secret,
            &kdf_info(sender_id, group_id, "Auth", 32),
            32,
        ));
        let mut common_iv = [0u8; NONCE_LEN];
        common_iv.copy_from_slice(&hkdf::hkdf(
            group_salt,
            group_secret,
            &kdf_info(&[], group_id, "IV", NONCE_LEN),
            NONCE_LEN,
        ));
        GroupContext {
            sender_id: sender_id.to_vec(),
            group_id: group_id.to_vec(),
            group_secret: group_secret.to_vec(),
            group_salt: group_salt.to_vec(),
            sender_key,
            sender_auth_key,
            common_iv,
            sender_seq: 0,
            replay: HashMap::new(),
        }
    }

    /// Derive the (recipient) key material of any group member.
    fn peer_keys(&self, peer_id: &[u8]) -> ([u8; KEY_LEN], [u8; 32]) {
        let mut key = [0u8; KEY_LEN];
        key.copy_from_slice(&hkdf::hkdf(
            &self.group_salt,
            &self.group_secret,
            &kdf_info(peer_id, &self.group_id, "Key", KEY_LEN),
            KEY_LEN,
        ));
        let mut auth = [0u8; 32];
        auth.copy_from_slice(&hkdf::hkdf(
            &self.group_salt,
            &self.group_secret,
            &kdf_info(peer_id, &self.group_id, "Auth", 32),
            32,
        ));
        (key, auth)
    }

    fn nonce(&self, id: &[u8], piv: &[u8]) -> [u8; NONCE_LEN] {
        let mut nonce = [0u8; NONCE_LEN];
        nonce[0] = id.len() as u8;
        let id_field_len = NONCE_LEN - 6;
        nonce[1 + id_field_len - id.len()..1 + id_field_len].copy_from_slice(id);
        nonce[NONCE_LEN - piv.len()..].copy_from_slice(piv);
        for (n, c) in nonce.iter_mut().zip(self.common_iv.iter()) {
            *n ^= c;
        }
        nonce
    }

    fn aad(&self, request_kid: &[u8], request_piv: &[u8]) -> Vec<u8> {
        let external_aad = Value::Array(vec![
            Value::Uint(1),
            Value::Array(vec![Value::int(ALG_AES_CCM_16_64_128)]),
            Value::Bytes(request_kid.to_vec()),
            Value::Bytes(request_piv.to_vec()),
            Value::Bytes(self.group_id.clone()), // gid enters the AAD
        ])
        .encode();
        Value::Array(vec![
            Value::Text("Encrypt0".to_string()),
            Value::Bytes(Vec::new()),
            Value::Bytes(external_aad),
        ])
        .encode()
    }

    fn encode_inner(msg: &CoapMessage) -> Vec<u8> {
        let shadow = CoapMessage {
            mtype: MsgType::Non,
            code: msg.code,
            message_id: 0,
            token: Vec::new(),
            options: msg
                .options
                .iter()
                .filter(|o| o.number != OptionNumber::OSCORE)
                .cloned()
                .collect(),
            payload: msg.payload.clone(),
        };
        let wire = shadow.encode();
        let mut out = vec![msg.code.0];
        out.extend_from_slice(&wire[4..]);
        out
    }

    fn decode_inner(plain: &[u8]) -> Result<CoapMessage, OscoreError> {
        if plain.is_empty() {
            return Err(OscoreError::Malformed);
        }
        let mut wire = vec![0x40, plain[0], 0, 0];
        wire.extend_from_slice(&plain[1..]);
        CoapMessage::decode(&wire).map_err(|_| OscoreError::Malformed)
    }

    fn auth_tag(auth_key: &[u8; 32], ciphertext: &[u8]) -> [u8; AUTH_TAG_LEN] {
        let mac = doc_crypto::hmac::hmac_sha256(auth_key, ciphertext);
        mac[..AUTH_TAG_LEN].try_into().expect("8 bytes")
    }

    /// Protect a (multicast) group request. The OSCORE option carries
    /// kid context = group id and kid = sender id, so any member can
    /// locate the group and the sender.
    pub fn protect_request(
        &mut self,
        msg: &CoapMessage,
    ) -> Result<(CoapMessage, GroupBinding), OscoreError> {
        if self.sender_seq >= 1 << 40 {
            return Err(OscoreError::PivExhausted);
        }
        let piv = crate::context::encode_piv(self.sender_seq);
        self.sender_seq += 1;
        let plaintext = Self::encode_inner(msg);
        let aad = self.aad(&self.sender_id, &piv);
        let nonce = self.nonce(&self.sender_id, &piv);
        let ccm = AesCcm::cose_ccm_16_64_128(&self.sender_key);
        let mut ciphertext = ccm
            .seal(&nonce, &aad, &plaintext)
            .map_err(|_| OscoreError::Crypto)?;
        // Countersignature stand-in.
        let tag = Self::auth_tag(&self.sender_auth_key, &ciphertext);
        ciphertext.extend_from_slice(&tag);

        // Option value with kid context (h flag): flags | piv |
        // ctxlen | ctx | kid.
        let mut value = Vec::new();
        value.push(0x18 | piv.len() as u8); // h=1, k=1, n=piv len
        value.extend_from_slice(&piv);
        value.push(self.group_id.len() as u8);
        value.extend_from_slice(&self.group_id);
        value.extend_from_slice(&self.sender_id);

        let mut outer = CoapMessage {
            mtype: msg.mtype,
            code: Code::POST,
            message_id: msg.message_id,
            token: msg.token.clone(),
            options: Vec::new(),
            payload: ciphertext,
        };
        outer.set_option(CoapOption::new(OptionNumber::OSCORE, value));
        Ok((
            outer,
            GroupBinding {
                kid: self.sender_id.clone(),
                piv,
            },
        ))
    }

    /// Unprotect a group request from any member; returns the inner
    /// message, the sender's ID and the binding for responding.
    pub fn unprotect_request(
        &mut self,
        outer: &CoapMessage,
    ) -> Result<(CoapMessage, Vec<u8>, GroupBinding), OscoreError> {
        let opt = outer
            .option(OptionNumber::OSCORE)
            .ok_or(OscoreError::NotOscore)?;
        let value = &opt.value;
        if value.is_empty() || value[0] & 0x18 != 0x18 {
            return Err(OscoreError::Malformed);
        }
        let n = (value[0] & 0x07) as usize;
        let piv = value.get(1..1 + n).ok_or(OscoreError::Malformed)?.to_vec();
        let ctx_len = *value.get(1 + n).ok_or(OscoreError::Malformed)? as usize;
        let gid = value
            .get(2 + n..2 + n + ctx_len)
            .ok_or(OscoreError::Malformed)?
            .to_vec();
        if gid != self.group_id {
            return Err(OscoreError::Crypto);
        }
        let kid = value[2 + n + ctx_len..].to_vec();
        if kid.is_empty() {
            return Err(OscoreError::Malformed);
        }
        let seq = decode_piv(&piv).ok_or(OscoreError::Malformed)?;

        // Split ciphertext || auth tag.
        if outer.payload.len() < AUTH_TAG_LEN + TAG_LEN {
            return Err(OscoreError::Malformed);
        }
        let split = outer.payload.len() - AUTH_TAG_LEN;
        let (ciphertext, auth) = outer.payload.split_at(split);
        let (peer_key, peer_auth) = self.peer_keys(&kid);
        let expect = Self::auth_tag(&peer_auth, ciphertext);
        if !doc_crypto::ct_eq(&expect, auth) {
            return Err(OscoreError::Crypto);
        }
        let aad = self.aad(&kid, &piv);
        let nonce = self.nonce(&kid, &piv);
        let ccm = AesCcm::cose_ccm_16_64_128(&peer_key);
        let plain = ccm
            .open(&nonce, &aad, ciphertext)
            .map_err(|_| OscoreError::Crypto)?;
        // Replay protection per peer.
        let window = self
            .replay
            .entry(kid.clone())
            .or_insert_with(|| ReplayWindow::new(64));
        if !window.check_and_update(seq) {
            return Err(OscoreError::Replay);
        }
        let mut inner = Self::decode_inner(&plain)?;
        inner.mtype = outer.mtype;
        inner.message_id = outer.message_id;
        inner.token = outer.token.clone();
        Ok((inner, kid.clone(), GroupBinding { kid, piv }))
    }

    /// Protect a unicast response to a group request. The responder
    /// uses its own PIV (group responses need unique nonces because
    /// *several* members answer the same request).
    pub fn protect_response(
        &mut self,
        msg: &CoapMessage,
        request: &GroupBinding,
        request_outer: &CoapMessage,
    ) -> Result<CoapMessage, OscoreError> {
        if self.sender_seq >= 1 << 40 {
            return Err(OscoreError::PivExhausted);
        }
        let piv = crate::context::encode_piv(self.sender_seq);
        self.sender_seq += 1;
        let plaintext = Self::encode_inner(msg);
        let aad = self.aad(&request.kid, &request.piv);
        let nonce = self.nonce(&self.sender_id, &piv);
        let ccm = AesCcm::cose_ccm_16_64_128(&self.sender_key);
        let mut ciphertext = ccm
            .seal(&nonce, &aad, &plaintext)
            .map_err(|_| OscoreError::Crypto)?;
        let tag = Self::auth_tag(&self.sender_auth_key, &ciphertext);
        ciphertext.extend_from_slice(&tag);

        // Response option: piv + kid (the responder's), no kid context.
        let opt = OscoreOption {
            piv,
            kid: Some(self.sender_id.clone()),
        };
        let mut outer = CoapMessage {
            mtype: msg.mtype,
            code: Code::CHANGED,
            message_id: request_outer.message_id,
            token: request_outer.token.clone(),
            options: Vec::new(),
            payload: ciphertext,
        };
        outer.set_option(CoapOption::new(OptionNumber::OSCORE, opt.encode()));
        Ok(outer)
    }

    /// Unprotect one member's response to our group request.
    pub fn unprotect_response(
        &mut self,
        outer: &CoapMessage,
        request: &GroupBinding,
    ) -> Result<(CoapMessage, Vec<u8>), OscoreError> {
        let opt_value = outer
            .option(OptionNumber::OSCORE)
            .ok_or(OscoreError::NotOscore)?;
        let opt = OscoreOption::decode(&opt_value.value)?;
        let kid = opt.kid.clone().ok_or(OscoreError::Malformed)?;
        if opt.piv.is_empty() {
            return Err(OscoreError::Malformed);
        }
        if outer.payload.len() < AUTH_TAG_LEN + TAG_LEN {
            return Err(OscoreError::Malformed);
        }
        let split = outer.payload.len() - AUTH_TAG_LEN;
        let (ciphertext, auth) = outer.payload.split_at(split);
        let (peer_key, peer_auth) = self.peer_keys(&kid);
        if !doc_crypto::ct_eq(&Self::auth_tag(&peer_auth, ciphertext), auth) {
            return Err(OscoreError::Crypto);
        }
        let aad = self.aad(&request.kid, &request.piv);
        let nonce = self.nonce(&kid, &opt.piv);
        let ccm = AesCcm::cose_ccm_16_64_128(&peer_key);
        let plain = ccm
            .open(&nonce, &aad, ciphertext)
            .map_err(|_| OscoreError::Crypto)?;
        let mut inner = Self::decode_inner(&plain)?;
        inner.mtype = outer.mtype;
        inner.message_id = outer.message_id;
        inner.token = outer.token.clone();
        Ok((inner, kid))
    }
}

/// Binding of a group request (kid + piv of the requester).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupBinding {
    /// Requester's sender ID.
    pub kid: Vec<u8>,
    /// Requester's partial IV.
    pub piv: Vec<u8>,
}

#[cfg(test)]
mod tests {
    use super::*;

    const SECRET: &[u8] = b"group-master-secret!";
    const SALT: &[u8] = b"gsalt";
    const GID: &[u8] = b"dns-sd";

    fn member(id: &[u8]) -> GroupContext {
        GroupContext::join(SECRET, SALT, GID, id)
    }

    fn browse_request() -> CoapMessage {
        CoapMessage::request(Code::FETCH, MsgType::Non, 7, vec![0x31])
            .with_option(CoapOption::new(OptionNumber::URI_PATH, b"dns".to_vec()))
            .with_payload(b"ptr query for _coap._udp.local".to_vec())
    }

    /// One multicast request, several members answer — the paper's
    /// DNS-SD over Group OSCORE scenario.
    #[test]
    fn multicast_browse_roundtrip() {
        let mut querier = member(b"Q");
        let mut cam = member(b"A");
        let mut sensor = member(b"B");

        let (outer, binding) = querier.protect_request(&browse_request()).unwrap();
        // Both responders decrypt the same multicast request.
        let (inner_a, from_a, bind_a) = cam.unprotect_request(&outer).unwrap();
        let (inner_b, from_b, bind_b) = sensor.unprotect_request(&outer).unwrap();
        assert_eq!(inner_a.code, Code::FETCH);
        assert_eq!(inner_a.payload, inner_b.payload);
        assert_eq!(from_a, b"Q");
        assert_eq!(from_b, b"Q");

        // Each answers with its own instance.
        let resp_a = CoapMessage::ack_response(&inner_a, Code::CONTENT)
            .with_payload(b"kitchen-cam._coap._udp.local".to_vec());
        let resp_b = CoapMessage::ack_response(&inner_b, Code::CONTENT)
            .with_payload(b"hall-sensor._coap._udp.local".to_vec());
        let outer_a = cam.protect_response(&resp_a, &bind_a, &outer).unwrap();
        let outer_b = sensor.protect_response(&resp_b, &bind_b, &outer).unwrap();

        // The querier decrypts both, attributing each to its sender.
        let (in_a, kid_a) = querier.unprotect_response(&outer_a, &binding).unwrap();
        let (in_b, kid_b) = querier.unprotect_response(&outer_b, &binding).unwrap();
        assert_eq!(kid_a, b"A");
        assert_eq!(kid_b, b"B");
        assert_eq!(in_a.payload, b"kitchen-cam._coap._udp.local");
        assert_eq!(in_b.payload, b"hall-sensor._coap._udp.local");
    }

    #[test]
    fn non_member_cannot_decrypt() {
        let mut querier = member(b"Q");
        let mut outsider = GroupContext::join(b"other-secret-entirely", SALT, GID, b"X");
        let (outer, _) = querier.protect_request(&browse_request()).unwrap();
        assert!(matches!(
            outsider.unprotect_request(&outer),
            Err(OscoreError::Crypto)
        ));
    }

    #[test]
    fn wrong_group_id_rejected() {
        let mut querier = member(b"Q");
        let mut other_group = GroupContext::join(SECRET, SALT, b"other", b"A");
        let (outer, _) = querier.protect_request(&browse_request()).unwrap();
        assert!(matches!(
            other_group.unprotect_request(&outer),
            Err(OscoreError::Crypto)
        ));
    }

    #[test]
    fn replay_rejected_per_sender() {
        let mut querier = member(b"Q");
        let mut responder = member(b"A");
        let (outer, _) = querier.protect_request(&browse_request()).unwrap();
        assert!(responder.unprotect_request(&outer).is_ok());
        assert!(matches!(
            responder.unprotect_request(&outer),
            Err(OscoreError::Replay)
        ));
    }

    #[test]
    fn tampered_ciphertext_rejected_by_auth_tag() {
        let mut querier = member(b"Q");
        let mut responder = member(b"A");
        let (mut outer, _) = querier.protect_request(&browse_request()).unwrap();
        outer.payload[2] ^= 0x01;
        assert!(matches!(
            responder.unprotect_request(&outer),
            Err(OscoreError::Crypto)
        ));
    }

    #[test]
    fn responses_bound_to_request() {
        let mut querier = member(b"Q");
        let mut responder = member(b"A");
        let (outer1, binding1) = querier.protect_request(&browse_request()).unwrap();
        let (outer2, binding2) = querier.protect_request(&browse_request()).unwrap();
        let (inner, _, bind) = responder.unprotect_request(&outer1).unwrap();
        let resp = CoapMessage::ack_response(&inner, Code::CONTENT).with_payload(b"x".to_vec());
        let protected = responder.protect_response(&resp, &bind, &outer1).unwrap();
        assert!(querier.unprotect_response(&protected, &binding1).is_ok());
        // Rebinding to another request fails (mismatch protection).
        let protected = responder
            .unprotect_request(&outer2)
            .ok()
            .map(|(inner2, _, bind2)| {
                let r2 =
                    CoapMessage::ack_response(&inner2, Code::CONTENT).with_payload(b"x".to_vec());
                responder.protect_response(&r2, &bind2, &outer2).unwrap()
            })
            .unwrap();
        assert!(matches!(
            querier.unprotect_response(&protected, &binding1),
            Err(OscoreError::Crypto)
        ));
        let _ = binding2;
    }

    #[test]
    fn distinct_members_have_distinct_keys() {
        let a = member(b"A");
        let b = member(b"B");
        assert_ne!(a.sender_key, b.sender_key);
        assert_ne!(a.sender_auth_key, b.sender_auth_key);
        assert_eq!(a.common_iv, b.common_iv);
    }
}
