//! OSCORE security-context derivation (RFC 8613 §3).
//!
//! Both endpoints share a Common Context (master secret, master salt,
//! algorithm, ID context) from which HKDF-SHA256 derives the Sender
//! Key, Recipient Key and Common IV:
//!
//! ```text
//! info = [ id, id_context, alg_aead, type, L ]   (CBOR array)
//! output = HKDF(salt = master_salt, IKM = master_secret, info, L)
//! ```
//!
//! The algorithm is `AES-CCM-16-64-128` (COSE algorithm 10): 128-bit
//! key, 64-bit tag, 13-byte nonce — the configuration the paper
//! evaluates against DTLS's `AES-128-CCM-8`.

use doc_crypto::cbor::Value;
use doc_crypto::hkdf;

/// COSE algorithm identifier for AES-CCM-16-64-128 (RFC 8152 §10.2).
pub const ALG_AES_CCM_16_64_128: i64 = 10;
/// Key length for the AEAD algorithm.
pub const KEY_LEN: usize = 16;
/// Nonce length for the AEAD algorithm.
pub const NONCE_LEN: usize = 13;
/// Tag length for the AEAD algorithm.
pub const TAG_LEN: usize = 8;

/// A derived OSCORE security context for one sender/recipient pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecurityContext {
    /// Our sender ID (put on the wire as `kid` in requests).
    pub sender_id: Vec<u8>,
    /// The peer's sender ID (our recipient ID).
    pub recipient_id: Vec<u8>,
    /// Derived sender key (encrypts what we send).
    pub sender_key: [u8; KEY_LEN],
    /// Derived recipient key (decrypts what the peer sends).
    pub recipient_key: [u8; KEY_LEN],
    /// Derived common IV.
    pub common_iv: [u8; NONCE_LEN],
    /// Next partial IV (sender sequence number).
    pub sender_seq: u64,
}

/// Build the HKDF `info` structure of RFC 8613 §3.2.1.
fn kdf_info(id: &[u8], type_: &str, len: usize) -> Vec<u8> {
    Value::Array(vec![
        Value::Bytes(id.to_vec()),
        Value::Null, // id_context not used in this deployment
        Value::int(ALG_AES_CCM_16_64_128),
        Value::Text(type_.to_string()),
        Value::Uint(len as u64),
    ])
    .encode()
}

impl SecurityContext {
    /// Derive a context from the common-context parameters.
    ///
    /// `sender_id`/`recipient_id` are from *this endpoint's*
    /// perspective: a client configured with `(sender=C, recipient=S)`
    /// pairs with a server configured `(sender=S, recipient=C)`.
    pub fn derive(
        master_secret: &[u8],
        master_salt: &[u8],
        sender_id: &[u8],
        recipient_id: &[u8],
    ) -> Self {
        let mut sender_key = [0u8; KEY_LEN];
        sender_key.copy_from_slice(&hkdf::hkdf(
            master_salt,
            master_secret,
            &kdf_info(sender_id, "Key", KEY_LEN),
            KEY_LEN,
        ));
        let mut recipient_key = [0u8; KEY_LEN];
        recipient_key.copy_from_slice(&hkdf::hkdf(
            master_salt,
            master_secret,
            &kdf_info(recipient_id, "Key", KEY_LEN),
            KEY_LEN,
        ));
        let mut common_iv = [0u8; NONCE_LEN];
        common_iv.copy_from_slice(&hkdf::hkdf(
            master_salt,
            master_secret,
            &kdf_info(&[], "IV", NONCE_LEN),
            NONCE_LEN,
        ));
        SecurityContext {
            sender_id: sender_id.to_vec(),
            recipient_id: recipient_id.to_vec(),
            sender_key,
            recipient_key,
            common_iv,
            sender_seq: 0,
        }
    }

    /// Compute the AEAD nonce for (`id`, `piv`) per RFC 8613 §5.2:
    /// left-pad PIV to 5 bytes, left-pad ID to `nonce_len - 6`, prefix
    /// the ID length, XOR with the Common IV.
    pub fn nonce(&self, id: &[u8], piv: &[u8]) -> [u8; NONCE_LEN] {
        let mut nonce = [0u8; NONCE_LEN];
        nonce[0] = id.len() as u8;
        // ID left-padded into bytes [1 .. nonce_len-5).
        let id_field_len = NONCE_LEN - 6;
        nonce[1 + id_field_len - id.len()..1 + id_field_len].copy_from_slice(id);
        // PIV left-padded into the last 5 bytes.
        nonce[NONCE_LEN - piv.len()..].copy_from_slice(piv);
        for (n, c) in nonce.iter_mut().zip(self.common_iv.iter()) {
            *n ^= c;
        }
        nonce
    }

    /// Take the next partial IV (minimal big-endian encoding, at least
    /// one byte, at most 5).
    pub fn next_piv(&mut self) -> Result<Vec<u8>, crate::OscoreError> {
        if self.sender_seq >= 1 << 40 {
            return Err(crate::OscoreError::PivExhausted);
        }
        let piv = encode_piv(self.sender_seq);
        self.sender_seq += 1;
        Ok(piv)
    }
}

/// Minimal big-endian PIV encoding (RFC 8613 §6.1: 0 encodes as one
/// zero byte... actually as the 1-byte 0x00 per "the Partial IV SHALL
/// be encoded with minimum length, and the value 0 encodes to 0x00").
pub fn encode_piv(seq: u64) -> Vec<u8> {
    let bytes = seq.to_be_bytes();
    let skip = bytes.iter().take_while(|&&b| b == 0).count().min(7);
    bytes[skip..].to_vec()
}

/// Decode a PIV back to a sequence number.
pub fn decode_piv(piv: &[u8]) -> Option<u64> {
    if piv.is_empty() || piv.len() > 5 {
        return None;
    }
    let mut v = 0u64;
    for &b in piv {
        v = (v << 8) | b as u64;
    }
    Some(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unhex(s: &str) -> Vec<u8> {
        (0..s.len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&s[i..i + 2], 16).unwrap())
            .collect()
    }

    fn hex(b: &[u8]) -> String {
        b.iter().map(|x| format!("{x:02x}")).collect()
    }

    /// RFC 8613 Appendix C.1.1 test vector: client context with
    /// Master Secret 0102…10, Master Salt 9e7ca92223786340,
    /// Sender ID empty, Recipient ID 0x01.
    #[test]
    fn rfc8613_c1_client_derivation() {
        let secret = unhex("0102030405060708090a0b0c0d0e0f10");
        let salt = unhex("9e7ca92223786340");
        let ctx = SecurityContext::derive(&secret, &salt, &[], &[0x01]);
        assert_eq!(hex(&ctx.sender_key), "f0910ed7295e6ad4b54fc793154302ff");
        assert_eq!(hex(&ctx.recipient_key), "ffb14e093c94c9cac9471648b4f98710");
        assert_eq!(hex(&ctx.common_iv), "4622d4dd6d944168eefb54987c");
    }

    /// RFC 8613 Appendix C.1.2: the server's derivation mirrors the
    /// client's (sender/recipient swapped).
    #[test]
    fn rfc8613_c1_server_derivation() {
        let secret = unhex("0102030405060708090a0b0c0d0e0f10");
        let salt = unhex("9e7ca92223786340");
        let ctx = SecurityContext::derive(&secret, &salt, &[0x01], &[]);
        assert_eq!(hex(&ctx.sender_key), "ffb14e093c94c9cac9471648b4f98710");
        assert_eq!(hex(&ctx.recipient_key), "f0910ed7295e6ad4b54fc793154302ff");
        assert_eq!(hex(&ctx.common_iv), "4622d4dd6d944168eefb54987c");
    }

    /// RFC 8613 Appendix C.4 (request vector): the nonce for Sender ID
    /// empty, PIV 0x14 with the C.1 Common IV must be
    /// 4622d4dd6d944168eefb549868.
    #[test]
    fn rfc8613_c4_request_nonce() {
        let secret = unhex("0102030405060708090a0b0c0d0e0f10");
        let salt = unhex("9e7ca92223786340");
        let ctx = SecurityContext::derive(&secret, &salt, &[], &[0x01]);
        let nonce = ctx.nonce(&[], &[0x14]);
        assert_eq!(hex(&nonce), "4622d4dd6d944168eefb549868");
    }

    #[test]
    fn piv_encoding_minimal() {
        assert_eq!(encode_piv(0), vec![0x00]);
        assert_eq!(encode_piv(0x14), vec![0x14]);
        assert_eq!(encode_piv(0x0100), vec![0x01, 0x00]);
        assert_eq!(encode_piv(0xFF_FFFF), vec![0xFF, 0xFF, 0xFF]);
    }

    #[test]
    fn piv_roundtrip() {
        for seq in [0u64, 1, 0x14, 255, 256, 65536, (1 << 40) - 1] {
            assert_eq!(decode_piv(&encode_piv(seq)), Some(seq));
        }
        assert_eq!(decode_piv(&[]), None);
        assert_eq!(decode_piv(&[0; 6]), None);
    }

    #[test]
    fn next_piv_increments() {
        let ctx_params = (
            unhex("0102030405060708090a0b0c0d0e0f10"),
            unhex("9e7ca92223786340"),
        );
        let mut ctx = SecurityContext::derive(&ctx_params.0, &ctx_params.1, &[], &[1]);
        assert_eq!(ctx.next_piv().unwrap(), vec![0x00]);
        assert_eq!(ctx.next_piv().unwrap(), vec![0x01]);
        assert_eq!(ctx.sender_seq, 2);
    }

    #[test]
    fn piv_exhaustion() {
        let mut ctx = SecurityContext::derive(b"secret", b"", &[], &[1]);
        ctx.sender_seq = 1 << 40;
        assert_eq!(ctx.next_piv(), Err(crate::OscoreError::PivExhausted));
    }

    #[test]
    fn peer_contexts_are_mirrored() {
        let client = SecurityContext::derive(b"master", b"salt", b"C", b"S");
        let server = SecurityContext::derive(b"master", b"salt", b"S", b"C");
        assert_eq!(client.sender_key, server.recipient_key);
        assert_eq!(client.recipient_key, server.sender_key);
        assert_eq!(client.common_iv, server.common_iv);
    }

    #[test]
    fn different_salts_differ() {
        let a = SecurityContext::derive(b"master", b"salt1", b"C", b"S");
        let b = SecurityContext::derive(b"master", b"salt2", b"C", b"S");
        assert_ne!(a.sender_key, b.sender_key);
    }
}
