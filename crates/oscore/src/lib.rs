//! `doc-oscore` — Object Security for Constrained RESTful Environments
//! (RFC 8613).
//!
//! OSCORE protects CoAP messages at the object level: the inner code,
//! Class-E options and payload are encrypted into a compressed
//! COSE_Encrypt0 object carried as the payload of an outer CoAP
//! message, while the outer header exposes only the token, message-ID
//! and the OSCORE option. This is what lets DoC responses be cached
//! en-route and traverse untrusted gateways without a trust
//! relationship (paper §4.3, Fig. 4b).
//!
//! * [`context`] — security-context derivation via HKDF-SHA256
//!   (RFC 8613 §3.2) for the paper's `AES-CCM-16-64-128` algorithm,
//!   including the RFC 8613 Appendix C test vectors.
//! * [`protect`] — the compressed COSE object (§6), OSCORE option
//!   encoding, AAD/nonce construction (§5), request/response
//!   protect/unprotect, replay windows, and the Echo-based replay
//!   window initialization the paper's Fig. 6 shows
//!   ("4.01 Unauthorized / Query (w/ Echo)").

pub mod context;
pub mod group;
pub mod protect;

pub use context::SecurityContext;
pub use group::GroupContext;
pub use protect::{OscoreOption, RequestBinding};

/// Errors produced by the OSCORE layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OscoreError {
    /// COSE/option structure malformed.
    Malformed,
    /// Decryption or tag verification failed.
    Crypto,
    /// Replay window rejected the partial IV.
    Replay,
    /// Sequence number space exhausted.
    PivExhausted,
    /// The message is not an OSCORE message.
    NotOscore,
    /// A fresh Echo value is required (replay-window initialization).
    EchoRequired(Vec<u8>),
}

impl core::fmt::Display for OscoreError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            OscoreError::Malformed => write!(f, "malformed OSCORE message"),
            OscoreError::Crypto => write!(f, "OSCORE decryption failed"),
            OscoreError::Replay => write!(f, "OSCORE replay detected"),
            OscoreError::PivExhausted => write!(f, "partial IV space exhausted"),
            OscoreError::NotOscore => write!(f, "not an OSCORE message"),
            OscoreError::EchoRequired(_) => write!(f, "Echo challenge required"),
        }
    }
}

impl std::error::Error for OscoreError {}
