//! OSCORE message protection (RFC 8613 §5–§8).
//!
//! A protected request looks like:
//!
//! ```text
//! outer CoAP header (POST) | OSCORE option: flags|PIV|kid | 0xFF | COSE ciphertext
//! ```
//!
//! where the ciphertext encrypts `inner code || Class-E options || 0xFF
//! || payload` under AES-CCM-16-64-128 with the nonce/AAD constructions
//! of §5.2/§5.4. Responses omit PIV and kid (empty OSCORE option) and
//! reuse the request's nonce — they are bound to the request through
//! the AAD, which is what makes mismatch/replay attacks fail and lets
//! responses stay valid across CoAP retransmissions (paper §4.3).

use crate::context::{decode_piv, SecurityContext, TAG_LEN};
use crate::OscoreError;
use doc_coap::msg::{CoapMessage, Code, MsgType};
use doc_coap::opt::{CoapOption, OptionNumber};
use doc_coap::view::CoapView;
use doc_crypto::ccm::{AesCcm, SealRequest};

/// Decoded OSCORE option value.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OscoreOption {
    /// Partial IV (absent in responses).
    pub piv: Vec<u8>,
    /// Key identifier (the sender ID of the requester).
    pub kid: Option<Vec<u8>>,
}

impl OscoreOption {
    /// Encode to option-value bytes (RFC 8613 §6.1).
    pub fn encode(&self) -> Vec<u8> {
        if self.piv.is_empty() && self.kid.is_none() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(1 + self.piv.len());
        let mut flags = self.piv.len() as u8 & 0x07;
        if self.kid.is_some() {
            flags |= 0x08;
        }
        out.push(flags);
        out.extend_from_slice(&self.piv);
        if let Some(kid) = &self.kid {
            out.extend_from_slice(kid);
        }
        out
    }

    /// Decode from option-value bytes.
    pub fn decode(value: &[u8]) -> Result<Self, OscoreError> {
        if value.is_empty() {
            return Ok(OscoreOption::default());
        }
        let flags = value[0];
        if flags & 0xE0 != 0 {
            return Err(OscoreError::Malformed); // reserved bits
        }
        let n = (flags & 0x07) as usize;
        if n > 5 {
            return Err(OscoreError::Malformed);
        }
        let mut pos = 1usize;
        let piv = value
            .get(pos..pos + n)
            .ok_or(OscoreError::Malformed)?
            .to_vec();
        pos += n;
        if flags & 0x10 != 0 {
            // kid context: length-prefixed (unused in this deployment,
            // but parsed for robustness).
            let l = *value.get(pos).ok_or(OscoreError::Malformed)? as usize;
            pos += 1 + l;
            if pos > value.len() {
                return Err(OscoreError::Malformed);
            }
        }
        let kid = if flags & 0x08 != 0 {
            Some(value[pos..].to_vec())
        } else {
            None
        };
        Ok(OscoreOption { piv, kid })
    }
}

/// Binding between a protected request and its response (RFC 8613
/// §5.4: `request_kid` and `request_piv` enter the response AAD).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestBinding {
    /// kid of the request (the client's sender ID).
    pub kid: Vec<u8>,
    /// Partial IV of the request.
    pub piv: Vec<u8>,
}

/// Upper bound on the stack-resident AAD: the constant skeleton (11) +
/// external-AAD head (≤ 2) + fixed external-AAD bytes (5) + kid/piv
/// heads and bodies at the ≤ 23 bytes each the `debug_assert` in
/// [`build_aad`] permits (48) — 66 total, rounded up. Both ids are
/// bounded far lower in practice by the RFC 8613 §5.2 nonce
/// construction (≤ 7-byte kid, ≤ 5-byte piv).
const AAD_BUF_LEN: usize = 72;

/// The Enc_structure AAD of RFC 8613 §5.4, built on the stack.
struct Aad {
    buf: [u8; AAD_BUF_LEN],
    len: usize,
}

impl Aad {
    fn as_slice(&self) -> &[u8] {
        &self.buf[..self.len]
    }
}

/// Constant CBOR prefix of every Enc_structure this deployment builds:
/// `array(3)`, `"Encrypt0"`, and the empty protected bucket. Only the
/// external AAD that follows varies (with the request kid/piv).
const AAD_SKELETON: [u8; 11] = [
    0x83, // array(3)
    0x68, b'E', b'n', b'c', b'r', b'y', b'p', b't', b'0', // text(8) "Encrypt0"
    0x40, // bytes(0): empty protected bucket
];

/// Build the Enc_structure AAD of RFC 8613 §5.4 without touching the
/// heap: the constant skeleton is precomputed and only `(kid, piv)` are
/// streamed into the stack buffer. Byte-identical to encoding the
/// equivalent CBOR `Value` tree (asserted in tests).
fn build_aad(request_kid: &[u8], request_piv: &[u8]) -> Aad {
    debug_assert!(request_kid.len() <= 23 && request_piv.len() <= 23);
    debug_assert_eq!(crate::context::ALG_AES_CCM_16_64_128, 10);
    let mut buf = [0u8; AAD_BUF_LEN];
    buf[..AAD_SKELETON.len()].copy_from_slice(&AAD_SKELETON);
    let mut i = AAD_SKELETON.len();
    // external_aad = [1, [10], kid, piv, h''] wrapped as a byte string.
    let ea_len = 1 + 1 + 2 + (1 + request_kid.len()) + (1 + request_piv.len()) + 1;
    if ea_len < 24 {
        buf[i] = 0x40 | ea_len as u8;
        i += 1;
    } else {
        buf[i] = 0x58;
        buf[i + 1] = ea_len as u8;
        i += 2;
    }
    buf[i] = 0x85; // array(5)
    buf[i + 1] = 0x01; // oscore_version = 1
    buf[i + 2] = 0x81; // algorithms: array(1)
    buf[i + 3] = 0x0A; // AES-CCM-16-64-128 (COSE alg 10)
    i += 4;
    buf[i] = 0x40 | request_kid.len() as u8;
    i += 1;
    buf[i..i + request_kid.len()].copy_from_slice(request_kid);
    i += request_kid.len();
    buf[i] = 0x40 | request_piv.len() as u8;
    i += 1;
    buf[i..i + request_piv.len()].copy_from_slice(request_piv);
    i += request_piv.len();
    buf[i] = 0x40; // Class-I options (none)
    i += 1;
    Aad { buf, len: i }
}

/// Append the Class-U options of `msg` whose numbers fall in
/// `lo..=hi` in ascending (number, position) order — an allocation-free
/// selection scan over the tiny outer option set, tolerant of any
/// stored order, and byte-identical to what the owned path's
/// stable-sorting `encode_options_into` fallback emits. Returns the
/// last written option number for delta chaining.
fn encode_outer_options_sorted(
    msg: &CoapMessage,
    lo: u16,
    hi: u16,
    mut prev: u16,
    out: &mut Vec<u8>,
) -> u16 {
    let mut last: Option<(u16, usize)> = None;
    loop {
        let next = msg
            .options
            .iter()
            .enumerate()
            .filter(|&(i, o)| {
                is_outer_option(o.number)
                    && o.number != OptionNumber::OSCORE
                    && (lo..=hi).contains(&o.number.0)
                    && last.is_none_or(|l| (o.number.0, i) > l)
            })
            .min_by_key(|&(i, o)| (o.number.0, i));
        match next {
            Some((i, o)) => {
                prev = doc_coap::msg::encode_option_into(prev, o, out);
                last = Some((o.number.0, i));
            }
            None => return prev,
        }
    }
}

/// Options that stay on the outer message (Class U). Everything else is
/// encrypted (Class E).
fn is_outer_option(number: OptionNumber) -> bool {
    matches!(
        number,
        OptionNumber::URI_HOST
            | OptionNumber::URI_PORT
            | OptionNumber::PROXY_URI
            | OptionNumber::PROXY_SCHEME
            | OptionNumber::OSCORE
    )
}

/// Serialize the inner (plaintext) form: `code || options || 0xFF ||
/// payload` (RFC 8613 §5.3), written directly into one buffer — no
/// shadow message, no option clones. The returned buffer is then
/// encrypted *in place* by the callers.
fn encode_inner(msg: &CoapMessage) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + 16 + msg.payload.len() + TAG_LEN);
    out.push(msg.code.0);
    doc_coap::msg::encode_options_into(
        msg.options.iter().filter(|o| !is_outer_option(o.number)),
        &mut out,
    );
    if !msg.payload.is_empty() {
        out.push(0xFF);
        out.extend_from_slice(&msg.payload);
    }
    out
}

/// Parse an inner plaintext back into code/options/payload — the
/// reference decoder [`open_inner`]'s in-place path is tested against.
#[cfg(test)]
fn decode_inner(plain: &[u8]) -> Result<CoapMessage, OscoreError> {
    if plain.is_empty() {
        return Err(OscoreError::Malformed);
    }
    // Re-add a fake 4-byte header for the codec.
    let mut wire = vec![0x40, plain[0], 0, 0];
    wire.extend_from_slice(&plain[1..]);
    CoapMessage::decode(&wire).map_err(|_| OscoreError::Malformed)
}

/// Open a borrowed ciphertext and decode the inner message without a
/// scratch plaintext buffer: the ciphertext is copied once into the
/// codec's framing buffer (after a fake 4-byte CoAP header) and
/// decrypted **in place** there via [`AesCcm::open_suffix_in_place`] —
/// one allocation on the whole unprotect path instead of two.
fn open_inner(
    ccm: &AesCcm,
    nonce: &[u8],
    aad: &[u8],
    ciphertext: &[u8],
) -> Result<CoapMessage, OscoreError> {
    let mut wire = Vec::with_capacity(4 + ciphertext.len());
    wire.extend_from_slice(&[0x40, 0, 0, 0]);
    wire.extend_from_slice(ciphertext);
    ccm.open_suffix_in_place(nonce, aad, &mut wire, 4)
        .map_err(|_| OscoreError::Crypto)?;
    // `wire` now holds `fake header(4) || inner code || options/payload`;
    // hoist the inner code into the header's code slot for the codec.
    if wire.len() < 5 {
        return Err(OscoreError::Malformed);
    }
    wire[1] = wire[4];
    wire.remove(4);
    CoapMessage::decode(&wire).map_err(|_| OscoreError::Malformed)
}

/// Serialize the outer request wire — header (code POST), Class-U
/// options merged with the OSCORE option, payload marker — followed by
/// the still-plaintext inner message (RFC 8613 §5.3). Returns the
/// offset where the inner part begins so the caller can seal the
/// buffer's suffix in place (single or batched).
fn serialize_outer_request(msg: &CoapMessage, kid: &[u8], piv: &[u8], out: &mut Vec<u8>) -> usize {
    assert!(msg.token.len() <= 8, "token too long");
    debug_assert!(
        kid.len() + piv.len() <= 12,
        "OSCORE ids exceed option buffer"
    );

    // Outer header: type/token from the caller, code POST.
    out.push(0x40 | (msg.mtype.to_bits() << 4) | msg.token.len() as u8);
    out.push(Code::POST.0);
    out.extend_from_slice(&msg.message_id.to_be_bytes());
    out.extend_from_slice(&msg.token);

    // OSCORE option value on the stack: flags || piv || kid.
    let mut optval = [0u8; 13];
    optval[0] = (piv.len() as u8 & 0x07) | 0x08;
    optval[1..1 + piv.len()].copy_from_slice(piv);
    optval[1 + piv.len()..1 + piv.len() + kid.len()].copy_from_slice(kid);
    let optval_len = 1 + piv.len() + kid.len();

    // Outer (Class U) options merged with OSCORE at number 9, in
    // ascending (number, position) order regardless of how the
    // caller stored them — the same order the owned path's
    // stable-sort encode fallback produces.
    let mut prev = encode_outer_options_sorted(msg, 0, OptionNumber::OSCORE.0 - 1, 0, out);
    prev = doc_coap::msg::encode_raw_option_into(
        prev,
        OptionNumber::OSCORE.0,
        &optval[..optval_len],
        out,
    );
    encode_outer_options_sorted(msg, OptionNumber::OSCORE.0 + 1, u16::MAX, prev, out);

    // Inner message after the payload marker; sealed at the tail by the
    // caller.
    out.push(0xFF);
    let inner_start = out.len();
    out.push(msg.code.0);
    doc_coap::msg::encode_options_into(
        msg.options.iter().filter(|o| !is_outer_option(o.number)),
        out,
    );
    if !msg.payload.is_empty() {
        out.push(0xFF);
        out.extend_from_slice(&msg.payload);
    }
    inner_start
}

/// Sliding replay window for recipient PIVs.
#[derive(Debug, Clone)]
pub struct ReplayWindow {
    window: u128,
    highest: u64,
    bits: u32,
    initialized: bool,
}

impl ReplayWindow {
    /// A window covering `bits` sequence numbers.
    pub fn new(bits: u32) -> Self {
        ReplayWindow {
            window: 0,
            highest: 0,
            bits: bits.clamp(1, 128),
            initialized: false,
        }
    }

    /// Accept-and-mark; false on replay/too-old.
    pub fn check_and_update(&mut self, seq: u64) -> bool {
        if !self.initialized {
            self.initialized = true;
            self.highest = seq;
            self.window = 1;
            return true;
        }
        if seq > self.highest {
            let shift = seq - self.highest;
            if shift >= self.bits as u64 {
                self.window = 1;
            } else {
                self.window = (self.window << shift) | 1;
            }
            self.highest = seq;
            true
        } else {
            let offset = self.highest - seq;
            if offset >= self.bits as u64 {
                return false;
            }
            let mask = 1u128 << offset;
            if self.window & mask != 0 {
                return false;
            }
            self.window |= mask;
            true
        }
    }
}

/// An OSCORE endpoint: security context + replay window + Echo state.
pub struct OscoreEndpoint {
    /// The derived security context.
    pub ctx: SecurityContext,
    /// Cached AEAD for the send direction (sender key): the AES key
    /// schedule is expanded once at construction instead of per message.
    sender_ccm: AesCcm,
    /// Cached AEAD for the receive direction (recipient key).
    recipient_ccm: AesCcm,
    replay: ReplayWindow,
    /// Server-side Echo gate: `None` once the replay window is
    /// synchronized. Paper Fig. 6: the first exchange costs one
    /// "4.01 Unauthorized" + "Query (w/ Echo)" round trip.
    echo_challenge: Option<Vec<u8>>,
    echo_required: bool,
    echo_counter: u64,
}

impl OscoreEndpoint {
    /// Create an endpoint. `require_echo` enables the server-side
    /// replay-window initialization challenge.
    pub fn new(ctx: SecurityContext, require_echo: bool) -> Self {
        // Paper §5.1: "we increase … the OSCORE replay window size" for
        // long runs — 64 entries here (RFC default is 32).
        OscoreEndpoint {
            sender_ccm: AesCcm::cose_ccm_16_64_128(&ctx.sender_key),
            recipient_ccm: AesCcm::cose_ccm_16_64_128(&ctx.recipient_key),
            ctx,
            replay: ReplayWindow::new(64),
            echo_challenge: None,
            echo_required: require_echo,
            echo_counter: 0,
        }
    }

    /// Protect a request. The returned outer message keeps the caller's
    /// message ID/token/type; the code becomes POST (RFC 8613 §4.1.3.5).
    pub fn protect_request(
        &mut self,
        msg: &CoapMessage,
    ) -> Result<(CoapMessage, RequestBinding), OscoreError> {
        let piv = self.ctx.next_piv()?;
        let kid = self.ctx.sender_id.clone();
        // The serialized inner message is encrypted in place: the same
        // buffer becomes the outer payload, no intermediate copies.
        let mut ciphertext = encode_inner(msg);
        let aad = build_aad(&kid, &piv);
        let nonce = self.ctx.nonce(&kid, &piv);
        self.sender_ccm
            .seal_in_place(&nonce, aad.as_slice(), &mut ciphertext)
            .map_err(|_| OscoreError::Crypto)?;
        let opt = OscoreOption {
            piv: piv.clone(),
            kid: Some(kid.clone()),
        };
        let mut outer = CoapMessage {
            mtype: msg.mtype,
            code: Code::POST,
            message_id: msg.message_id,
            token: msg.token.clone(),
            options: msg
                .options
                .iter()
                .filter(|o| is_outer_option(o.number))
                .cloned()
                .collect(),
            payload: ciphertext,
        };
        outer.set_option(CoapOption::new(OptionNumber::OSCORE, opt.encode()));
        Ok((outer, RequestBinding { kid, piv }))
    }

    /// Protect a request straight onto the wire: the outer message is
    /// serialized into `out` (header, outer options, OSCORE option,
    /// payload marker) and the inner message is serialized after the
    /// marker and sealed **in place** at the buffer's tail. With a
    /// reused `out`, the only allocations are the two `Vec`s of the
    /// returned [`RequestBinding`] — no outer `CoapMessage` is ever
    /// materialized. Byte-identical to encoding
    /// [`OscoreEndpoint::protect_request`]'s outer message.
    pub fn protect_request_into(
        &mut self,
        msg: &CoapMessage,
        out: &mut Vec<u8>,
    ) -> Result<RequestBinding, OscoreError> {
        let piv = self.ctx.next_piv()?;
        // lint:allow(no-alloc-in-into): one of the two documented RequestBinding allocations this function returns
        let kid = self.ctx.sender_id.clone();
        let inner_start = serialize_outer_request(msg, &kid, &piv, out);
        let aad = build_aad(&kid, &piv);
        let nonce = self.ctx.nonce(&kid, &piv);
        self.sender_ccm
            .seal_suffix_in_place(&nonce, aad.as_slice(), out, inner_start)
            .map_err(|_| OscoreError::Crypto)?;
        Ok(RequestBinding { kid, piv })
    }

    /// Protect a whole batch of requests in one pass, returning each
    /// request's wire bytes and binding — byte-identical to calling
    /// [`OscoreEndpoint::protect_request_into`] per message, but the
    /// CBC-MAC chains of all requests advance in lockstep and every
    /// keystream is generated through one flattened multi-block AES
    /// pass ([`AesCcm::seal_suffix_batch`]). This is how a `ProxyPool`
    /// worker amortizes keystream setup across a `pop_batch` drain.
    pub fn protect_batch(
        &mut self,
        msgs: &[CoapMessage],
    ) -> Result<(Vec<Vec<u8>>, Vec<RequestBinding>), OscoreError> {
        let n = msgs.len();
        let mut wires: Vec<Vec<u8>> = Vec::with_capacity(n);
        let mut bindings: Vec<RequestBinding> = Vec::with_capacity(n);
        let mut nonces = Vec::with_capacity(n);
        let mut aads = Vec::with_capacity(n);
        let mut starts = Vec::with_capacity(n);
        for msg in msgs {
            let piv = self.ctx.next_piv()?;
            let kid = self.ctx.sender_id.clone();
            let mut out = Vec::new();
            starts.push(serialize_outer_request(msg, &kid, &piv, &mut out));
            wires.push(out);
            nonces.push(self.ctx.nonce(&kid, &piv));
            aads.push(build_aad(&kid, &piv));
            bindings.push(RequestBinding { kid, piv });
        }
        let mut reqs: Vec<SealRequest<'_>> = wires
            .iter_mut()
            .zip(nonces.iter().zip(aads.iter().zip(starts.iter())))
            .map(|(buf, (nonce, (aad, &start)))| SealRequest {
                nonce,
                aad: aad.as_slice(),
                buf,
                start,
            })
            .collect();
        self.sender_ccm
            .seal_suffix_batch(&mut reqs)
            .map_err(|_| OscoreError::Crypto)?;
        Ok((wires, bindings))
    }

    /// Unprotect a request; enforces replay protection and, when
    /// enabled, the Echo round trip.
    pub fn unprotect_request(
        &mut self,
        outer: &CoapMessage,
    ) -> Result<(CoapMessage, RequestBinding), OscoreError> {
        let opt_value = outer
            .option(OptionNumber::OSCORE)
            .ok_or(OscoreError::NotOscore)?;
        self.unprotect_request_parts(
            &opt_value.value,
            outer.mtype,
            outer.message_id,
            &outer.token,
            &outer.payload,
        )
    }

    /// [`OscoreEndpoint::unprotect_request`] over a borrowed wire view:
    /// the outer message is never materialized — option value, token
    /// and ciphertext are read straight from the datagram.
    pub fn unprotect_request_view(
        &mut self,
        outer: &CoapView<'_>,
    ) -> Result<(CoapMessage, RequestBinding), OscoreError> {
        let opt_value = outer
            .option(OptionNumber::OSCORE)
            .ok_or(OscoreError::NotOscore)?;
        self.unprotect_request_parts(
            opt_value.value,
            outer.mtype,
            outer.message_id,
            outer.token(),
            outer.payload(),
        )
    }

    fn unprotect_request_parts(
        &mut self,
        opt_value: &[u8],
        mtype: MsgType,
        message_id: u16,
        token: &[u8],
        payload: &[u8],
    ) -> Result<(CoapMessage, RequestBinding), OscoreError> {
        let opt = OscoreOption::decode(opt_value)?;
        let kid = opt.kid.clone().ok_or(OscoreError::Malformed)?;
        if kid != self.ctx.recipient_id {
            return Err(OscoreError::Crypto);
        }
        let seq = decode_piv(&opt.piv).ok_or(OscoreError::Malformed)?;
        let aad = build_aad(&kid, &opt.piv);
        let nonce = self.ctx.nonce(&kid, &opt.piv);
        let mut inner = open_inner(&self.recipient_ccm, &nonce, aad.as_slice(), payload)?;
        inner.mtype = mtype;
        inner.message_id = message_id;
        inner.token = token.to_vec();

        // Echo-based replay-window initialization (RFC 8613 Appendix
        // B.1.2 / RFC 9175): before accepting the first request, demand
        // a round trip proving freshness.
        if self.echo_required {
            let presented = inner.option(OptionNumber::ECHO).map(|o| o.value.clone());
            match (&self.echo_challenge, presented) {
                (Some(expect), Some(got)) if *expect == got => {
                    self.echo_required = false;
                    self.echo_challenge = None;
                }
                _ => {
                    let challenge = self.new_echo();
                    return Err(OscoreError::EchoRequired(challenge));
                }
            }
        }
        if !self.replay.check_and_update(seq) {
            return Err(OscoreError::Replay);
        }
        Ok((inner, RequestBinding { kid, piv: opt.piv }))
    }

    fn new_echo(&mut self) -> Vec<u8> {
        self.echo_counter += 1;
        let mut tag =
            doc_crypto::hmac::hmac_sha256(&self.ctx.sender_key, &self.echo_counter.to_be_bytes())
                [..8]
                .to_vec();
        tag.push(self.echo_counter as u8);
        self.echo_challenge = Some(tag.clone());
        tag
    }

    /// Build the outer `4.01 Unauthorized` carrying the Echo challenge
    /// (protected, so only the legitimate client can read it).
    pub fn protect_echo_challenge(
        &mut self,
        request_outer: &CoapMessage,
        binding: &RequestBinding,
        challenge: &[u8],
    ) -> Result<CoapMessage, OscoreError> {
        let mut inner = CoapMessage::ack_response(request_outer, Code::UNAUTHORIZED);
        inner.set_option(CoapOption::new(OptionNumber::ECHO, challenge.to_vec()));
        self.protect_response(&inner, binding, request_outer)
    }

    /// Protect a response bound to `binding` (no PIV: the request's
    /// nonce is reused with our sender key).
    pub fn protect_response(
        &self,
        msg: &CoapMessage,
        binding: &RequestBinding,
        request_outer: &CoapMessage,
    ) -> Result<CoapMessage, OscoreError> {
        let mut ciphertext = encode_inner(msg);
        let aad = build_aad(&binding.kid, &binding.piv);
        let nonce = self.ctx.nonce(&binding.kid, &binding.piv);
        self.sender_ccm
            .seal_in_place(&nonce, aad.as_slice(), &mut ciphertext)
            .map_err(|_| OscoreError::Crypto)?;
        let mut outer = CoapMessage {
            mtype: msg.mtype,
            code: Code::CHANGED, // outer 2.04 (RFC 8613 §4.1.3.5)
            message_id: request_outer.message_id,
            token: request_outer.token.clone(),
            options: Vec::new(),
            payload: ciphertext,
        };
        outer.set_option(CoapOption::new(
            OptionNumber::OSCORE,
            OscoreOption::default().encode(),
        ));
        Ok(outer)
    }

    /// Unprotect a response bound to our earlier request.
    pub fn unprotect_response(
        &self,
        outer: &CoapMessage,
        binding: &RequestBinding,
    ) -> Result<CoapMessage, OscoreError> {
        outer
            .option(OptionNumber::OSCORE)
            .ok_or(OscoreError::NotOscore)?;
        self.unprotect_response_parts(
            binding,
            outer.mtype,
            outer.message_id,
            &outer.token,
            &outer.payload,
        )
    }

    /// [`OscoreEndpoint::unprotect_response`] over a borrowed wire view.
    pub fn unprotect_response_view(
        &self,
        outer: &CoapView<'_>,
        binding: &RequestBinding,
    ) -> Result<CoapMessage, OscoreError> {
        outer
            .option(OptionNumber::OSCORE)
            .ok_or(OscoreError::NotOscore)?;
        self.unprotect_response_parts(
            binding,
            outer.mtype,
            outer.message_id,
            outer.token(),
            outer.payload(),
        )
    }

    fn unprotect_response_parts(
        &self,
        binding: &RequestBinding,
        mtype: MsgType,
        message_id: u16,
        token: &[u8],
        payload: &[u8],
    ) -> Result<CoapMessage, OscoreError> {
        let aad = build_aad(&binding.kid, &binding.piv);
        let nonce = self.ctx.nonce(&binding.kid, &binding.piv);
        let mut inner = open_inner(&self.recipient_ccm, &nonce, aad.as_slice(), payload)?;
        inner.mtype = mtype;
        inner.message_id = message_id;
        inner.token = token.to_vec();
        Ok(inner)
    }

    /// Per-message ciphertext overhead (the COSE tag).
    pub const TAG_OVERHEAD: usize = TAG_LEN;
}

#[cfg(test)]
mod tests {
    use super::*;
    use doc_coap::msg::MsgType;

    fn contexts() -> (OscoreEndpoint, OscoreEndpoint) {
        let secret = b"0123456789abcdef";
        let salt = b"salty";
        let client = SecurityContext::derive(secret, salt, &[], &[0x01]);
        let server = SecurityContext::derive(secret, salt, &[0x01], &[]);
        (
            OscoreEndpoint::new(client, false),
            OscoreEndpoint::new(server, false),
        )
    }

    fn fetch_request() -> CoapMessage {
        CoapMessage::request(Code::FETCH, MsgType::Con, 0x0102, vec![0xAA, 0xBB])
            .with_option(CoapOption::new(OptionNumber::URI_PATH, b"dns".to_vec()))
            .with_option(CoapOption::uint(OptionNumber::CONTENT_FORMAT, 553))
            .with_payload(b"dns query wire format".to_vec())
    }

    #[test]
    fn option_encoding_roundtrip() {
        for opt in [
            OscoreOption::default(),
            OscoreOption {
                piv: vec![0x00],
                kid: Some(vec![]),
            },
            OscoreOption {
                piv: vec![0x14],
                kid: Some(vec![0x01]),
            },
            OscoreOption {
                piv: vec![1, 2, 3, 4, 5],
                kid: Some(b"clientid".to_vec()),
            },
        ] {
            assert_eq!(OscoreOption::decode(&opt.encode()).unwrap(), opt);
        }
    }

    #[test]
    fn option_rejects_reserved_bits() {
        assert!(OscoreOption::decode(&[0x80, 0]).is_err());
        assert!(OscoreOption::decode(&[0x07]).is_err()); // claims 7-byte piv
    }

    #[test]
    fn request_roundtrip() {
        let (mut client, mut server) = contexts();
        let req = fetch_request();
        let (outer, binding_c) = client.protect_request(&req).unwrap();
        // Outer code is POST; inner is hidden.
        assert_eq!(outer.code, Code::POST);
        assert!(outer.option(OptionNumber::OSCORE).is_some());
        assert!(outer.option(OptionNumber::URI_PATH).is_none());
        assert!(outer.option(OptionNumber::CONTENT_FORMAT).is_none());

        let (inner, binding_s) = server.unprotect_request(&outer).unwrap();
        assert_eq!(inner.code, Code::FETCH);
        assert_eq!(inner.payload, req.payload);
        assert_eq!(inner.uri_path(), "/dns");
        assert_eq!(inner.token, req.token);
        assert_eq!(binding_c, binding_s);
    }

    #[test]
    fn response_roundtrip() {
        let (mut client, mut server) = contexts();
        let req = fetch_request();
        let (outer_req, binding) = client.protect_request(&req).unwrap();
        let (inner_req, s_binding) = server.unprotect_request(&outer_req).unwrap();

        let resp = CoapMessage::ack_response(&inner_req, Code::CONTENT)
            .with_option(CoapOption::uint(OptionNumber::MAX_AGE, 300))
            .with_payload(b"dns response".to_vec());
        let outer_resp = server
            .protect_response(&resp, &s_binding, &outer_req)
            .unwrap();
        assert_eq!(outer_resp.code, Code::CHANGED);
        // The OSCORE option of a response is empty.
        assert!(outer_resp
            .option(OptionNumber::OSCORE)
            .unwrap()
            .value
            .is_empty());

        let inner_resp = client.unprotect_response(&outer_resp, &binding).unwrap();
        assert_eq!(inner_resp.code, Code::CONTENT);
        assert_eq!(inner_resp.payload, b"dns response");
        assert_eq!(inner_resp.max_age(), 300);
    }

    #[test]
    fn replay_rejected() {
        let (mut client, mut server) = contexts();
        let (outer, _) = client.protect_request(&fetch_request()).unwrap();
        assert!(server.unprotect_request(&outer).is_ok());
        assert_eq!(server.unprotect_request(&outer), Err(OscoreError::Replay));
    }

    #[test]
    fn response_bound_to_request() {
        let (mut client, mut server) = contexts();
        let (outer1, binding1) = client.protect_request(&fetch_request()).unwrap();
        let (outer2, binding2) = client.protect_request(&fetch_request()).unwrap();
        let (_, s_b1) = server.unprotect_request(&outer1).unwrap();
        let (inner2, _) = server.unprotect_request(&outer2).unwrap();
        let resp =
            CoapMessage::ack_response(&inner2, Code::CONTENT).with_payload(b"answer".to_vec());
        // Response protected under binding 1 must not verify under
        // binding 2 (mismatch attack).
        let outer_resp = server.protect_response(&resp, &s_b1, &outer1).unwrap();
        assert!(client.unprotect_response(&outer_resp, &binding1).is_ok());
        let outer_resp = server.protect_response(&resp, &s_b1, &outer1).unwrap();
        assert_eq!(
            client.unprotect_response(&outer_resp, &binding2),
            Err(OscoreError::Crypto)
        );
    }

    #[test]
    fn tampered_ciphertext_rejected() {
        let (mut client, mut server) = contexts();
        let (mut outer, _) = client.protect_request(&fetch_request()).unwrap();
        let n = outer.payload.len();
        outer.payload[n - 1] ^= 1;
        assert_eq!(server.unprotect_request(&outer), Err(OscoreError::Crypto));
    }

    #[test]
    fn wrong_kid_rejected() {
        let secret = b"0123456789abcdef";
        let mut client = OscoreEndpoint::new(
            SecurityContext::derive(secret, b"s", &[0x42], &[0x01]),
            false,
        );
        let mut server =
            OscoreEndpoint::new(SecurityContext::derive(secret, b"s", &[0x01], &[]), false);
        let (outer, _) = client.protect_request(&fetch_request()).unwrap();
        assert_eq!(server.unprotect_request(&outer), Err(OscoreError::Crypto));
    }

    #[test]
    fn non_oscore_message_rejected() {
        let (_, mut server) = contexts();
        let plain = fetch_request();
        assert_eq!(
            server.unprotect_request(&plain),
            Err(OscoreError::NotOscore)
        );
    }

    /// Reproduces the paper's Fig. 6 OSCORE session-setup flow: first
    /// request → 4.01 Unauthorized w/ Echo → retried request w/ Echo →
    /// success.
    #[test]
    fn echo_replay_window_initialization() {
        let secret = b"0123456789abcdef";
        let mut client =
            OscoreEndpoint::new(SecurityContext::derive(secret, b"s", &[], &[0x01]), false);
        let mut server = OscoreEndpoint::new(
            SecurityContext::derive(secret, b"s", &[0x01], &[]),
            true, // require Echo
        );
        let req = fetch_request();
        let (outer1, binding1) = client.protect_request(&req).unwrap();
        // Server demands an Echo round trip.
        let challenge = match server.unprotect_request(&outer1) {
            Err(OscoreError::EchoRequired(c)) => c,
            other => panic!("expected EchoRequired, got {other:?}"),
        };
        // It can protect the 4.01 for the client using the binding from
        // the outer option (recompute like the server would).
        let opt =
            OscoreOption::decode(&outer1.option(OptionNumber::OSCORE).unwrap().value).unwrap();
        let s_binding = RequestBinding {
            kid: opt.kid.unwrap(),
            piv: opt.piv,
        };
        let challenge_resp = server
            .protect_echo_challenge(&outer1, &s_binding, &challenge)
            .unwrap();
        let inner_resp = client
            .unprotect_response(&challenge_resp, &binding1)
            .unwrap();
        assert_eq!(inner_resp.code, Code::UNAUTHORIZED);
        let echo = inner_resp.option(OptionNumber::ECHO).unwrap().value.clone();

        // Client retries with the Echo option.
        let mut retry = fetch_request();
        retry.set_option(CoapOption::new(OptionNumber::ECHO, echo));
        let (outer2, _) = client.protect_request(&retry).unwrap();
        let (inner2, _) = server.unprotect_request(&outer2).unwrap();
        assert_eq!(inner2.code, Code::FETCH);
        // Subsequent requests need no Echo.
        let (outer3, _) = client.protect_request(&fetch_request()).unwrap();
        assert!(server.unprotect_request(&outer3).is_ok());
    }

    #[test]
    fn wrong_echo_rechallenged() {
        let secret = b"0123456789abcdef";
        let mut client =
            OscoreEndpoint::new(SecurityContext::derive(secret, b"s", &[], &[0x01]), false);
        let mut server =
            OscoreEndpoint::new(SecurityContext::derive(secret, b"s", &[0x01], &[]), true);
        let mut req = fetch_request();
        req.set_option(CoapOption::new(OptionNumber::ECHO, vec![1, 2, 3]));
        let (outer, _) = client.protect_request(&req).unwrap();
        assert!(matches!(
            server.unprotect_request(&outer),
            Err(OscoreError::EchoRequired(_))
        ));
    }

    /// OSCORE adds a fixed, small overhead: option + tag — the reason
    /// its Fig. 6 bars sit well below DTLS.
    #[test]
    fn overhead_is_small() {
        let (mut client, _) = contexts();
        let req = fetch_request();
        let plain_len = req.encoded_len();
        let (outer, _) = client.protect_request(&req).unwrap();
        let protected_len = outer.encoded_len();
        let overhead = protected_len - plain_len;
        // tag (8) + OSCORE option (~4) + inner code byte, minus elided
        // inner option bytes — must stay under 16 bytes.
        assert!(overhead <= 16, "OSCORE overhead {overhead} bytes");
    }

    /// The stack-buffer AAD must be byte-identical to encoding the
    /// CBOR `Value` tree it replaced (RFC 8613 §5.4 Enc_structure).
    #[test]
    fn stack_aad_matches_cbor_value_tree() {
        use doc_crypto::cbor::Value;
        let reference = |kid: &[u8], piv: &[u8]| -> Vec<u8> {
            let external_aad = Value::Array(vec![
                Value::Uint(1),
                Value::Array(vec![Value::int(crate::context::ALG_AES_CCM_16_64_128)]),
                Value::Bytes(kid.to_vec()),
                Value::Bytes(piv.to_vec()),
                Value::Bytes(Vec::new()),
            ])
            .encode();
            Value::Array(vec![
                Value::Text("Encrypt0".to_string()),
                Value::Bytes(Vec::new()),
                Value::Bytes(external_aad),
            ])
            .encode()
        };
        for (kid, piv) in [
            (&b""[..], &[0x00][..]),
            (&[0x01][..], &[0x14][..]),
            (b"clientid", &[1, 2, 3, 4, 5][..]),
            (&[0xAB; 23][..], &[0xFF; 5][..]), // forces the 2-byte head
        ] {
            assert_eq!(
                build_aad(kid, piv).as_slice(),
                &reference(kid, piv)[..],
                "kid {kid:02X?} piv {piv:02X?}"
            );
        }
    }

    /// `protect_request_into` must produce exactly the wire bytes of
    /// encoding `protect_request`'s outer message.
    #[test]
    fn protect_request_into_matches_message_path() {
        let secret = b"0123456789abcdef";
        // Two identically-derived endpoints so both paths consume the
        // same PIV.
        let mut a = OscoreEndpoint::new(SecurityContext::derive(secret, b"s", &[], &[0x01]), false);
        let mut b = OscoreEndpoint::new(SecurityContext::derive(secret, b"s", &[], &[0x01]), false);
        let mut wire = Vec::new();
        for req in [
            fetch_request(),
            CoapMessage::request(Code::GET, MsgType::Con, 9, vec![])
                .with_option(CoapOption::new(OptionNumber::URI_HOST, b"doc".to_vec()))
                .with_option(CoapOption::new(OptionNumber::URI_PATH, b"dns".to_vec()))
                .with_option(CoapOption::new(
                    OptionNumber::PROXY_SCHEME,
                    b"coap".to_vec(),
                )),
            // Outer options stored out of order: both paths must fall
            // back to the same stable ascending order.
            CoapMessage::request(Code::GET, MsgType::Con, 10, vec![0x0A])
                .with_option(CoapOption::new(
                    OptionNumber::PROXY_SCHEME,
                    b"coap".to_vec(),
                ))
                .with_option(CoapOption::uint(OptionNumber::URI_PORT, 5683))
                .with_option(CoapOption::new(OptionNumber::URI_HOST, b"doc".to_vec()))
                .with_option(CoapOption::new(OptionNumber::URI_PATH, b"dns".to_vec())),
        ] {
            let (outer, binding_a) = a.protect_request(&req).unwrap();
            wire.clear();
            let binding_b = b.protect_request_into(&req, &mut wire).unwrap();
            assert_eq!(wire, outer.encode());
            assert_eq!(binding_a, binding_b);
        }
        // And the server can unprotect it straight from the view.
        let mut server =
            OscoreEndpoint::new(SecurityContext::derive(secret, b"s", &[0x01], &[]), false);
        let view = doc_coap::view::CoapView::parse(&wire).unwrap();
        let (inner, _) = server.unprotect_request_view(&view).unwrap();
        assert_eq!(inner.code, Code::GET);
        assert_eq!(inner.uri_path(), "/dns");
    }

    /// `protect_batch` must produce exactly the wires and bindings of
    /// protecting each request sequentially with `protect_request_into`
    /// — and the server must unprotect every batched wire.
    #[test]
    fn protect_batch_matches_sequential() {
        let secret = b"0123456789abcdef";
        // Two identically-derived endpoints so both paths consume the
        // same PIV sequence.
        let mut seq =
            OscoreEndpoint::new(SecurityContext::derive(secret, b"s", &[], &[0x01]), false);
        let mut bat =
            OscoreEndpoint::new(SecurityContext::derive(secret, b"s", &[], &[0x01]), false);
        let msgs: Vec<CoapMessage> = (0..7u16)
            .map(|i| {
                CoapMessage::request(Code::FETCH, MsgType::Con, 100 + i, vec![i as u8, 0xBB])
                    .with_option(CoapOption::new(OptionNumber::URI_PATH, b"dns".to_vec()))
                    .with_payload(vec![0x5A; 10 + 17 * i as usize])
            })
            .collect();
        let (wires, bindings) = bat.protect_batch(&msgs).unwrap();
        let mut server =
            OscoreEndpoint::new(SecurityContext::derive(secret, b"s", &[0x01], &[]), false);
        for (i, msg) in msgs.iter().enumerate() {
            let mut expect = Vec::new();
            let expect_binding = seq.protect_request_into(msg, &mut expect).unwrap();
            assert_eq!(wires[i], expect, "wire {i}");
            assert_eq!(bindings[i], expect_binding, "binding {i}");
            let view = doc_coap::view::CoapView::parse(&wires[i]).unwrap();
            let (inner, _) = server.unprotect_request_view(&view).unwrap();
            assert_eq!(inner.payload, msg.payload, "unprotect {i}");
        }
    }

    #[test]
    fn unprotect_view_agrees_with_owned() {
        let (mut client, mut server) = contexts();
        let req = fetch_request();
        let (outer, binding) = client.protect_request(&req).unwrap();
        let wire = outer.encode();
        let view = doc_coap::view::CoapView::parse(&wire).unwrap();
        let (inner, s_binding) = server.unprotect_request_view(&view).unwrap();
        assert_eq!(inner.code, Code::FETCH);
        assert_eq!(inner.payload, req.payload);
        assert_eq!(s_binding, binding);
        // Replay protection also applies on the view path.
        assert_eq!(
            server.unprotect_request_view(&view),
            Err(OscoreError::Replay)
        );
        // Response unprotection over a view.
        let resp =
            CoapMessage::ack_response(&inner, Code::CONTENT).with_payload(b"answer".to_vec());
        let outer_resp = server.protect_response(&resp, &s_binding, &outer).unwrap();
        let resp_wire = outer_resp.encode();
        let resp_view = doc_coap::view::CoapView::parse(&resp_wire).unwrap();
        let inner_resp = client
            .unprotect_response_view(&resp_view, &binding)
            .unwrap();
        assert_eq!(inner_resp.payload, b"answer");
    }

    #[test]
    fn inner_codec_roundtrip() {
        let msg = fetch_request();
        let inner = encode_inner(&msg);
        let back = decode_inner(&inner).unwrap();
        assert_eq!(back.code, msg.code);
        assert_eq!(back.payload, msg.payload);
        assert_eq!(back.uri_path(), "/dns");
    }

    #[test]
    fn decode_inner_rejects_empty() {
        assert_eq!(decode_inner(&[]), Err(OscoreError::Malformed));
    }
}
