//! OSCORE message protection (RFC 8613 §5–§8).
//!
//! A protected request looks like:
//!
//! ```text
//! outer CoAP header (POST) | OSCORE option: flags|PIV|kid | 0xFF | COSE ciphertext
//! ```
//!
//! where the ciphertext encrypts `inner code || Class-E options || 0xFF
//! || payload` under AES-CCM-16-64-128 with the nonce/AAD constructions
//! of §5.2/§5.4. Responses omit PIV and kid (empty OSCORE option) and
//! reuse the request's nonce — they are bound to the request through
//! the AAD, which is what makes mismatch/replay attacks fail and lets
//! responses stay valid across CoAP retransmissions (paper §4.3).

use crate::context::{decode_piv, SecurityContext, TAG_LEN};
use crate::OscoreError;
use doc_coap::msg::{CoapMessage, Code};
use doc_coap::opt::{CoapOption, OptionNumber};
use doc_crypto::cbor::Value;
use doc_crypto::ccm::AesCcm;

/// Decoded OSCORE option value.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct OscoreOption {
    /// Partial IV (absent in responses).
    pub piv: Vec<u8>,
    /// Key identifier (the sender ID of the requester).
    pub kid: Option<Vec<u8>>,
}

impl OscoreOption {
    /// Encode to option-value bytes (RFC 8613 §6.1).
    pub fn encode(&self) -> Vec<u8> {
        if self.piv.is_empty() && self.kid.is_none() {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(1 + self.piv.len());
        let mut flags = self.piv.len() as u8 & 0x07;
        if self.kid.is_some() {
            flags |= 0x08;
        }
        out.push(flags);
        out.extend_from_slice(&self.piv);
        if let Some(kid) = &self.kid {
            out.extend_from_slice(kid);
        }
        out
    }

    /// Decode from option-value bytes.
    pub fn decode(value: &[u8]) -> Result<Self, OscoreError> {
        if value.is_empty() {
            return Ok(OscoreOption::default());
        }
        let flags = value[0];
        if flags & 0xE0 != 0 {
            return Err(OscoreError::Malformed); // reserved bits
        }
        let n = (flags & 0x07) as usize;
        if n > 5 {
            return Err(OscoreError::Malformed);
        }
        let mut pos = 1usize;
        let piv = value
            .get(pos..pos + n)
            .ok_or(OscoreError::Malformed)?
            .to_vec();
        pos += n;
        if flags & 0x10 != 0 {
            // kid context: length-prefixed (unused in this deployment,
            // but parsed for robustness).
            let l = *value.get(pos).ok_or(OscoreError::Malformed)? as usize;
            pos += 1 + l;
            if pos > value.len() {
                return Err(OscoreError::Malformed);
            }
        }
        let kid = if flags & 0x08 != 0 {
            Some(value[pos..].to_vec())
        } else {
            None
        };
        Ok(OscoreOption { piv, kid })
    }
}

/// Binding between a protected request and its response (RFC 8613
/// §5.4: `request_kid` and `request_piv` enter the response AAD).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestBinding {
    /// kid of the request (the client's sender ID).
    pub kid: Vec<u8>,
    /// Partial IV of the request.
    pub piv: Vec<u8>,
}

/// Build the Enc_structure AAD of RFC 8613 §5.4.
fn build_aad(request_kid: &[u8], request_piv: &[u8]) -> Vec<u8> {
    let external_aad = Value::Array(vec![
        Value::Uint(1), // oscore_version
        Value::Array(vec![Value::int(crate::context::ALG_AES_CCM_16_64_128)]),
        Value::Bytes(request_kid.to_vec()),
        Value::Bytes(request_piv.to_vec()),
        Value::Bytes(Vec::new()), // Class-I options (none)
    ])
    .encode();
    Value::Array(vec![
        Value::Text("Encrypt0".to_string()),
        Value::Bytes(Vec::new()), // protected bucket (empty)
        Value::Bytes(external_aad),
    ])
    .encode()
}

/// Options that stay on the outer message (Class U). Everything else is
/// encrypted (Class E).
fn is_outer_option(number: OptionNumber) -> bool {
    matches!(
        number,
        OptionNumber::URI_HOST
            | OptionNumber::URI_PORT
            | OptionNumber::PROXY_URI
            | OptionNumber::PROXY_SCHEME
            | OptionNumber::OSCORE
    )
}

/// Serialize the inner (plaintext) form: `code || options || 0xFF ||
/// payload` (RFC 8613 §5.3), written directly into one buffer — no
/// shadow message, no option clones. The returned buffer is then
/// encrypted *in place* by the callers.
fn encode_inner(msg: &CoapMessage) -> Vec<u8> {
    let mut out = Vec::with_capacity(1 + 16 + msg.payload.len() + TAG_LEN);
    out.push(msg.code.0);
    doc_coap::msg::encode_options_into(
        msg.options.iter().filter(|o| !is_outer_option(o.number)),
        &mut out,
    );
    if !msg.payload.is_empty() {
        out.push(0xFF);
        out.extend_from_slice(&msg.payload);
    }
    out
}

/// Parse an inner plaintext back into code/options/payload.
fn decode_inner(plain: &[u8]) -> Result<CoapMessage, OscoreError> {
    if plain.is_empty() {
        return Err(OscoreError::Malformed);
    }
    // Re-add a fake 4-byte header for the codec.
    let mut wire = vec![0x40, plain[0], 0, 0];
    wire.extend_from_slice(&plain[1..]);
    CoapMessage::decode(&wire).map_err(|_| OscoreError::Malformed)
}

/// Sliding replay window for recipient PIVs.
#[derive(Debug, Clone)]
pub struct ReplayWindow {
    window: u128,
    highest: u64,
    bits: u32,
    initialized: bool,
}

impl ReplayWindow {
    /// A window covering `bits` sequence numbers.
    pub fn new(bits: u32) -> Self {
        ReplayWindow {
            window: 0,
            highest: 0,
            bits: bits.clamp(1, 128),
            initialized: false,
        }
    }

    /// Accept-and-mark; false on replay/too-old.
    pub fn check_and_update(&mut self, seq: u64) -> bool {
        if !self.initialized {
            self.initialized = true;
            self.highest = seq;
            self.window = 1;
            return true;
        }
        if seq > self.highest {
            let shift = seq - self.highest;
            if shift >= self.bits as u64 {
                self.window = 1;
            } else {
                self.window = (self.window << shift) | 1;
            }
            self.highest = seq;
            true
        } else {
            let offset = self.highest - seq;
            if offset >= self.bits as u64 {
                return false;
            }
            let mask = 1u128 << offset;
            if self.window & mask != 0 {
                return false;
            }
            self.window |= mask;
            true
        }
    }
}

/// An OSCORE endpoint: security context + replay window + Echo state.
pub struct OscoreEndpoint {
    /// The derived security context.
    pub ctx: SecurityContext,
    replay: ReplayWindow,
    /// Server-side Echo gate: `None` once the replay window is
    /// synchronized. Paper Fig. 6: the first exchange costs one
    /// "4.01 Unauthorized" + "Query (w/ Echo)" round trip.
    echo_challenge: Option<Vec<u8>>,
    echo_required: bool,
    echo_counter: u64,
}

impl OscoreEndpoint {
    /// Create an endpoint. `require_echo` enables the server-side
    /// replay-window initialization challenge.
    pub fn new(ctx: SecurityContext, require_echo: bool) -> Self {
        // Paper §5.1: "we increase … the OSCORE replay window size" for
        // long runs — 64 entries here (RFC default is 32).
        OscoreEndpoint {
            ctx,
            replay: ReplayWindow::new(64),
            echo_challenge: None,
            echo_required: require_echo,
            echo_counter: 0,
        }
    }

    /// Protect a request. The returned outer message keeps the caller's
    /// message ID/token/type; the code becomes POST (RFC 8613 §4.1.3.5).
    pub fn protect_request(
        &mut self,
        msg: &CoapMessage,
    ) -> Result<(CoapMessage, RequestBinding), OscoreError> {
        let piv = self.ctx.next_piv()?;
        let kid = self.ctx.sender_id.clone();
        // The serialized inner message is encrypted in place: the same
        // buffer becomes the outer payload, no intermediate copies.
        let mut ciphertext = encode_inner(msg);
        let aad = build_aad(&kid, &piv);
        let nonce = self.ctx.nonce(&kid, &piv);
        let ccm = AesCcm::cose_ccm_16_64_128(&self.ctx.sender_key);
        ccm.seal_in_place(&nonce, &aad, &mut ciphertext)
            .map_err(|_| OscoreError::Crypto)?;
        let opt = OscoreOption {
            piv: piv.clone(),
            kid: Some(kid.clone()),
        };
        let mut outer = CoapMessage {
            mtype: msg.mtype,
            code: Code::POST,
            message_id: msg.message_id,
            token: msg.token.clone(),
            options: msg
                .options
                .iter()
                .filter(|o| is_outer_option(o.number))
                .cloned()
                .collect(),
            payload: ciphertext,
        };
        outer.set_option(CoapOption::new(OptionNumber::OSCORE, opt.encode()));
        Ok((outer, RequestBinding { kid, piv }))
    }

    /// Unprotect a request; enforces replay protection and, when
    /// enabled, the Echo round trip.
    pub fn unprotect_request(
        &mut self,
        outer: &CoapMessage,
    ) -> Result<(CoapMessage, RequestBinding), OscoreError> {
        let opt_value = outer
            .option(OptionNumber::OSCORE)
            .ok_or(OscoreError::NotOscore)?;
        let opt = OscoreOption::decode(&opt_value.value)?;
        let kid = opt.kid.clone().ok_or(OscoreError::Malformed)?;
        if kid != self.ctx.recipient_id {
            return Err(OscoreError::Crypto);
        }
        let seq = decode_piv(&opt.piv).ok_or(OscoreError::Malformed)?;
        let aad = build_aad(&kid, &opt.piv);
        let nonce = self.ctx.nonce(&kid, &opt.piv);
        let ccm = AesCcm::cose_ccm_16_64_128(&self.ctx.recipient_key);
        let plain = ccm
            .open(&nonce, &aad, &outer.payload)
            .map_err(|_| OscoreError::Crypto)?;
        let mut inner = decode_inner(&plain)?;
        inner.mtype = outer.mtype;
        inner.message_id = outer.message_id;
        inner.token = outer.token.clone();

        // Echo-based replay-window initialization (RFC 8613 Appendix
        // B.1.2 / RFC 9175): before accepting the first request, demand
        // a round trip proving freshness.
        if self.echo_required {
            let presented = inner.option(OptionNumber::ECHO).map(|o| o.value.clone());
            match (&self.echo_challenge, presented) {
                (Some(expect), Some(got)) if *expect == got => {
                    self.echo_required = false;
                    self.echo_challenge = None;
                }
                _ => {
                    let challenge = self.new_echo();
                    return Err(OscoreError::EchoRequired(challenge));
                }
            }
        }
        if !self.replay.check_and_update(seq) {
            return Err(OscoreError::Replay);
        }
        Ok((inner, RequestBinding { kid, piv: opt.piv }))
    }

    fn new_echo(&mut self) -> Vec<u8> {
        self.echo_counter += 1;
        let mut tag =
            doc_crypto::hmac::hmac_sha256(&self.ctx.sender_key, &self.echo_counter.to_be_bytes())
                [..8]
                .to_vec();
        tag.push(self.echo_counter as u8);
        self.echo_challenge = Some(tag.clone());
        tag
    }

    /// Build the outer `4.01 Unauthorized` carrying the Echo challenge
    /// (protected, so only the legitimate client can read it).
    pub fn protect_echo_challenge(
        &mut self,
        request_outer: &CoapMessage,
        binding: &RequestBinding,
        challenge: &[u8],
    ) -> Result<CoapMessage, OscoreError> {
        let mut inner = CoapMessage::ack_response(request_outer, Code::UNAUTHORIZED);
        inner.set_option(CoapOption::new(OptionNumber::ECHO, challenge.to_vec()));
        self.protect_response(&inner, binding, request_outer)
    }

    /// Protect a response bound to `binding` (no PIV: the request's
    /// nonce is reused with our sender key).
    pub fn protect_response(
        &self,
        msg: &CoapMessage,
        binding: &RequestBinding,
        request_outer: &CoapMessage,
    ) -> Result<CoapMessage, OscoreError> {
        let mut ciphertext = encode_inner(msg);
        let aad = build_aad(&binding.kid, &binding.piv);
        let nonce = self.ctx.nonce(&binding.kid, &binding.piv);
        let ccm = AesCcm::cose_ccm_16_64_128(&self.ctx.sender_key);
        ccm.seal_in_place(&nonce, &aad, &mut ciphertext)
            .map_err(|_| OscoreError::Crypto)?;
        let mut outer = CoapMessage {
            mtype: msg.mtype,
            code: Code::CHANGED, // outer 2.04 (RFC 8613 §4.1.3.5)
            message_id: request_outer.message_id,
            token: request_outer.token.clone(),
            options: Vec::new(),
            payload: ciphertext,
        };
        outer.set_option(CoapOption::new(
            OptionNumber::OSCORE,
            OscoreOption::default().encode(),
        ));
        Ok(outer)
    }

    /// Unprotect a response bound to our earlier request.
    pub fn unprotect_response(
        &self,
        outer: &CoapMessage,
        binding: &RequestBinding,
    ) -> Result<CoapMessage, OscoreError> {
        outer
            .option(OptionNumber::OSCORE)
            .ok_or(OscoreError::NotOscore)?;
        let aad = build_aad(&binding.kid, &binding.piv);
        let nonce = self.ctx.nonce(&binding.kid, &binding.piv);
        let ccm = AesCcm::cose_ccm_16_64_128(&self.ctx.recipient_key);
        let plain = ccm
            .open(&nonce, &aad, &outer.payload)
            .map_err(|_| OscoreError::Crypto)?;
        let mut inner = decode_inner(&plain)?;
        inner.mtype = outer.mtype;
        inner.message_id = outer.message_id;
        inner.token = outer.token.clone();
        Ok(inner)
    }

    /// Per-message ciphertext overhead (the COSE tag).
    pub const TAG_OVERHEAD: usize = TAG_LEN;
}

#[cfg(test)]
mod tests {
    use super::*;
    use doc_coap::msg::MsgType;

    fn contexts() -> (OscoreEndpoint, OscoreEndpoint) {
        let secret = b"0123456789abcdef";
        let salt = b"salty";
        let client = SecurityContext::derive(secret, salt, &[], &[0x01]);
        let server = SecurityContext::derive(secret, salt, &[0x01], &[]);
        (
            OscoreEndpoint::new(client, false),
            OscoreEndpoint::new(server, false),
        )
    }

    fn fetch_request() -> CoapMessage {
        CoapMessage::request(Code::FETCH, MsgType::Con, 0x0102, vec![0xAA, 0xBB])
            .with_option(CoapOption::new(OptionNumber::URI_PATH, b"dns".to_vec()))
            .with_option(CoapOption::uint(OptionNumber::CONTENT_FORMAT, 553))
            .with_payload(b"dns query wire format".to_vec())
    }

    #[test]
    fn option_encoding_roundtrip() {
        for opt in [
            OscoreOption::default(),
            OscoreOption {
                piv: vec![0x00],
                kid: Some(vec![]),
            },
            OscoreOption {
                piv: vec![0x14],
                kid: Some(vec![0x01]),
            },
            OscoreOption {
                piv: vec![1, 2, 3, 4, 5],
                kid: Some(b"clientid".to_vec()),
            },
        ] {
            assert_eq!(OscoreOption::decode(&opt.encode()).unwrap(), opt);
        }
    }

    #[test]
    fn option_rejects_reserved_bits() {
        assert!(OscoreOption::decode(&[0x80, 0]).is_err());
        assert!(OscoreOption::decode(&[0x07]).is_err()); // claims 7-byte piv
    }

    #[test]
    fn request_roundtrip() {
        let (mut client, mut server) = contexts();
        let req = fetch_request();
        let (outer, binding_c) = client.protect_request(&req).unwrap();
        // Outer code is POST; inner is hidden.
        assert_eq!(outer.code, Code::POST);
        assert!(outer.option(OptionNumber::OSCORE).is_some());
        assert!(outer.option(OptionNumber::URI_PATH).is_none());
        assert!(outer.option(OptionNumber::CONTENT_FORMAT).is_none());

        let (inner, binding_s) = server.unprotect_request(&outer).unwrap();
        assert_eq!(inner.code, Code::FETCH);
        assert_eq!(inner.payload, req.payload);
        assert_eq!(inner.uri_path(), "/dns");
        assert_eq!(inner.token, req.token);
        assert_eq!(binding_c, binding_s);
    }

    #[test]
    fn response_roundtrip() {
        let (mut client, mut server) = contexts();
        let req = fetch_request();
        let (outer_req, binding) = client.protect_request(&req).unwrap();
        let (inner_req, s_binding) = server.unprotect_request(&outer_req).unwrap();

        let resp = CoapMessage::ack_response(&inner_req, Code::CONTENT)
            .with_option(CoapOption::uint(OptionNumber::MAX_AGE, 300))
            .with_payload(b"dns response".to_vec());
        let outer_resp = server
            .protect_response(&resp, &s_binding, &outer_req)
            .unwrap();
        assert_eq!(outer_resp.code, Code::CHANGED);
        // The OSCORE option of a response is empty.
        assert!(outer_resp
            .option(OptionNumber::OSCORE)
            .unwrap()
            .value
            .is_empty());

        let inner_resp = client.unprotect_response(&outer_resp, &binding).unwrap();
        assert_eq!(inner_resp.code, Code::CONTENT);
        assert_eq!(inner_resp.payload, b"dns response");
        assert_eq!(inner_resp.max_age(), 300);
    }

    #[test]
    fn replay_rejected() {
        let (mut client, mut server) = contexts();
        let (outer, _) = client.protect_request(&fetch_request()).unwrap();
        assert!(server.unprotect_request(&outer).is_ok());
        assert_eq!(server.unprotect_request(&outer), Err(OscoreError::Replay));
    }

    #[test]
    fn response_bound_to_request() {
        let (mut client, mut server) = contexts();
        let (outer1, binding1) = client.protect_request(&fetch_request()).unwrap();
        let (outer2, binding2) = client.protect_request(&fetch_request()).unwrap();
        let (_, s_b1) = server.unprotect_request(&outer1).unwrap();
        let (inner2, _) = server.unprotect_request(&outer2).unwrap();
        let resp =
            CoapMessage::ack_response(&inner2, Code::CONTENT).with_payload(b"answer".to_vec());
        // Response protected under binding 1 must not verify under
        // binding 2 (mismatch attack).
        let outer_resp = server.protect_response(&resp, &s_b1, &outer1).unwrap();
        assert!(client.unprotect_response(&outer_resp, &binding1).is_ok());
        let outer_resp = server.protect_response(&resp, &s_b1, &outer1).unwrap();
        assert_eq!(
            client.unprotect_response(&outer_resp, &binding2),
            Err(OscoreError::Crypto)
        );
    }

    #[test]
    fn tampered_ciphertext_rejected() {
        let (mut client, mut server) = contexts();
        let (mut outer, _) = client.protect_request(&fetch_request()).unwrap();
        let n = outer.payload.len();
        outer.payload[n - 1] ^= 1;
        assert_eq!(server.unprotect_request(&outer), Err(OscoreError::Crypto));
    }

    #[test]
    fn wrong_kid_rejected() {
        let secret = b"0123456789abcdef";
        let mut client = OscoreEndpoint::new(
            SecurityContext::derive(secret, b"s", &[0x42], &[0x01]),
            false,
        );
        let mut server =
            OscoreEndpoint::new(SecurityContext::derive(secret, b"s", &[0x01], &[]), false);
        let (outer, _) = client.protect_request(&fetch_request()).unwrap();
        assert_eq!(server.unprotect_request(&outer), Err(OscoreError::Crypto));
    }

    #[test]
    fn non_oscore_message_rejected() {
        let (_, mut server) = contexts();
        let plain = fetch_request();
        assert_eq!(
            server.unprotect_request(&plain),
            Err(OscoreError::NotOscore)
        );
    }

    /// Reproduces the paper's Fig. 6 OSCORE session-setup flow: first
    /// request → 4.01 Unauthorized w/ Echo → retried request w/ Echo →
    /// success.
    #[test]
    fn echo_replay_window_initialization() {
        let secret = b"0123456789abcdef";
        let mut client =
            OscoreEndpoint::new(SecurityContext::derive(secret, b"s", &[], &[0x01]), false);
        let mut server = OscoreEndpoint::new(
            SecurityContext::derive(secret, b"s", &[0x01], &[]),
            true, // require Echo
        );
        let req = fetch_request();
        let (outer1, binding1) = client.protect_request(&req).unwrap();
        // Server demands an Echo round trip.
        let challenge = match server.unprotect_request(&outer1) {
            Err(OscoreError::EchoRequired(c)) => c,
            other => panic!("expected EchoRequired, got {other:?}"),
        };
        // It can protect the 4.01 for the client using the binding from
        // the outer option (recompute like the server would).
        let opt =
            OscoreOption::decode(&outer1.option(OptionNumber::OSCORE).unwrap().value).unwrap();
        let s_binding = RequestBinding {
            kid: opt.kid.unwrap(),
            piv: opt.piv,
        };
        let challenge_resp = server
            .protect_echo_challenge(&outer1, &s_binding, &challenge)
            .unwrap();
        let inner_resp = client
            .unprotect_response(&challenge_resp, &binding1)
            .unwrap();
        assert_eq!(inner_resp.code, Code::UNAUTHORIZED);
        let echo = inner_resp.option(OptionNumber::ECHO).unwrap().value.clone();

        // Client retries with the Echo option.
        let mut retry = fetch_request();
        retry.set_option(CoapOption::new(OptionNumber::ECHO, echo));
        let (outer2, _) = client.protect_request(&retry).unwrap();
        let (inner2, _) = server.unprotect_request(&outer2).unwrap();
        assert_eq!(inner2.code, Code::FETCH);
        // Subsequent requests need no Echo.
        let (outer3, _) = client.protect_request(&fetch_request()).unwrap();
        assert!(server.unprotect_request(&outer3).is_ok());
    }

    #[test]
    fn wrong_echo_rechallenged() {
        let secret = b"0123456789abcdef";
        let mut client =
            OscoreEndpoint::new(SecurityContext::derive(secret, b"s", &[], &[0x01]), false);
        let mut server =
            OscoreEndpoint::new(SecurityContext::derive(secret, b"s", &[0x01], &[]), true);
        let mut req = fetch_request();
        req.set_option(CoapOption::new(OptionNumber::ECHO, vec![1, 2, 3]));
        let (outer, _) = client.protect_request(&req).unwrap();
        assert!(matches!(
            server.unprotect_request(&outer),
            Err(OscoreError::EchoRequired(_))
        ));
    }

    /// OSCORE adds a fixed, small overhead: option + tag — the reason
    /// its Fig. 6 bars sit well below DTLS.
    #[test]
    fn overhead_is_small() {
        let (mut client, _) = contexts();
        let req = fetch_request();
        let plain_len = req.encoded_len();
        let (outer, _) = client.protect_request(&req).unwrap();
        let protected_len = outer.encoded_len();
        let overhead = protected_len - plain_len;
        // tag (8) + OSCORE option (~4) + inner code byte, minus elided
        // inner option bytes — must stay under 16 bytes.
        assert!(overhead <= 16, "OSCORE overhead {overhead} bytes");
    }

    #[test]
    fn inner_codec_roundtrip() {
        let msg = fetch_request();
        let inner = encode_inner(&msg);
        let back = decode_inner(&inner).unwrap();
        assert_eq!(back.code, msg.code);
        assert_eq!(back.payload, msg.payload);
        assert_eq!(back.uri_path(), "/dns");
    }

    #[test]
    fn decode_inner_rejects_empty() {
        assert_eq!(decode_inner(&[]), Err(OscoreError::Malformed));
    }
}
