//! Proof that the checker *detects*: a ring with a deliberately broken
//! publish order (tail bumped before the slot is written — the classic
//! SPMC bug) must be (a) found, (b) reported with the minimal number
//! of preemptions, (c) reported with a self-contained schedule and
//! replay line, and (d) reproduced identically under replay. A model
//! checker whose failure path is untested is just a slow test runner.
//!
//! This mirrors `tests/injected_divergence.rs`, which pins the same
//! contract for the differential fuzzing gate.

use doc_check::sync::atomic::{AtomicU64, Ordering};
use doc_check::sync::{Arc, Mutex};
use doc_check::{explore, replay, thread, Config, FailureKind};

const SLOTS: usize = 2;

/// A toy SPMC-style ring: `tail` publishes, `head` consumes, slots
/// hold the items. The invariant under test: a slot made visible by
/// `tail` must already contain its item.
struct Ring {
    slots: [Mutex<Option<u64>>; SLOTS],
    head: AtomicU64,
    tail: AtomicU64,
}

impl Ring {
    fn new() -> Self {
        Ring {
            slots: [Mutex::new(None), Mutex::new(None)],
            head: AtomicU64::new(0),
            tail: AtomicU64::new(0),
        }
    }

    /// `broken` swaps the write/publish order: the tail bump lands
    /// before the slot write, so a consumer scheduled between the two
    /// observes a visible-but-empty slot.
    fn push(&self, value: u64, broken: bool) {
        let t = self.tail.load(Ordering::SeqCst);
        if broken {
            self.tail.store(t + 1, Ordering::SeqCst);
            *self.slots[t as usize % SLOTS].lock().unwrap() = Some(value);
        } else {
            *self.slots[t as usize % SLOTS].lock().unwrap() = Some(value);
            self.tail.store(t + 1, Ordering::SeqCst);
        }
    }

    /// Non-blocking pop; asserts the publish invariant.
    fn try_pop(&self) -> Option<u64> {
        let h = self.head.load(Ordering::SeqCst);
        let t = self.tail.load(Ordering::SeqCst);
        if t == h {
            return None;
        }
        let item = self.slots[h as usize % SLOTS].lock().unwrap().take();
        self.head.store(h + 1, Ordering::SeqCst);
        assert!(
            item.is_some(),
            "tail published slot {h} before its item was written"
        );
        item
    }
}

/// One producer (the body thread), one consumer (spawned) making a
/// bounded number of pop attempts — bounded so every schedule
/// terminates and the state space stays tiny. With the producer as the
/// body thread, a *single* preemption — away from it, between the tail
/// bump and the slot write — hands the consumer the broken window.
fn ring_body(broken: bool) {
    let ring = Arc::new(Ring::new());
    let consumer = {
        let ring = Arc::clone(&ring);
        thread::spawn(move || {
            let mut got = None;
            for _ in 0..2 {
                if let Some(v) = ring.try_pop() {
                    got = Some(v);
                }
            }
            got
        })
    };
    ring.push(7, broken);
    let got = consumer.join();
    // Exactly-once: the item is either consumed or still in the ring,
    // never lost.
    let leftover = ring.try_pop();
    assert!(got == Some(7) || leftover == Some(7), "item lost");
}

#[test]
fn correct_ring_passes_exhaustive_exploration() {
    let report = explore(&Config::default(), || ring_body(false))
        .expect("the correct publish order has no failing interleaving");
    assert!(report.completed, "search must not be truncated");
    assert!(
        report.schedules > 10,
        "only {} schedules explored — the search is not actually branching",
        report.schedules
    );
}

#[test]
fn injected_race_is_found_minimally_and_reported() {
    // (a) found…
    let failure = explore(&Config::default(), || ring_body(true))
        .expect_err("the broken publish order must be caught");
    assert_eq!(failure.kind, FailureKind::Panic);
    assert!(
        failure.message.contains("published slot 0"),
        "unexpected cause: {}",
        failure.message
    );

    // (b) …with the minimal number of preemptions: one, between the
    // producer's tail bump and its slot write. Run-to-completion
    // schedules (bound 0) cannot interleave the two.
    assert_eq!(failure.preemptions, 1, "schedule: {}", failure.schedule);
    let bound0 = Config {
        preemption_bound: 0,
        ..Config::default()
    };
    assert!(
        explore(&bound0, || ring_body(true)).is_ok(),
        "the bug needs a preemption; bound 0 must come up clean"
    );

    // (c) The report is self-contained: cause, minimal schedule, and a
    // copy-pasteable replay line.
    let report = failure.to_string();
    for needle in [
        "failing interleaving found (panic)",
        "published slot 0",
        "minimal failing schedule (1 preemptions)",
        &format!("--schedule {}", failure.schedule),
    ] {
        assert!(
            report.contains(needle),
            "report missing {needle:?}:\n{report}"
        );
    }
}

#[test]
fn injected_race_replays_identically() {
    let first = explore(&Config::default(), || ring_body(true)).expect_err("caught");
    let second = explore(&Config::default(), || ring_body(true)).expect_err("caught again");
    // (d) Exploration is deterministic…
    assert_eq!(first.schedule, second.schedule);
    assert_eq!(first.schedules_explored, second.schedules_explored);
    assert_eq!(first.message, second.message);

    // …and the recorded schedule alone reproduces the failure.
    let replayed = replay(&Config::default(), &first.schedule, || ring_body(true))
        .expect_err("replay must hit the same failure");
    assert_eq!(replayed.message, first.message);
    assert_eq!(replayed.schedule, first.schedule);

    // The same schedule against the *fixed* ring runs clean (the
    // schedule exposes the bug, it does not manufacture one) — it may
    // diverge once histories differ, but it must not fail.
    let fixed = replay(&Config::default(), &first.schedule, || ring_body(false));
    if let Err(f) = fixed {
        assert_eq!(
            f.kind,
            FailureKind::ScheduleDiverged,
            "fixed ring must not reproduce the race: {f}"
        );
    }
}
