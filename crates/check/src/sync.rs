//! Drop-in `std::sync` replacements that double as model-checker
//! probes.
//!
//! Outside a model execution ([`crate::sched::current`] is `None`)
//! every type here is a thin passthrough to its `std` counterpart —
//! one thread-local lookup per operation, no behavioural change — so
//! production code uses these types unconditionally and the checker
//! exercises the *real* primitives, not parallel copies.
//!
//! Inside a model execution every operation becomes a scheduling
//! point: acquiring a mutex, releasing it, waiting on or signalling a
//! condvar, and every atomic access hand the scheduler a decision.
//! Atomics are forced to `SeqCst` under the model (sequential
//! consistency is the memory model explored; see the crate docs).

use crate::sched::{self, BlockReason, Execution};
use std::sync::{
    Arc as StdArc, Condvar as StdCondvar, LockResult, Mutex as StdMutex,
    MutexGuard as StdMutexGuard, PoisonError, TryLockError,
};

pub use std::sync::Arc;

/// A mutual-exclusion lock with the `std::sync::Mutex` API.
pub struct Mutex<T> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new unlocked mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Acquire the lock, blocking the calling (model or OS) thread.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match sched::current() {
            None => match self.inner.lock() {
                Ok(g) => Ok(self.guard(g, None)),
                Err(p) => Err(PoisonError::new(self.guard(p.into_inner(), None))),
            },
            Some((exec, me)) => self.lock_model(exec, me),
        }
    }

    /// Model-path acquisition: one scheduling decision, then try-lock;
    /// contention parks the thread until the holder's guard drops.
    /// Being rescheduled after a wake is itself a decision, so the
    /// retry loop adds no extra yield.
    fn lock_model(&self, exec: StdArc<Execution>, me: usize) -> LockResult<MutexGuard<'_, T>> {
        let id = sched::sync_id(self);
        exec.yield_point(me);
        loop {
            match self.inner.try_lock() {
                Ok(g) => return Ok(self.guard(g, Some((exec, me)))),
                Err(TryLockError::WouldBlock) => exec.block(me, BlockReason::Mutex(id)),
                Err(TryLockError::Poisoned(p)) => {
                    return Err(PoisonError::new(
                        self.guard(p.into_inner(), Some((exec, me))),
                    ))
                }
            }
        }
    }

    fn guard<'a>(
        &'a self,
        std: StdMutexGuard<'a, T>,
        model: Option<(StdArc<Execution>, usize)>,
    ) -> MutexGuard<'a, T> {
        MutexGuard {
            std: Some(std),
            mutex: self,
            model,
        }
    }
}

impl<T: core::fmt::Debug> core::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        self.inner.fmt(f)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

/// RAII guard for [`Mutex`]; releasing it under the model wakes
/// contending threads and yields.
pub struct MutexGuard<'a, T> {
    std: Option<StdMutexGuard<'a, T>>,
    mutex: &'a Mutex<T>,
    model: Option<(StdArc<Execution>, usize)>,
}

impl<T> core::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.std.as_deref().expect("guard holds the lock")
    }
}

impl<T> core::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.std.as_deref_mut().expect("guard holds the lock")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        drop(self.std.take());
        if let Some((exec, me)) = self.model.take() {
            exec.wake(BlockReason::Mutex(sched::sync_id(self.mutex)));
            // Unlocking is a scheduling point — but not while this
            // thread is unwinding (yielding would block inside a
            // destructor mid-panic) or the execution is tearing down.
            if !std::thread::panicking() && !exec.is_aborted() {
                exec.yield_point(me);
            }
        }
    }
}

/// A condition variable with the `std::sync::Condvar` API.
///
/// Under the model, `notify_one` wakes *every* waiter (std permits
/// spurious wakeups, so callers already loop on their predicate);
/// modelling the weakest allowed behaviour keeps the state space
/// honest without tracking wake-set subsets.
pub struct Condvar {
    inner: StdCondvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: StdCondvar::new(),
        }
    }

    /// Atomically release the guard's mutex and wait for a
    /// notification, then reacquire.
    pub fn wait<'a, T>(&self, mut guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        match guard.model.take() {
            None => {
                let std = guard.std.take().expect("guard holds the lock");
                let mutex = guard.mutex;
                drop(guard);
                match self.inner.wait(std) {
                    Ok(g) => Ok(mutex.guard(g, None)),
                    Err(p) => Err(PoisonError::new(mutex.guard(p.into_inner(), None))),
                }
            }
            Some((exec, me)) => {
                let mutex = guard.mutex;
                // Release the lock and park on the condvar. No other
                // thread runs between the two (blocking *is* the next
                // decision point), so the unlock+wait pair is atomic
                // exactly as the condvar contract requires.
                drop(guard.std.take());
                drop(guard);
                exec.wake(BlockReason::Mutex(sched::sync_id(mutex)));
                exec.block(me, BlockReason::Cond(sched::sync_id(self)));
                mutex.lock_model(exec, me)
            }
        }
    }

    /// Wake one waiter (all of them, under the model — see type docs).
    pub fn notify_one(&self) {
        self.notify();
    }

    /// Wake every waiter.
    pub fn notify_all(&self) {
        self.notify();
    }

    fn notify(&self) {
        match sched::current() {
            None => self.inner.notify_all(),
            Some((exec, me)) => {
                exec.wake(BlockReason::Cond(sched::sync_id(self)));
                exec.yield_point(me);
            }
        }
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

/// Atomic integers/bool with the `std::sync::atomic` API. Under the
/// model every operation takes a scheduling decision first and then
/// executes `SeqCst` regardless of the requested ordering.
pub mod atomic {
    use crate::sched;
    pub use std::sync::atomic::Ordering;

    macro_rules! model_atomic_int {
        ($(#[$meta:meta])* $name:ident, $std:ident, $ty:ty) => {
            $(#[$meta])*
            pub struct $name {
                inner: std::sync::atomic::$std,
            }

            impl $name {
                /// Create a new atomic.
                pub const fn new(value: $ty) -> Self {
                    $name {
                        inner: std::sync::atomic::$std::new(value),
                    }
                }

                /// Load the value.
                pub fn load(&self, order: Ordering) -> $ty {
                    match sched::current() {
                        None => self.inner.load(order),
                        Some((exec, me)) => {
                            exec.yield_point(me);
                            self.inner.load(Ordering::SeqCst)
                        }
                    }
                }

                /// Store a value.
                pub fn store(&self, value: $ty, order: Ordering) {
                    match sched::current() {
                        None => self.inner.store(value, order),
                        Some((exec, me)) => {
                            exec.yield_point(me);
                            self.inner.store(value, Ordering::SeqCst)
                        }
                    }
                }

                /// Add, returning the previous value.
                pub fn fetch_add(&self, value: $ty, order: Ordering) -> $ty {
                    match sched::current() {
                        None => self.inner.fetch_add(value, order),
                        Some((exec, me)) => {
                            exec.yield_point(me);
                            self.inner.fetch_add(value, Ordering::SeqCst)
                        }
                    }
                }

                /// Subtract, returning the previous value.
                pub fn fetch_sub(&self, value: $ty, order: Ordering) -> $ty {
                    match sched::current() {
                        None => self.inner.fetch_sub(value, order),
                        Some((exec, me)) => {
                            exec.yield_point(me);
                            self.inner.fetch_sub(value, Ordering::SeqCst)
                        }
                    }
                }

                /// Swap, returning the previous value.
                pub fn swap(&self, value: $ty, order: Ordering) -> $ty {
                    match sched::current() {
                        None => self.inner.swap(value, order),
                        Some((exec, me)) => {
                            exec.yield_point(me);
                            self.inner.swap(value, Ordering::SeqCst)
                        }
                    }
                }

                /// Compare-and-exchange.
                pub fn compare_exchange(
                    &self,
                    current: $ty,
                    new: $ty,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$ty, $ty> {
                    match sched::current() {
                        None => self.inner.compare_exchange(current, new, success, failure),
                        Some((exec, me)) => {
                            exec.yield_point(me);
                            self.inner.compare_exchange(
                                current,
                                new,
                                Ordering::SeqCst,
                                Ordering::SeqCst,
                            )
                        }
                    }
                }

                /// Consume the atomic, returning the value (no
                /// scheduling point: requires exclusive ownership).
                pub fn into_inner(self) -> $ty {
                    self.inner.into_inner()
                }
            }

            impl Default for $name {
                fn default() -> Self {
                    Self::new(0)
                }
            }

            impl core::fmt::Debug for $name {
                fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
                    self.inner.fmt(f)
                }
            }
        };
    }

    model_atomic_int!(
        /// `std::sync::atomic::AtomicU32` with model scheduling points.
        AtomicU32,
        AtomicU32,
        u32
    );
    model_atomic_int!(
        /// `std::sync::atomic::AtomicU64` with model scheduling points.
        AtomicU64,
        AtomicU64,
        u64
    );
    model_atomic_int!(
        /// `std::sync::atomic::AtomicUsize` with model scheduling points.
        AtomicUsize,
        AtomicUsize,
        usize
    );

    /// `std::sync::atomic::AtomicBool` with model scheduling points.
    pub struct AtomicBool {
        inner: std::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        /// Create a new atomic flag.
        pub const fn new(value: bool) -> Self {
            AtomicBool {
                inner: std::sync::atomic::AtomicBool::new(value),
            }
        }

        /// Load the flag.
        pub fn load(&self, order: Ordering) -> bool {
            match sched::current() {
                None => self.inner.load(order),
                Some((exec, me)) => {
                    exec.yield_point(me);
                    self.inner.load(Ordering::SeqCst)
                }
            }
        }

        /// Store the flag.
        pub fn store(&self, value: bool, order: Ordering) {
            match sched::current() {
                None => self.inner.store(value, order),
                Some((exec, me)) => {
                    exec.yield_point(me);
                    self.inner.store(value, Ordering::SeqCst)
                }
            }
        }

        /// Swap, returning the previous value.
        pub fn swap(&self, value: bool, order: Ordering) -> bool {
            match sched::current() {
                None => self.inner.swap(value, order),
                Some((exec, me)) => {
                    exec.yield_point(me);
                    self.inner.swap(value, Ordering::SeqCst)
                }
            }
        }
    }

    impl Default for AtomicBool {
        fn default() -> Self {
            Self::new(false)
        }
    }

    impl core::fmt::Debug for AtomicBool {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            self.inner.fmt(f)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::atomic::{AtomicU64, Ordering};
    use super::*;

    #[test]
    fn passthrough_mutex_behaves_like_std() {
        let m = Mutex::new(7u32);
        {
            let mut g = m.lock().unwrap();
            *g += 1;
        }
        assert_eq!(*m.lock().unwrap(), 8);
    }

    #[test]
    fn passthrough_condvar_wakes_a_real_thread() {
        let pair = StdArc::new((Mutex::new(false), Condvar::new()));
        let p2 = StdArc::clone(&pair);
        let waiter = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut ready = m.lock().unwrap();
            while !*ready {
                ready = cv.wait(ready).unwrap();
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock().unwrap() = true;
            cv.notify_one();
        }
        waiter.join().unwrap();
    }

    #[test]
    fn passthrough_atomics_preserve_values() {
        let a = AtomicU64::new(5);
        assert_eq!(a.fetch_add(3, Ordering::Relaxed), 5);
        assert_eq!(a.load(Ordering::Acquire), 8);
        a.store(1, Ordering::Release);
        assert_eq!(a.swap(2, Ordering::AcqRel), 1);
        assert_eq!(
            a.compare_exchange(2, 9, Ordering::SeqCst, Ordering::Relaxed),
            Ok(2)
        );
        assert_eq!(a.into_inner(), 9);
    }
}
