//! The cooperative scheduler: one model execution = one schedule.
//!
//! Model threads are real OS threads, but at most one is ever
//! *running*: every synchronization operation funnels through
//! [`Execution::yield_point`] or a blocking variant, where the running
//! thread hands the baton to whichever runnable thread the decision
//! prefix (or the default run-to-completion policy) selects. The
//! decisions taken — together with the runnable set each was chosen
//! from — are recorded, which is what lets [`crate::explore`] enumerate
//! alternative schedules and lets a failure be replayed exactly.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex};

/// A recorded schedule: the thread id chosen at every decision point.
///
/// Rendered as a dash-separated list (`0-1-1-0-2`) so it survives
/// copy-paste through shells unquoted.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schedule(pub Vec<usize>);

impl core::fmt::Display for Schedule {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        for (i, t) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "-")?;
            }
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

impl core::str::FromStr for Schedule {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        if s.trim().is_empty() {
            return Ok(Schedule(Vec::new()));
        }
        s.split(['-', ','])
            .map(|part| {
                part.trim()
                    .parse::<usize>()
                    .map_err(|_| format!("bad schedule element {part:?}"))
            })
            .collect::<Result<Vec<_>, _>>()
            .map(Schedule)
    }
}

/// Why a model thread is not currently runnable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BlockReason {
    /// Waiting to acquire the mutex with this identity.
    Mutex(usize),
    /// Waiting on the condvar with this identity.
    Cond(usize),
    /// Waiting for the thread with this id to finish.
    Join(usize),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Runnable,
    Blocked(BlockReason),
    Finished,
}

/// One scheduling decision: who ran, who was chosen, out of whom.
#[derive(Debug, Clone)]
pub(crate) struct Decision {
    /// The thread that was running when the decision was taken.
    pub prev: usize,
    /// The thread chosen to run next.
    pub chosen: usize,
    /// The runnable set the choice was made from (ascending ids).
    pub runnable: Vec<usize>,
}

/// A failure observed during one execution.
#[derive(Debug, Clone)]
pub(crate) struct Failure {
    pub kind: crate::explore::FailureKind,
    pub message: String,
    pub schedule: Schedule,
}

struct ExecState {
    status: Vec<Status>,
    current: usize,
    decisions: Vec<Decision>,
    preset: Vec<usize>,
    steps: u64,
    live: usize,
    aborted: bool,
    done: bool,
    failure: Option<Failure>,
}

impl ExecState {
    fn runnable(&self) -> Vec<usize> {
        self.status
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s, Status::Runnable))
            .map(|(i, _)| i)
            .collect()
    }

    fn schedule_so_far(&self) -> Schedule {
        Schedule(self.decisions.iter().map(|d| d.chosen).collect())
    }

    fn fail(&mut self, kind: crate::explore::FailureKind, message: String) {
        if self.failure.is_none() {
            self.failure = Some(Failure {
                kind,
                message,
                schedule: self.schedule_so_far(),
            });
        }
        self.aborted = true;
        self.done = true;
    }
}

/// One model execution: shared between the driver and every model
/// thread it spawns.
pub(crate) struct Execution {
    state: StdMutex<ExecState>,
    cv: StdCondvar,
    max_steps: u64,
    children: StdMutex<Vec<std::thread::JoinHandle<()>>>,
}

/// Unwind payload used to tear model threads down after an abort.
/// Filtered out of panic-hook output and of failure reporting.
pub(crate) struct AbortToken;

fn abort_unwind() -> ! {
    std::panic::panic_any(AbortToken)
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<(Arc<Execution>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// The execution the calling OS thread belongs to, if any. `None`
/// outside model executions — the passthrough case for the `sync`
/// shims.
pub(crate) fn current() -> Option<(Arc<Execution>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Install (once) a panic hook that silences model-thread panics: the
/// abort token is pure teardown, and assertion failures inside a model
/// body are reported through [`crate::CheckFailure`] instead of a raw
/// backtrace per explored schedule.
fn install_quiet_hook() {
    static ONCE: std::sync::Once = std::sync::Once::new();
    ONCE.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let in_model = CURRENT.with(|c| c.borrow().is_some());
            if in_model || info.payload().downcast_ref::<AbortToken>().is_some() {
                return;
            }
            previous(info);
        }));
    });
}

fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl Execution {
    fn new(max_steps: u64, preset: Vec<usize>) -> Self {
        Execution {
            state: StdMutex::new(ExecState {
                status: vec![Status::Runnable],
                current: 0,
                decisions: Vec::new(),
                preset,
                steps: 0,
                live: 1,
                aborted: false,
                done: false,
                failure: None,
            }),
            cv: StdCondvar::new(),
            max_steps,
            children: StdMutex::new(Vec::new()),
        }
    }

    /// Register a new model thread (spawn order = thread id).
    pub(crate) fn register_thread(&self) -> usize {
        let mut st = self.state.lock().unwrap();
        st.status.push(Status::Runnable);
        st.live += 1;
        st.status.len() - 1
    }

    pub(crate) fn push_child(&self, handle: std::thread::JoinHandle<()>) {
        self.children.lock().unwrap().push(handle);
    }

    /// The heart: `me` (the running thread) takes on `new_status` and a
    /// scheduling decision picks the next thread. Blocks until `me` is
    /// scheduled again (unless it is finishing). Unwinds with
    /// [`AbortToken`] if the execution aborted.
    fn switch(&self, me: usize, new_status: Status) {
        let finishing = matches!(new_status, Status::Finished);
        let mut st = self.state.lock().unwrap();
        if st.aborted {
            if finishing {
                st.status[me] = Status::Finished;
                st.live -= 1;
                self.cv.notify_all();
                return;
            }
            drop(st);
            abort_unwind();
        }
        st.status[me] = new_status;
        if finishing {
            st.live -= 1;
            // Wake joiners.
            for s in st.status.iter_mut() {
                if *s == Status::Blocked(BlockReason::Join(me)) {
                    *s = Status::Runnable;
                }
            }
        }
        st.steps += 1;
        if st.steps > self.max_steps {
            st.fail(
                crate::explore::FailureKind::StepBudget,
                format!("step budget of {} exceeded (live-lock?)", self.max_steps),
            );
            self.cv.notify_all();
            if finishing {
                return;
            }
            drop(st);
            abort_unwind();
        }
        let runnable = st.runnable();
        if runnable.is_empty() {
            if st.live == 0 {
                st.done = true;
                self.cv.notify_all();
                return;
            }
            let blocked: Vec<String> = st
                .status
                .iter()
                .enumerate()
                .filter_map(|(i, s)| match s {
                    Status::Blocked(r) => Some(format!("thread {i} blocked on {r:?}")),
                    _ => None,
                })
                .collect();
            st.fail(
                crate::explore::FailureKind::Deadlock,
                format!("deadlock: no runnable thread ({})", blocked.join(", ")),
            );
            self.cv.notify_all();
            if finishing {
                return;
            }
            drop(st);
            abort_unwind();
        }
        let idx = st.decisions.len();
        let chosen = if idx < st.preset.len() {
            let want = st.preset[idx];
            if runnable.contains(&want) {
                want
            } else {
                st.fail(
                    crate::explore::FailureKind::ScheduleDiverged,
                    format!(
                        "schedule diverged at step {idx}: thread {want} not runnable \
                         (runnable: {runnable:?}) — the model body is not deterministic"
                    ),
                );
                self.cv.notify_all();
                if finishing {
                    return;
                }
                drop(st);
                abort_unwind();
            }
        } else if runnable.contains(&me) {
            // Run-to-completion default: keep the current thread going.
            me
        } else {
            runnable[0]
        };
        st.decisions.push(Decision {
            prev: me,
            chosen,
            runnable,
        });
        st.current = chosen;
        self.cv.notify_all();
        if finishing {
            return;
        }
        while st.current != me {
            if st.aborted {
                drop(st);
                abort_unwind();
            }
            st = self.cv.wait(st).unwrap();
        }
        if st.aborted {
            drop(st);
            abort_unwind();
        }
    }

    /// A pure scheduling point: `me` stays runnable.
    pub(crate) fn yield_point(&self, me: usize) {
        self.switch(me, Status::Runnable);
    }

    /// Block `me` until woken (by the matching wake call), then return
    /// once scheduled again.
    pub(crate) fn block(&self, me: usize, reason: BlockReason) {
        self.switch(me, Status::Blocked(reason));
    }

    /// Make every thread blocked for `reason` runnable again. The
    /// caller is the running thread; this is not itself a yield point.
    pub(crate) fn wake(&self, reason: BlockReason) {
        let mut st = self.state.lock().unwrap();
        if st.aborted {
            return;
        }
        for s in st.status.iter_mut() {
            if *s == Status::Blocked(reason) {
                *s = Status::Runnable;
            }
        }
    }

    /// Whether the execution has aborted (teardown in progress).
    pub(crate) fn is_aborted(&self) -> bool {
        self.state.lock().unwrap().aborted
    }

    /// Whether `tid` has finished.
    pub(crate) fn is_finished(&self, tid: usize) -> bool {
        matches!(self.state.lock().unwrap().status[tid], Status::Finished)
    }

    /// Wait until this thread is scheduled for the first time. Returns
    /// `false` (skip the body) if the execution aborted first.
    fn wait_first_schedule(&self, me: usize) -> bool {
        let mut st = self.state.lock().unwrap();
        while st.current != me && !st.aborted {
            st = self.cv.wait(st).unwrap();
        }
        !st.aborted
    }

    fn finish_quiet(&self, me: usize) {
        let mut st = self.state.lock().unwrap();
        st.status[me] = Status::Finished;
        st.live -= 1;
        for s in st.status.iter_mut() {
            if *s == Status::Blocked(BlockReason::Join(me)) {
                *s = Status::Runnable;
            }
        }
        if st.live == 0 {
            st.done = true;
        }
        self.cv.notify_all();
    }

    fn fail_from_panic(&self, me: usize, payload: Box<dyn std::any::Any + Send>) {
        let mut st = self.state.lock().unwrap();
        let message = payload_message(payload.as_ref());
        st.fail(crate::explore::FailureKind::Panic, message);
        st.status[me] = Status::Finished;
        st.live -= 1;
        self.cv.notify_all();
    }

    fn wait_done(&self) {
        let mut st = self.state.lock().unwrap();
        while !st.done && st.live > 0 {
            st = self.cv.wait(st).unwrap();
        }
        // Mark done so stragglers' wake-ups are no-ops, then release
        // any thread still parked in a wait loop.
        st.done = true;
        if st.live > 0 {
            st.aborted = true;
        }
        self.cv.notify_all();
    }
}

/// What one execution produced.
pub(crate) struct ExecResult {
    pub decisions: Vec<Decision>,
    pub failure: Option<Failure>,
}

fn thread_main<F: FnOnce()>(exec: Arc<Execution>, me: usize, f: F) {
    CURRENT.with(|c| *c.borrow_mut() = Some((Arc::clone(&exec), me)));
    if exec.wait_first_schedule(me) {
        match catch_unwind(AssertUnwindSafe(f)) {
            Ok(()) => {
                // Finishing never unwinds (the abort path returns), so
                // the switch below is safe outside catch_unwind.
                exec.switch(me, Status::Finished);
            }
            Err(payload) if payload.is::<AbortToken>() => exec.finish_quiet(me),
            Err(payload) => exec.fail_from_panic(me, payload),
        }
    } else {
        exec.finish_quiet(me);
    }
    CURRENT.with(|c| *c.borrow_mut() = None);
}

/// Spawn a model thread from inside an execution. Exposed via
/// [`crate::thread::spawn`].
pub(crate) fn spawn_model<F, T>(f: F) -> crate::thread::JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let (exec, me) = current().expect("doc_check::thread::spawn outside explore/replay");
    let slot = Arc::new(StdMutex::new(None));
    let slot2 = Arc::clone(&slot);
    let tid = exec.register_thread();
    let exec2 = Arc::clone(&exec);
    let os = std::thread::Builder::new()
        .name(format!("doc-check-{tid}"))
        .spawn(move || {
            let exec3 = Arc::clone(&exec2);
            thread_main(exec2, tid, move || {
                let value = f();
                *slot2.lock().unwrap() = Some(value);
                drop(exec3);
            });
        })
        .expect("spawn model thread");
    exec.push_child(os);
    // Spawning is itself a scheduling point: the child may run first.
    exec.yield_point(me);
    crate::thread::JoinHandle::new(exec, tid, slot)
}

/// Run one execution of `body` under the decision prefix `preset`.
pub(crate) fn run_one(max_steps: u64, preset: &[usize], body: &(dyn Fn() + Sync)) -> ExecResult {
    install_quiet_hook();
    let exec = Arc::new(Execution::new(max_steps, preset.to_vec()));
    std::thread::scope(|scope| {
        let exec0 = Arc::clone(&exec);
        scope.spawn(move || thread_main(exec0, 0, body));
        exec.wait_done();
        let children = std::mem::take(&mut *exec.children.lock().unwrap());
        for child in children {
            let _ = child.join();
        }
    });
    let st = exec.state.lock().unwrap();
    ExecResult {
        decisions: st.decisions.clone(),
        failure: st.failure.clone(),
    }
}

/// Stable identity for a mutex/condvar: its address. Model executions
/// create primitives fresh inside the body, so addresses are stable
/// *within* one execution, which is the only scope the scheduler needs
/// them in; a map keyed by them never outlives the execution.
pub(crate) fn sync_id<T: ?Sized>(v: &T) -> usize {
    v as *const T as *const u8 as usize
}

/// Per-execution scratch map (used by tests and diagnostics).
#[allow(dead_code)]
pub(crate) type IdMap = HashMap<usize, usize>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_roundtrips_through_display() {
        let s = Schedule(vec![0, 1, 1, 0, 2]);
        assert_eq!(s.to_string(), "0-1-1-0-2");
        assert_eq!(s.to_string().parse::<Schedule>().unwrap(), s);
        assert_eq!(
            "0,1,2".parse::<Schedule>().unwrap(),
            Schedule(vec![0, 1, 2])
        );
        assert_eq!("".parse::<Schedule>().unwrap(), Schedule(Vec::new()));
        assert!("0-x".parse::<Schedule>().is_err());
    }

    #[test]
    fn single_thread_body_runs_to_completion() {
        let result = run_one(1_000, &[], &|| {
            crate::thread::yield_now();
            crate::thread::yield_now();
        });
        assert!(result.failure.is_none());
        // Two yields = two decisions, both keeping thread 0 running;
        // the final return needs no decision (nothing left to run).
        assert_eq!(result.decisions.len(), 2);
        assert!(result.decisions.iter().all(|d| d.chosen == 0));
    }

    #[test]
    fn panic_in_body_is_captured_with_schedule() {
        let result = run_one(1_000, &[], &|| {
            crate::thread::yield_now();
            panic!("model assertion failed");
        });
        let failure = result.failure.expect("panic must be captured");
        assert_eq!(failure.message, "model assertion failed");
        assert_eq!(failure.kind, crate::explore::FailureKind::Panic);
        assert_eq!(failure.schedule, Schedule(vec![0]));
    }

    #[test]
    fn spawned_thread_runs_and_joins() {
        let result = run_one(10_000, &[], &|| {
            let h = crate::thread::spawn(|| 41 + 1);
            assert_eq!(h.join(), 42);
        });
        assert!(result.failure.is_none(), "{:?}", result.failure);
    }

    #[test]
    fn step_budget_catches_livelock() {
        let result = run_one(50, &[], &|| loop {
            crate::thread::yield_now();
        });
        let failure = result.failure.expect("budget must trip");
        assert_eq!(failure.kind, crate::explore::FailureKind::StepBudget);
    }
}
