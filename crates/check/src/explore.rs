//! Schedule exploration: run a model body under every bounded
//! interleaving and report the first failure with a replayable
//! schedule.
//!
//! The search is stateless model checking in the CHESS style: execute
//! the body once under a *decision prefix* (forced choices for the
//! first N scheduling decisions, run-to-completion afterwards), then
//! branch — for every decision past the prefix, every runnable thread
//! that was not chosen becomes a new prefix to try. Prefixes are
//! bucketed by how many **preemptions** they contain (a preemption is
//! choosing away from a thread that could have kept running) and
//! buckets are drained in nondecreasing order, so the first failure
//! found carries the minimal number of preemptions — the closest thing
//! to a human-readable root cause a schedule can offer. Branching only
//! at positions past the generating prefix makes every executed
//! schedule distinct: no interleaving is explored twice.

use crate::sched::{self, Decision, Schedule};

/// How an execution failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailureKind {
    /// A model thread panicked (assertion failure in the body).
    Panic,
    /// No thread was runnable but some were still live.
    Deadlock,
    /// The execution exceeded [`Config::max_steps`] (live-lock).
    StepBudget,
    /// A replayed schedule named a thread that was not runnable — the
    /// model body is not deterministic.
    ScheduleDiverged,
}

impl core::fmt::Display for FailureKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            FailureKind::Panic => "panic",
            FailureKind::Deadlock => "deadlock",
            FailureKind::StepBudget => "step budget exceeded",
            FailureKind::ScheduleDiverged => "schedule diverged",
        })
    }
}

/// Exploration limits.
#[derive(Debug, Clone)]
pub struct Config {
    /// Cap on executed schedules; hitting it yields an incomplete
    /// [`Report`], never a false "verified".
    pub max_schedules: usize,
    /// Per-execution scheduling-decision budget (live-lock tripwire).
    pub max_steps: u64,
    /// Maximum preemptions per schedule (CHESS bound). Most real
    /// ordering bugs need 1–2.
    pub preemption_bound: usize,
    /// Command prefix printed in the failure report's replay line,
    /// e.g. `cargo run --bin check_gate -- --model ring-spmc`.
    pub replay_hint: Option<String>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            max_schedules: 20_000,
            max_steps: 5_000,
            preemption_bound: 2,
            replay_hint: None,
        }
    }
}

/// A completed exploration (no failure found).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// Schedules executed.
    pub schedules: usize,
    /// `false` if [`Config::max_schedules`] cut the search short.
    pub completed: bool,
}

/// A failing interleaving, with everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct CheckFailure {
    /// How the execution failed.
    pub kind: FailureKind,
    /// The panic message / deadlock description.
    pub message: String,
    /// The full decision sequence of the failing execution.
    pub schedule: Schedule,
    /// Preemptions in the failing schedule (minimal over all failing
    /// schedules when produced by [`explore`]).
    pub preemptions: usize,
    /// Schedules executed up to and including the failing one.
    pub schedules_explored: usize,
    /// Copied from [`Config::replay_hint`].
    pub replay_hint: Option<String>,
}

impl core::fmt::Display for CheckFailure {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        writeln!(f, "doc-check: failing interleaving found ({})", self.kind)?;
        writeln!(f, "  cause: {}", self.message)?;
        writeln!(
            f,
            "  minimal failing schedule ({} preemptions): {}",
            self.preemptions, self.schedule
        )?;
        writeln!(f, "  schedules explored: {}", self.schedules_explored)?;
        let hint = self.replay_hint.as_deref().unwrap_or("re-run with");
        write!(f, "  replay: {hint} --schedule {}", self.schedule)
    }
}

impl std::error::Error for CheckFailure {}

/// Preemption count of a decision sequence: decisions that switched
/// away from a thread that was still runnable.
fn preemptions_of(decisions: &[Decision]) -> usize {
    decisions
        .iter()
        .filter(|d| d.runnable.contains(&d.prev) && d.chosen != d.prev)
        .count()
}

/// Explore every schedule of `body` within `cfg`'s bounds. `body` must
/// be deterministic and self-contained (fresh state per call); it runs
/// once per schedule.
pub fn explore<F: Fn() + Sync>(cfg: &Config, body: F) -> Result<Report, CheckFailure> {
    explore_dyn(cfg, &body)
}

fn explore_dyn(cfg: &Config, body: &(dyn Fn() + Sync)) -> Result<Report, CheckFailure> {
    // buckets[p] holds decision prefixes containing exactly p
    // preemptions. Branches from a level-p execution land in p or p+1,
    // never lower, so draining in nondecreasing order terminates and
    // finds a minimal-preemption failure first.
    let mut buckets: Vec<Vec<Vec<usize>>> = vec![Vec::new(); cfg.preemption_bound + 1];
    buckets[0].push(Vec::new());
    let mut explored = 0usize;
    let mut level = 0usize;
    while level < buckets.len() {
        let Some(preset) = buckets[level].pop() else {
            level += 1;
            continue;
        };
        if explored >= cfg.max_schedules {
            return Ok(Report {
                schedules: explored,
                completed: false,
            });
        }
        let res = sched::run_one(cfg.max_steps, &preset, body);
        explored += 1;
        if let Some(fail) = res.failure {
            return Err(CheckFailure {
                kind: fail.kind,
                message: fail.message,
                schedule: fail.schedule,
                preemptions: preemptions_of(&res.decisions),
                schedules_explored: explored,
                replay_hint: cfg.replay_hint.clone(),
            });
        }
        branch(&res.decisions, preset.len(), &mut buckets);
    }
    Ok(Report {
        schedules: explored,
        completed: true,
    })
}

/// Enqueue the unexplored alternatives of one completed execution:
/// for every decision at position `from` or later, every runnable
/// thread that was not chosen, provided the resulting prefix stays
/// within the preemption bound (`buckets.len() - 1`).
fn branch(decisions: &[Decision], from: usize, buckets: &mut [Vec<Vec<usize>>]) {
    let bound = buckets.len() - 1;
    let mut preemptions = 0usize;
    for (i, d) in decisions.iter().enumerate() {
        if i >= from {
            for &t in &d.runnable {
                if t == d.chosen {
                    continue;
                }
                let adds = usize::from(d.runnable.contains(&d.prev) && t != d.prev);
                let total = preemptions + adds;
                if total <= bound {
                    let mut preset: Vec<usize> = decisions[..i].iter().map(|x| x.chosen).collect();
                    preset.push(t);
                    buckets[total].push(preset);
                }
            }
        }
        if d.runnable.contains(&d.prev) && d.chosen != d.prev {
            preemptions += 1;
        }
    }
}

/// Re-execute `body` under one exact schedule (typically taken from a
/// [`CheckFailure`] report). Returns the same failure the original
/// exploration hit, or a clean single-schedule [`Report`].
pub fn replay<F: Fn() + Sync>(
    cfg: &Config,
    schedule: &Schedule,
    body: F,
) -> Result<Report, CheckFailure> {
    let res = sched::run_one(cfg.max_steps, &schedule.0, &body);
    match res.failure {
        Some(fail) => Err(CheckFailure {
            kind: fail.kind,
            message: fail.message,
            schedule: fail.schedule,
            preemptions: preemptions_of(&res.decisions),
            schedules_explored: 1,
            replay_hint: cfg.replay_hint.clone(),
        }),
        None => Ok(Report {
            schedules: 1,
            completed: true,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::atomic::{AtomicU64, Ordering};
    use crate::sync::{Arc, Mutex};
    use crate::thread;

    #[test]
    fn mutex_protected_counter_is_verified() {
        let report = explore(&Config::default(), || {
            let counter = Arc::new(Mutex::new(0u64));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let counter = Arc::clone(&counter);
                    thread::spawn(move || {
                        *counter.lock().unwrap() += 1;
                    })
                })
                .collect();
            for h in handles {
                h.join();
            }
            assert_eq!(*counter.lock().unwrap(), 2);
        })
        .expect("a correct counter has no failing schedule");
        assert!(report.completed);
        assert!(report.schedules > 1, "must explore real alternatives");
    }

    /// The classic lost update: load-then-store instead of fetch_add.
    /// Needs one preemption between the load and the store, so the
    /// bound-0 search verifies it (vacuously) and bound-1 finds it.
    fn lost_update_body() {
        let v = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let v = Arc::clone(&v);
                thread::spawn(move || {
                    let cur = v.load(Ordering::SeqCst);
                    v.store(cur + 1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join();
        }
        assert_eq!(v.load(Ordering::SeqCst), 2, "lost update");
    }

    #[test]
    fn lost_update_needs_a_preemption() {
        let bound0 = Config {
            preemption_bound: 0,
            ..Config::default()
        };
        assert!(
            explore(&bound0, lost_update_body).is_ok(),
            "run-to-completion schedules cannot interleave the load/store"
        );

        let failure = explore(&Config::default(), lost_update_body)
            .expect_err("one preemption exposes the lost update");
        assert_eq!(failure.kind, FailureKind::Panic);
        assert!(
            failure.message.contains("lost update"),
            "{}",
            failure.message
        );
        assert_eq!(failure.preemptions, 1, "minimal preemption count");
    }

    #[test]
    fn failure_replays_identically() {
        let first = explore(&Config::default(), lost_update_body).expect_err("found");
        let second = explore(&Config::default(), lost_update_body).expect_err("found again");
        assert_eq!(
            first.schedule, second.schedule,
            "exploration is deterministic"
        );
        assert_eq!(first.schedules_explored, second.schedules_explored);

        let replayed = replay(&Config::default(), &first.schedule, lost_update_body)
            .expect_err("the recorded schedule reproduces the failure");
        assert_eq!(replayed.kind, first.kind);
        assert_eq!(replayed.message, first.message);
        assert_eq!(replayed.schedule, first.schedule);
    }

    #[test]
    fn abba_deadlock_is_detected() {
        let failure = explore(&Config::default(), || {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t = thread::spawn(move || {
                let _ga = a2.lock().unwrap();
                let _gb = b2.lock().unwrap();
            });
            {
                let _gb = b.lock().unwrap();
                let _ga = a.lock().unwrap();
            }
            t.join();
        })
        .expect_err("ABBA ordering must deadlock under some schedule");
        assert_eq!(failure.kind, FailureKind::Deadlock);
        assert!(failure.message.contains("deadlock"), "{}", failure.message);
    }

    #[test]
    fn report_contains_replay_line() {
        let cfg = Config {
            replay_hint: Some("check_gate --model demo".to_string()),
            ..Config::default()
        };
        let failure = explore(&cfg, lost_update_body).expect_err("found");
        let text = failure.to_string();
        assert!(
            text.contains("check_gate --model demo --schedule"),
            "replay line missing:\n{text}"
        );
        assert!(text.contains("minimal failing schedule"), "{text}");
    }
}
