//! Model threads: `spawn`/`join`/`yield_now` inside an execution.
//!
//! Unlike the [`crate::sync`] shims these are *not* unconditional
//! drop-ins for production code — [`spawn`] panics outside a model
//! execution (production code keeps using `std::thread`). Model bodies
//! use them to create the threads whose interleavings the checker
//! explores. [`yield_now`] does passthrough to `std::thread::yield_now`
//! so it is safe anywhere.

use crate::sched::{self, BlockReason, Execution};
use std::sync::{Arc, Mutex as StdMutex};

/// Handle to a model thread; [`JoinHandle::join`] blocks the calling
/// model thread until the target finishes and returns its value.
pub struct JoinHandle<T> {
    exec: Arc<Execution>,
    tid: usize,
    slot: Arc<StdMutex<Option<T>>>,
}

impl<T> JoinHandle<T> {
    pub(crate) fn new(exec: Arc<Execution>, tid: usize, slot: Arc<StdMutex<Option<T>>>) -> Self {
        JoinHandle { exec, tid, slot }
    }

    /// The model thread id (spawn order; thread 0 is the body).
    pub fn thread_id(&self) -> usize {
        self.tid
    }

    /// Wait for the thread to finish and return its value.
    pub fn join(self) -> T {
        let (cur, me) = sched::current().expect("doc_check join outside a model execution");
        while !self.exec.is_finished(self.tid) {
            cur.block(me, BlockReason::Join(self.tid));
        }
        self.slot
            .lock()
            .unwrap()
            .take()
            .expect("model thread produced no value (it panicked)")
    }
}

/// Spawn a model thread. Must be called from inside a model execution
/// (i.e. from an [`crate::explore`]/[`crate::replay`] body or a thread
/// it spawned); panics otherwise.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    sched::spawn_model(f)
}

/// A pure scheduling point under the model; `std::thread::yield_now`
/// otherwise.
pub fn yield_now() {
    match sched::current() {
        Some((exec, me)) => exec.yield_point(me),
        None => std::thread::yield_now(),
    }
}
