//! `doc-check` — a deterministic thread-interleaving model checker in
//! the spirit of [loom].
//!
//! The workspace's concurrency layer (`doc_core::pool::SpmcRing`,
//! `doc_coap::shard::ShardedCache`, the proxy's atomic statistics) is
//! correct only if it is correct under *every* interleaving, but
//! ordinary tests only see whatever schedules the OS happens to
//! produce. This crate makes interleavings a controlled input:
//!
//! * [`sync`] exports drop-in [`sync::Mutex`], [`sync::Condvar`] and
//!   [`sync::atomic`] types with the `std::sync` API. Outside a model
//!   execution they are zero-cost passthroughs to `std` (a single
//!   thread-local lookup per operation), so production code uses them
//!   unconditionally — the real primitives are what gets checked, not
//!   copies.
//! * [`thread::spawn`]/[`thread::yield_now`] create *model* threads
//!   inside an execution. Only one model thread runs at a time; every
//!   synchronization operation is a yield point where the scheduler
//!   decides who runs next.
//! * [`explore`] drives a depth-first search over bounded schedules
//!   (run-to-completion baseline, then alternatives under a
//!   preemption bound, CHESS-style), re-running the model body once
//!   per schedule. Iterative deepening over the preemption bound means
//!   the first failure found carries the *minimal* number of
//!   preemptions. A failure ([`CheckFailure`]) carries the exact
//!   schedule and a one-line replay command; [`replay`] re-executes
//!   it deterministically.
//!
//! The memory model explored is sequential consistency: atomics take a
//! scheduling decision before each operation but the operation itself
//! is `SeqCst` regardless of the requested ordering. Weak-memory
//! reorderings (store buffers, as modeled by full loom) are out of
//! scope — this checker targets lock-discipline and logical-ordering
//! races, which is where the workspace's bugs can live (every shared
//! structure is mutex- or SeqCst-atomic-based).
//!
//! Everything is deterministic: thread ids are assigned in spawn
//! order, the scheduler is a pure function of the decision prefix, and
//! model bodies are required to be deterministic (no I/O, no ambient
//! randomness, fresh state per call). The same schedule therefore
//! replays the same execution, bit for bit — the property the
//! `injected_race` test pins end to end.
//!
//! [loom]: https://github.com/tokio-rs/loom

pub mod explore;
pub mod sched;
pub mod sync;
pub mod thread;

pub use explore::{explore, replay, CheckFailure, Config, FailureKind, Report};
pub use sched::Schedule;
