//! Fixture-based rule tests: each fixture is a small, realistic Rust
//! program embedded as a raw string; assertions pin which rule fires
//! on which line — and that the real workspace stays lint-clean.

use doc_lint::rules::{NO_ALLOC, NO_PANIC, UNSAFE_COMMENT};
use doc_lint::{lint_source, lint_workspace};

/// A parser-scoped fixture with one violation of each panic flavour.
#[test]
fn panic_rule_fires_on_each_flavour() {
    let src = r#"
pub fn parse(data: &[u8]) -> Result<u8, ()> {
    let first = data[0];
    let second = *data.get(1).unwrap();
    let third = data.first().copied().expect("nonempty");
    if first == 0 {
        unreachable!("checked");
    }
    Ok(first + second + third)
}
"#;
    let report = lint_source("crates/quic/src/frame.rs", src);
    let lines: Vec<(usize, &str)> = report.violations.iter().map(|v| (v.line, v.rule)).collect();
    assert_eq!(
        lines,
        vec![
            (3, NO_PANIC), // data[0]
            (4, NO_PANIC), // .unwrap()
            (5, NO_PANIC), // .expect()
            (7, NO_PANIC), // unreachable!
        ],
        "{:?}",
        report.violations
    );
}

/// The same source outside the parser allowlist is clean.
#[test]
fn panic_rule_is_scoped_to_parser_modules() {
    let src = "pub fn helper(data: &[u8]) -> u8 { data[0] }\n";
    assert!(lint_source("crates/netsim/src/lib.rs", src)
        .violations
        .is_empty());
}

/// Checked `.get()` rewrites — the fix the rule demands — are clean.
#[test]
fn checked_gets_are_clean() {
    let src = r#"
pub fn parse(data: &[u8]) -> Option<(u8, u16)> {
    let (header, rest) = data.split_first_chunk::<4>()?;
    let &[first, _, hi, lo] = header;
    let tail = rest.get(..2)?;
    let _ = tail;
    Some((first, u16::from_be_bytes([hi, lo])))
}
"#;
    let report = lint_source("crates/dns/src/view.rs", src);
    assert!(report.violations.is_empty(), "{:?}", report.violations);
}

/// Alloc rule: fires inside `*_into`/`*_view` bodies, not elsewhere.
#[test]
fn alloc_rule_scopes_to_into_and_view_fns() {
    let src = r#"
pub fn encode_into(&self, out: &mut Vec<u8>) {
    let copy = self.data.to_vec();
    out.extend_from_slice(&copy);
}

pub fn encode(&self) -> Vec<u8> {
    let mut out = Vec::new();
    self.data.to_vec()
}
"#;
    let report = lint_source("crates/coap/src/msg.rs", src);
    assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
    assert_eq!(report.violations[0].rule, NO_ALLOC);
    assert_eq!(report.violations[0].line, 3);
}

#[test]
fn alloc_rule_catches_constructor_paths_and_macros() {
    let src = r#"
fn build_view(buf: &mut Vec<u8>) {
    let a = Vec::with_capacity(8);
    let b = format!("{a:?}");
    let _ = (a, b);
}
"#;
    let report = lint_source("anywhere.rs", src);
    assert_eq!(
        report.violations.iter().map(|v| v.line).collect::<Vec<_>>(),
        vec![3, 4],
        "{:?}",
        report.violations
    );
}

/// Unsafe rule: a multi-line SAFETY block covers the `unsafe` below
/// it; an undocumented one is flagged.
#[test]
fn unsafe_rule_accepts_multiline_safety_blocks() {
    let src = r#"
// SAFETY: the pointer comes from Box::into_raw two lines up and is
// consumed exactly once, so the Box contract holds across the
// round-trip.
unsafe fn documented(p: *mut u8) {
    let _ = p;
}

unsafe fn undocumented(p: *mut u8) {
    let _ = p;
}
"#;
    let report = lint_source("crates/core/src/lib.rs", src);
    assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
    assert_eq!(report.violations[0].rule, UNSAFE_COMMENT);
    assert_eq!(report.violations[0].line, 9);
}

/// Waivers: cover their own line and the next; carry their reason;
/// stale ones surface as unused.
#[test]
fn waivers_cover_fix_sites_and_report_staleness() {
    let src = r#"
fn decode(data: &[u8]) -> u8 {
    // lint:allow(no-panic-in-parsers): caller guarantees one byte
    data[0]
}
// lint:allow(no-alloc-in-into): nothing here allocates any more
fn other() {}
"#;
    let report = lint_source("crates/coap/src/view.rs", src);
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert_eq!(report.waived.len(), 1);
    assert_eq!(report.unused_waivers.len(), 1);
    assert_eq!(report.unused_waivers[0].line, 6);
}

/// The acceptance criterion, enforced in tier-1: the workspace itself
/// has zero unwaivered violations. (`lint_gate` checks the same thing
/// in CI; this keeps `cargo test` sufficient to catch regressions.)
#[test]
fn workspace_is_lint_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("crates/lint lives two levels below the workspace root")
        .to_path_buf();
    let reports = lint_workspace(&root).expect("workspace is readable");
    let violations: Vec<String> = reports
        .iter()
        .flat_map(|(_, r)| r.violations.iter().map(|v| v.to_string()))
        .collect();
    assert!(
        violations.is_empty(),
        "unwaivered lint violations:\n{}",
        violations.join("\n")
    );
}
