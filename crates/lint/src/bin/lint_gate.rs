//! `lint_gate` — the workspace invariant linter's CI entry point.
//!
//! Walks `src/` plus every `crates/*/src`, runs the `doc-lint` rules,
//! and exits 0 iff there are zero unwaivered *error*-severity
//! violations. Warning-severity rules (those soaking before
//! promotion, e.g. `no-raw-ms-in-quic`) are printed but never affect
//! the exit status. Waived violations and unused waivers are printed
//! as warnings so exceptions stay visible. `./ci.sh check` invokes
//! exactly this.
//!
//! ```text
//! lint_gate [--root DIR] [--rule NAME] [--list]
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use doc_lint::{lint_workspace, Severity, ALL_RULES};

struct Args {
    root: PathBuf,
    rule: Option<String>,
    list: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        rule: None,
        list: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--root" => args.root = PathBuf::from(value("--root")?),
            "--rule" => args.rule = Some(value("--rule")?),
            "--list" => args.list = true,
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if let Some(rule) = &args.rule {
        if !ALL_RULES.contains(&rule.as_str()) {
            return Err(format!("unknown rule {rule:?} (try --list)"));
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("lint_gate: {e}");
            eprintln!("usage: lint_gate [--root DIR] [--rule NAME] [--list]");
            return ExitCode::from(2);
        }
    };

    if args.list {
        for rule in ALL_RULES {
            println!("{rule}");
        }
        return ExitCode::SUCCESS;
    }

    let reports = match lint_workspace(&args.root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint_gate: walking {}: {e}", args.root.display());
            return ExitCode::from(2);
        }
    };

    let mut violations = 0usize;
    let mut warnings = 0usize;
    let mut waived = 0usize;
    let mut files = 0usize;
    for (_, report) in &reports {
        files += 1;
        for v in &report.violations {
            if args.rule.as_deref().is_some_and(|r| r != v.rule) {
                continue;
            }
            match v.severity {
                Severity::Error => {
                    violations += 1;
                    eprintln!("error: {v}");
                }
                Severity::Warning => {
                    warnings += 1;
                    println!("warning: {v}");
                }
            }
        }
        for v in &report.waived {
            if args.rule.as_deref().is_some_and(|r| r != v.rule) {
                continue;
            }
            waived += 1;
            println!("waived: {v}");
        }
        for w in &report.unused_waivers {
            println!(
                "warning: {}:{}: unused waiver for {} — remove it",
                w.file, w.line, w.rule
            );
        }
    }

    println!(
        "lint_gate: {violations} violation(s), {warnings} warning(s), {waived} waived, \
         across {files} flagged file(s)"
    );
    if violations > 0 {
        eprintln!("lint_gate: add fixes or `// lint:allow(<rule>): <reason>` waivers");
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}
