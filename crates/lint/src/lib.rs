//! `doc-lint` — workspace invariant linter.
//!
//! A deliberately small static analyzer for the invariants this
//! workspace cares about and `clippy` cannot express: wire-facing
//! parsers must be total, `*_into`/`*_view` hot paths must not
//! allocate, and every `unsafe` must carry a `// SAFETY:` comment.
//!
//! The pipeline is three layers, each independently testable:
//!
//! * [`lexer`] — a hand-rolled Rust lexer (raw strings, nested block
//!   comments, lifetimes-vs-char-literals) that turns source text into
//!   tokens so the rules never false-positive on `unwrap` inside a
//!   string or a doc comment.
//! * [`rules`] — the rule engine plus the
//!   `// lint:allow(<rule>): <reason>` waiver mechanism.
//! * [`workspace`] — the file walker and report aggregator that
//!   `lint_gate` (and `./ci.sh check`) drives.

pub mod lexer;
pub mod rules;
pub mod workspace;

pub use rules::{lint_source, FileReport, Severity, UnusedWaiver, Violation, ALL_RULES};
pub use workspace::{lint_workspace, workspace_sources};
