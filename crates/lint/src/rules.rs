//! The rule engine: project invariants enforced over the token stream.
//!
//! Three rules, matching the invariants the benches enforce
//! dynamically:
//!
//! * **`no-panic-in-parsers`** — the wire-facing decode/view modules
//!   (attacker-controlled input) must be total: no `.unwrap()` /
//!   `.expect()`, no `panic!`-family macros, no direct slice indexing
//!   (`x[i]` can panic; `x.get(i)` cannot).
//! * **`no-alloc-in-into`** — `fn *_into` / `fn *_view` bodies are the
//!   0-allocation hot paths; no `Vec::new`, `to_vec`, `format!`,
//!   `clone`, and friends inside them.
//! * **`unsafe-needs-safety-comment`** — every `unsafe` keyword is
//!   preceded (within two lines) by a `// SAFETY:` comment.
//! * **`no-raw-ms-in-quic`** *(warning, soaking)* — `doc-quic` and
//!   `doc-netsim` express time as the shared `doc-time` newtypes
//!   (`Millis`/`Instant`); a raw `<name>_ms: u64` binding in those
//!   crates reintroduces the unit-confusable surface the typed API
//!   removed. Soaks at [`Severity::Warning`] (reported, does not fail
//!   the gate) until the remaining escape hatches are retired.
//!
//! Every rule honours the inline waiver syntax
//!
//! ```text
//! // lint:allow(<rule>): <non-empty reason>
//! ```
//!
//! on the violation's line or the line above — so every exception is
//! written down next to the code it excuses, greppable, and auditable.
//! `#[cfg(test)]` modules are skipped entirely: tests are allowed to
//! unwrap.

use crate::lexer::{lex, Token, TokenKind};

/// Rule identifier: wire-facing parser/view modules must be total.
pub const NO_PANIC: &str = "no-panic-in-parsers";
/// Rule identifier: `*_into`/`*_view` bodies must not allocate.
pub const NO_ALLOC: &str = "no-alloc-in-into";
/// Rule identifier: `unsafe` needs an adjacent `// SAFETY:` comment.
pub const UNSAFE_COMMENT: &str = "unsafe-needs-safety-comment";
/// Rule identifier: `doc-quic`/`doc-netsim` use `doc-time` newtypes,
/// not raw `*_ms: u64` bindings (warning severity while soaking).
pub const NO_RAW_MS: &str = "no-raw-ms-in-quic";

/// All rule names, in reporting order.
pub const ALL_RULES: &[&str] = &[NO_PANIC, NO_ALLOC, UNSAFE_COMMENT, NO_RAW_MS];

/// Path prefixes (repo-relative, `/`-separated) of the crates whose
/// time surfaces are typed — the scope of [`NO_RAW_MS`].
pub const TYPED_TIME_CRATES: &[&str] = &["crates/quic/", "crates/netsim/"];

/// Path suffixes (repo-relative, `/`-separated) of the modules that
/// parse or view attacker-controlled wire input — the scope of
/// [`NO_PANIC`].
pub const PANIC_FREE_MODULES: &[&str] = &[
    "crates/dns/src/view.rs",
    "crates/coap/src/view.rs",
    "crates/dtls/src/record.rs",
    "crates/quic/src/varint.rs",
    "crates/quic/src/frame.rs",
    "crates/quic/src/doq.rs",
];

/// How a violation affects the gate's exit status.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Severity {
    /// Fails the gate.
    #[default]
    Error,
    /// Reported but does not fail the gate (a rule soaking before
    /// promotion to [`Severity::Error`]).
    Warning,
}

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which rule fired (one of [`ALL_RULES`]).
    pub rule: &'static str,
    /// Whether the violation fails the gate or only warns.
    pub severity: Severity,
    /// The file label passed to [`lint_source`].
    pub file: String,
    /// 1-indexed line.
    pub line: usize,
    /// Human-readable description of the offending construct.
    pub message: String,
}

impl core::fmt::Display for Violation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// A waiver that matched no violation — reported as a warning so stale
/// excuses get cleaned up.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnusedWaiver {
    /// The file label passed to [`lint_source`].
    pub file: String,
    /// 1-indexed line of the waiver comment.
    pub line: usize,
    /// The rule the waiver names.
    pub rule: String,
}

/// The outcome of linting one file.
#[derive(Debug, Clone, Default)]
pub struct FileReport {
    /// Violations with no covering waiver — these fail the gate.
    pub violations: Vec<Violation>,
    /// Violations excused by a waiver (kept for `--verbose` audits).
    pub waived: Vec<Violation>,
    /// Waivers that excused nothing.
    pub unused_waivers: Vec<UnusedWaiver>,
}

struct Waiver {
    line: usize,
    rule: String,
    used: bool,
}

/// Parse `// lint:allow(<rule>): <reason>` out of a comment token.
/// Malformed waivers (no reason, unknown shape) are ignored — they
/// excuse nothing, so the violation they meant to cover still fires,
/// which is the safe failure mode.
fn parse_waiver(t: &Token) -> Option<(String, String)> {
    let body = t.text.trim_start_matches('/').trim();
    let rest = body.strip_prefix("lint:allow(")?;
    let close = rest.find(')')?;
    let rule = rest[..close].trim().to_string();
    let reason = rest[close + 1..].trim_start_matches(':').trim().to_string();
    (!rule.is_empty() && !reason.is_empty()).then_some((rule, reason))
}

/// Token indexes covered by `#[cfg(test)] mod … { … }` blocks.
fn test_module_mask(tokens: &[Token]) -> Vec<bool> {
    let mut masked = vec![false; tokens.len()];
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| {
            !matches!(
                tokens[i].kind,
                TokenKind::LineComment | TokenKind::BlockComment
            )
        })
        .collect();
    let tok = |ci: usize| -> &Token { &tokens[code[ci]] };
    let mut ci = 0;
    while ci + 6 < code.len() {
        let is_cfg_test = tok(ci).punct() == Some('#')
            && tok(ci + 1).punct() == Some('[')
            && tok(ci + 2).text == "cfg"
            && tok(ci + 3).punct() == Some('(')
            && tok(ci + 4).text == "test"
            && tok(ci + 5).punct() == Some(')')
            && tok(ci + 6).punct() == Some(']');
        if is_cfg_test && code.len() > ci + 7 && tok(ci + 7).text == "mod" {
            // Find the opening brace, then match it.
            let mut cj = ci + 8;
            while cj < code.len() && tok(cj).punct() != Some('{') {
                cj += 1;
            }
            let mut depth = 0usize;
            let start = code[ci];
            while cj < code.len() {
                match tok(cj).punct() {
                    Some('{') => depth += 1,
                    Some('}') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                cj += 1;
            }
            let end = code.get(cj).copied().unwrap_or(tokens.len() - 1);
            for m in masked.iter_mut().take(end + 1).skip(start) {
                *m = true;
            }
            ci = cj + 1;
        } else {
            ci += 1;
        }
    }
    masked
}

/// Rust keywords that may legitimately precede a `[` starting an array
/// literal or type rather than an indexing expression.
const NON_INDEX_KEYWORDS: &[&str] = &[
    "as", "box", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "fn",
    "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "self", "static", "struct", "super", "trait", "type", "unsafe", "use", "where",
    "while", "yield",
];

/// Whether the code token before `[` makes it an indexing expression:
/// an identifier (not a keyword), a closing bracket, or a closing
/// paren — i.e. something that evaluates to a place.
fn is_indexing(prev: Option<&Token>) -> bool {
    match prev {
        Some(t) if t.kind == TokenKind::Ident => !NON_INDEX_KEYWORDS.contains(&t.text.as_str()),
        Some(t) => matches!(t.punct(), Some(']') | Some(')')),
        None => false,
    }
}

/// Method names banned in [`NO_PANIC`] scope when called as `.name(`.
const PANICKY_METHODS: &[&str] = &["unwrap", "expect"];
/// Macro names banned in [`NO_PANIC`] scope when invoked as `name!`.
const PANICKY_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Method names banned inside `*_into`/`*_view` bodies when called as
/// `.name(`.
const ALLOC_METHODS: &[&str] = &["to_vec", "to_owned", "to_string", "clone", "collect"];
/// Macro names banned inside `*_into`/`*_view` bodies.
const ALLOC_MACROS: &[&str] = &["format", "vec"];
/// `Type::constructor` paths banned inside `*_into`/`*_view` bodies.
const ALLOC_PATHS: &[(&str, &str)] = &[
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("String", "new"),
    ("String", "from"),
    ("Box", "new"),
];

/// Byte ranges (as token-index ranges) of `fn *_into` / `fn *_view`
/// bodies, found by brace-matching from each matching `fn` signature.
fn alloc_checked_fn_bodies(tokens: &[Token], code: &[usize]) -> Vec<(usize, usize, String)> {
    let mut bodies = Vec::new();
    for (ci, &ti) in code.iter().enumerate() {
        if tokens[ti].text != "fn" || ci + 1 >= code.len() {
            continue;
        }
        let name = &tokens[code[ci + 1]].text;
        if !(name.ends_with("_into") || name.ends_with("_view")) {
            continue;
        }
        // Walk to the body's opening brace. A `where` clause or return
        // type cannot contain a bare `{`, and a `;` first means a
        // trait method signature with no body.
        let mut cj = ci + 2;
        while cj < code.len() {
            match tokens[code[cj]].punct() {
                Some('{') => break,
                Some(';') => {
                    cj = code.len();
                    break;
                }
                _ => cj += 1,
            }
        }
        if cj >= code.len() {
            continue;
        }
        let open = cj;
        let mut depth = 0usize;
        while cj < code.len() {
            match tokens[code[cj]].punct() {
                Some('{') => depth += 1,
                Some('}') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            cj += 1;
        }
        bodies.push((open, cj.min(code.len() - 1), name.clone()));
    }
    bodies
}

/// Lint one source file. `file` is only a label for reports; the
/// [`NO_PANIC`] scope check matches it against
/// [`PANIC_FREE_MODULES`] suffixes.
pub fn lint_source(file: &str, source: &str) -> FileReport {
    let tokens = lex(source);
    let masked = test_module_mask(&tokens);
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| {
            !matches!(
                tokens[i].kind,
                TokenKind::LineComment | TokenKind::BlockComment
            )
        })
        .collect();

    let mut waivers: Vec<Waiver> = tokens
        .iter()
        .filter(|t| t.kind == TokenKind::LineComment)
        .filter_map(|t| {
            parse_waiver(t).map(|(rule, _reason)| Waiver {
                line: t.line,
                rule,
                used: false,
            })
        })
        .collect();

    let mut raw: Vec<Violation> = Vec::new();
    let normalized = file.replace('\\', "/");
    let panic_scope = PANIC_FREE_MODULES
        .iter()
        .any(|suffix| normalized.ends_with(suffix));

    // --- no-panic-in-parsers ------------------------------------------------
    if panic_scope {
        for (ci, &ti) in code.iter().enumerate() {
            if masked[ti] {
                continue;
            }
            let t = &tokens[ti];
            if t.kind == TokenKind::Ident {
                let prev = ci.checked_sub(1).map(|p| &tokens[code[p]]);
                let next = code.get(ci + 1).map(|&n| &tokens[n]);
                if PANICKY_METHODS.contains(&t.text.as_str())
                    && prev.and_then(|p| p.punct()) == Some('.')
                {
                    raw.push(Violation {
                        rule: NO_PANIC,
                        severity: Severity::Error,
                        file: file.to_string(),
                        line: t.line,
                        message: format!(".{}() can panic on attacker-controlled input", t.text),
                    });
                }
                if PANICKY_MACROS.contains(&t.text.as_str())
                    && next.and_then(|n| n.punct()) == Some('!')
                {
                    raw.push(Violation {
                        rule: NO_PANIC,
                        severity: Severity::Error,
                        file: file.to_string(),
                        line: t.line,
                        message: format!("{}! in a total parser", t.text),
                    });
                }
            }
            if t.punct() == Some('[') {
                let prev = ci.checked_sub(1).map(|p| &tokens[code[p]]);
                if is_indexing(prev) {
                    raw.push(Violation {
                        rule: NO_PANIC,
                        severity: Severity::Error,
                        file: file.to_string(),
                        line: t.line,
                        message: format!(
                            "direct indexing `{}[..]` can panic; use .get()",
                            prev.map(|p| p.text.as_str()).unwrap_or("")
                        ),
                    });
                }
            }
        }
    }

    // --- no-alloc-in-into ---------------------------------------------------
    for (open, close, fn_name) in alloc_checked_fn_bodies(&tokens, &code) {
        for ci in open..=close {
            let ti = code[ci];
            if masked[ti] {
                continue;
            }
            let t = &tokens[ti];
            if t.kind != TokenKind::Ident {
                continue;
            }
            let prev = ci.checked_sub(1).map(|p| &tokens[code[p]]);
            let next = code.get(ci + 1).map(|&n| &tokens[n]);
            let mut hit: Option<String> = None;
            if ALLOC_METHODS.contains(&t.text.as_str()) && prev.and_then(|p| p.punct()) == Some('.')
            {
                hit = Some(format!(".{}()", t.text));
            }
            if ALLOC_MACROS.contains(&t.text.as_str()) && next.and_then(|n| n.punct()) == Some('!')
            {
                hit = Some(format!("{}!", t.text));
            }
            if ALLOC_PATHS.iter().any(|(ty, ctor)| {
                t.text == *ty
                    && code.get(ci + 1).map(|&n| tokens[n].punct()) == Some(Some(':'))
                    && code.get(ci + 2).map(|&n| tokens[n].punct()) == Some(Some(':'))
                    && code.get(ci + 3).map(|&n| tokens[n].text.as_str()) == Some(*ctor)
            }) {
                let ctor = &tokens[code[ci + 3]].text;
                hit = Some(format!("{}::{}", t.text, ctor));
            }
            if let Some(what) = hit {
                raw.push(Violation {
                    rule: NO_ALLOC,
                    severity: Severity::Error,
                    file: file.to_string(),
                    line: t.line,
                    message: format!("{what} allocates inside 0-alloc hot path `fn {fn_name}`"),
                });
            }
        }
    }

    // --- unsafe-needs-safety-comment ----------------------------------------
    // A `// SAFETY:` comment covers the `unsafe` on its own line and —
    // walking a contiguous run of comment lines — any `unsafe` directly
    // below the run, so multi-line justifications work.
    let mut comment_lines: std::collections::BTreeMap<usize, bool> = Default::default();
    for c in &tokens {
        if !matches!(c.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            continue;
        }
        let has_safety = c.text.contains("SAFETY:");
        for (i, _) in c.text.split('\n').enumerate() {
            let entry = comment_lines.entry(c.line + i).or_insert(false);
            *entry |= has_safety;
        }
    }
    for &ti in &code {
        let t = &tokens[ti];
        if t.kind != TokenKind::Ident || t.text != "unsafe" || masked[ti] {
            continue;
        }
        let mut covered = comment_lines.get(&t.line).copied() == Some(true);
        let mut line = t.line;
        while !covered && line > 1 {
            line -= 1;
            match comment_lines.get(&line) {
                Some(true) => covered = true,
                Some(false) => continue,
                None => break,
            }
        }
        if !covered {
            raw.push(Violation {
                rule: UNSAFE_COMMENT,
                severity: Severity::Error,
                file: file.to_string(),
                line: t.line,
                message: "`unsafe` without an adjacent `// SAFETY:` comment".to_string(),
            });
        }
    }

    // --- no-raw-ms-in-quic --------------------------------------------------
    // Pattern: an identifier ending in `_ms`, a `:`, then `u64` — a
    // millisecond count smuggled past the typed time API as a bare
    // integer (fn params and struct fields alike). Scoped to the
    // crates whose public time surfaces are `doc-time` newtypes.
    if TYPED_TIME_CRATES
        .iter()
        .any(|prefix| normalized.contains(prefix))
    {
        for (ci, &ti) in code.iter().enumerate() {
            if masked[ti] {
                continue;
            }
            let t = &tokens[ti];
            if t.kind != TokenKind::Ident || !t.text.ends_with("_ms") {
                continue;
            }
            let colon = code.get(ci + 1).map(|&n| tokens[n].punct()) == Some(Some(':'));
            // `::` starts a path, not a type ascription.
            let path = code.get(ci + 2).map(|&n| tokens[n].punct()) == Some(Some(':'));
            let u64_ty = code.get(ci + 2).map(|&n| tokens[n].text.as_str()) == Some("u64");
            if colon && !path && u64_ty {
                raw.push(Violation {
                    rule: NO_RAW_MS,
                    severity: Severity::Warning,
                    file: file.to_string(),
                    line: t.line,
                    message: format!(
                        "`{}: u64` — use doc_time::Millis/Instant for time in this crate",
                        t.text
                    ),
                });
            }
        }
    }

    // --- apply waivers ------------------------------------------------------
    let mut report = FileReport::default();
    for v in raw {
        let waived = waivers.iter_mut().any(|w| {
            w.rule == v.rule && (w.line == v.line || w.line + 1 == v.line) && {
                w.used = true;
                true
            }
        });
        if waived {
            report.waived.push(v);
        } else {
            report.violations.push(v);
        }
    }
    report.unused_waivers = waivers
        .into_iter()
        .filter(|w| !w.used)
        .map(|w| UnusedWaiver {
            file: file.to_string(),
            line: w.line,
            rule: w.rule,
        })
        .collect();
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn waiver_parsing() {
        let t = |s: &str| Token {
            kind: TokenKind::LineComment,
            text: s.to_string(),
            line: 1,
        };
        assert_eq!(
            parse_waiver(&t(
                "// lint:allow(no-panic-in-parsers): bounds checked above"
            )),
            Some((
                "no-panic-in-parsers".to_string(),
                "bounds checked above".to_string()
            ))
        );
        // A reason is mandatory; a bare waiver excuses nothing.
        assert_eq!(
            parse_waiver(&t("// lint:allow(no-panic-in-parsers):")),
            None
        );
        assert_eq!(parse_waiver(&t("// lint:allow(): because")), None);
        assert_eq!(parse_waiver(&t("// plain comment")), None);
    }

    #[test]
    fn test_modules_are_masked() {
        let src = r#"
            fn real() { x.unwrap(); }
            #[cfg(test)]
            mod tests {
                fn t() { y.unwrap(); data[0]; }
            }
        "#;
        let report = lint_source("crates/dns/src/view.rs", src);
        assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
        assert_eq!(report.violations[0].line, 2);
    }

    #[test]
    fn waived_violations_move_to_waived() {
        let src = "\
fn f() {
    // lint:allow(no-panic-in-parsers): length checked by caller
    let x = data[0];
    let y = data[1];
}
";
        let report = lint_source("crates/coap/src/view.rs", src);
        assert_eq!(report.waived.len(), 1);
        assert_eq!(report.violations.len(), 1, "second index is not covered");
        assert_eq!(report.violations[0].line, 4);
        assert!(report.unused_waivers.is_empty());
    }

    #[test]
    fn unused_waivers_are_reported() {
        let src = "// lint:allow(no-alloc-in-into): stale excuse\nfn g() {}\n";
        let report = lint_source("crates/dns/src/view.rs", src);
        assert!(report.violations.is_empty());
        assert_eq!(report.unused_waivers.len(), 1);
        assert_eq!(report.unused_waivers[0].rule, "no-alloc-in-into");
    }

    #[test]
    fn raw_ms_rule_warns_in_typed_time_crates_only() {
        let src = "pub fn set_timer(&mut self, at_ms: u64, token: u64) {}\n";
        let report = lint_source("crates/netsim/src/lib.rs", src);
        assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
        let v = &report.violations[0];
        assert_eq!(v.rule, NO_RAW_MS);
        assert_eq!(v.severity, Severity::Warning);
        assert!(v.message.contains("at_ms"), "{}", v.message);
        // Struct fields are flagged too.
        let report = lint_source("crates/quic/src/conn.rs", "struct S { deadline_ms: u64 }\n");
        assert_eq!(report.violations.len(), 1);
        // Outside the typed-time crates the same code is fine.
        let report = lint_source("crates/core/src/pool.rs", src);
        assert!(report.violations.is_empty());
        // `_ms` bindings of a *typed* kind are fine, and `::` paths
        // are not type ascriptions.
        let ok = "fn f(at_ms: Millis) { let x = now_ms::helper(); }\n";
        assert!(lint_source("crates/quic/src/conn.rs", ok)
            .violations
            .is_empty());
    }

    #[test]
    fn rules_scope_to_their_modules() {
        // unwrap outside the parser allowlist is fine…
        let report = lint_source("crates/bench/src/lib.rs", "fn f() { x.unwrap(); }");
        assert!(report.violations.is_empty());
        // …but unsafe without SAFETY is flagged everywhere.
        let report = lint_source("crates/bench/src/lib.rs", "unsafe fn f() {}");
        assert_eq!(report.violations.len(), 1);
        assert_eq!(report.violations[0].rule, UNSAFE_COMMENT);
    }
}
