//! Workspace walker: finds the Rust sources the linter covers and
//! aggregates per-file reports into one gate verdict.

use std::fs;
use std::path::{Path, PathBuf};

use crate::rules::{lint_source, FileReport};

/// Collect every `.rs` file under `root` that the lint gate covers:
/// the umbrella `src/` tree plus each `crates/*/src` tree. `target/`
/// and anything named `third_party` are skipped.
pub fn workspace_sources(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut roots = vec![root.join("src")];
    if let Ok(entries) = fs::read_dir(root.join("crates")) {
        for entry in entries.flatten() {
            let src = entry.path().join("src");
            if src.is_dir() {
                roots.push(src);
            }
        }
    }
    for dir in roots {
        collect_rs(&dir, &mut files)?;
    }
    files.sort();
    Ok(files)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    for entry in fs::read_dir(dir)?.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name == "target" || name == "third_party" {
            continue;
        }
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lint every workspace source under `root`, labelling each file with
/// its `root`-relative path so reports are stable across machines.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<(String, FileReport)>> {
    let mut reports = Vec::new();
    for path in workspace_sources(root)? {
        let label = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let source = fs::read_to_string(&path)?;
        let report = lint_source(&label, &source);
        if !report.violations.is_empty()
            || !report.waived.is_empty()
            || !report.unused_waivers.is_empty()
        {
            reports.push((label, report));
        }
    }
    Ok(reports)
}
