//! A small hand-rolled Rust lexer — just enough fidelity for source
//! linting: it distinguishes the contexts a text grep cannot
//! (identifiers inside string literals or comments, lifetimes vs char
//! literals, nested block comments, raw strings) while staying a few
//! hundred lines. It does **not** parse: downstream rules work on the
//! token stream with line numbers attached.
//!
//! Coverage deliberately includes every form that appears — or could
//! plausibly appear — in this workspace: `//`/`/*…*/` (nested)
//! comments, `"…"` with escapes, `r"…"`/`r#"…"#` (any hash count),
//! byte variants `b'…'`/`b"…"`/`br#"…"#`, raw identifiers `r#type`,
//! lifetimes `'a` vs char literals `'a'`, and numeric literals with
//! suffixes.

/// What a lexed token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (including raw identifiers, prefix kept).
    Ident,
    /// `'a`, `'static` — a lifetime (or loop label).
    Lifetime,
    /// `'x'`, `'\n'`, `b'x'` — a character/byte literal.
    CharLit,
    /// `"…"`, `b"…"` — an escaped string literal.
    StrLit,
    /// `r"…"`, `r#"…"#`, `br"…"` — a raw string literal.
    RawStrLit,
    /// `42`, `0xFF`, `1_000u64`, `1.5e3` — a numeric literal.
    NumLit,
    /// `// …` (including `///` and `//!`).
    LineComment,
    /// `/* … */`, nesting included.
    BlockComment,
    /// Any single other character (`.`, `[`, `!`, …).
    Punct,
}

/// One token: kind, verbatim text, and the 1-indexed line it starts
/// on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token class.
    pub kind: TokenKind,
    /// The exact source text of the token.
    pub text: String,
    /// 1-indexed line of the token's first character.
    pub line: usize,
}

impl Token {
    /// The single character of a [`TokenKind::Punct`] token.
    pub fn punct(&self) -> Option<char> {
        (self.kind == TokenKind::Punct).then(|| self.text.chars().next().unwrap_or(' '))
    }
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Lexer state over a byte view of the source. Non-ASCII bytes only
/// ever appear inside comments and string literals in this workspace;
/// they are carried through verbatim.
struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Lexer<'a> {
    fn peek(&self, ahead: usize) -> u8 {
        self.src.get(self.pos + ahead).copied().unwrap_or(0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek(0);
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        c
    }

    fn text_from(&self, start: usize) -> String {
        String::from_utf8_lossy(&self.src[start..self.pos]).into_owned()
    }

    /// `//` to end of line.
    fn line_comment(&mut self, start: usize, line: usize) -> Token {
        while self.peek(0) != b'\n' && self.pos < self.src.len() {
            self.bump();
        }
        Token {
            kind: TokenKind::LineComment,
            text: self.text_from(start),
            line,
        }
    }

    /// `/* … */` with nesting; an unterminated comment swallows the
    /// rest of the file (matching rustc's error recovery).
    fn block_comment(&mut self, start: usize, line: usize) -> Token {
        self.bump();
        self.bump(); // consume `/*`
        let mut depth = 1usize;
        while depth > 0 && self.pos < self.src.len() {
            if self.peek(0) == b'/' && self.peek(1) == b'*' {
                depth += 1;
                self.bump();
                self.bump();
            } else if self.peek(0) == b'*' && self.peek(1) == b'/' {
                depth -= 1;
                self.bump();
                self.bump();
            } else {
                self.bump();
            }
        }
        Token {
            kind: TokenKind::BlockComment,
            text: self.text_from(start),
            line,
        }
    }

    /// `"…"` with backslash escapes; the opening quote is already the
    /// current character.
    fn string_lit(&mut self, start: usize, line: usize) -> Token {
        self.bump(); // opening quote
        while self.pos < self.src.len() {
            match self.bump() {
                b'\\' => {
                    self.bump(); // whatever is escaped, including `"` and `\`
                }
                b'"' => break,
                _ => {}
            }
        }
        Token {
            kind: TokenKind::StrLit,
            text: self.text_from(start),
            line,
        }
    }

    /// `r"…"` / `r#"…"#` with `hashes` hashes; cursor is on the
    /// opening quote. No escapes: the literal ends at `"` followed by
    /// the same number of hashes.
    fn raw_string_lit(&mut self, start: usize, line: usize, hashes: usize) -> Token {
        self.bump(); // opening quote
        while self.pos < self.src.len() {
            if self.bump() == b'"' {
                let mut seen = 0;
                while seen < hashes && self.peek(0) == b'#' {
                    self.bump();
                    seen += 1;
                }
                if seen == hashes {
                    break;
                }
            }
        }
        Token {
            kind: TokenKind::RawStrLit,
            text: self.text_from(start),
            line,
        }
    }

    /// `'x'` / `'\n'` (cursor on the opening quote) or a lifetime
    /// `'a` / `'static`. Disambiguation: after the quote, an escape or
    /// a single character followed by a closing quote is a char
    /// literal; an identifier run *not* followed by a closing quote is
    /// a lifetime.
    fn char_or_lifetime(&mut self, start: usize, line: usize) -> Token {
        self.bump(); // opening quote
        if self.peek(0) == b'\\' {
            // Escaped char literal: consume escape then to closing quote.
            self.bump();
            self.bump();
            while self.pos < self.src.len() && self.peek(0) != b'\'' {
                self.bump(); // e.g. the hex digits of '\x7F' / '\u{1F4A9}'
            }
            self.bump(); // closing quote
            return Token {
                kind: TokenKind::CharLit,
                text: self.text_from(start),
                line,
            };
        }
        if is_ident_start(self.peek(0)) {
            // Could be 'a' (char) or 'a / 'abc (lifetime): scan the
            // identifier run and look for a closing quote.
            let mut len = 1;
            while is_ident_continue(self.peek(len)) {
                len += 1;
            }
            if self.peek(len) == b'\'' {
                for _ in 0..=len {
                    self.bump();
                }
                return Token {
                    kind: TokenKind::CharLit,
                    text: self.text_from(start),
                    line,
                };
            }
            for _ in 0..len {
                self.bump();
            }
            return Token {
                kind: TokenKind::Lifetime,
                text: self.text_from(start),
                line,
            };
        }
        // Non-identifier char literal: '-', ' ', '"', etc.
        self.bump();
        if self.peek(0) == b'\'' {
            self.bump();
        }
        Token {
            kind: TokenKind::CharLit,
            text: self.text_from(start),
            line,
        }
    }

    fn ident(&mut self, start: usize, line: usize) -> Token {
        while is_ident_continue(self.peek(0)) {
            self.bump();
        }
        Token {
            kind: TokenKind::Ident,
            text: self.text_from(start),
            line,
        }
    }

    fn number(&mut self, start: usize, line: usize) -> Token {
        // Digits, `_`, type suffixes, hex letters — and a `.` only
        // when followed by a digit, so ranges (`0..n`) and method
        // calls (`1.max(x)`) stay separate tokens.
        while is_ident_continue(self.peek(0))
            || (self.peek(0) == b'.' && self.peek(1).is_ascii_digit())
        {
            self.bump();
        }
        Token {
            kind: TokenKind::NumLit,
            text: self.text_from(start),
            line,
        }
    }

    fn next_token(&mut self) -> Option<Token> {
        while self.pos < self.src.len() && self.peek(0).is_ascii_whitespace() {
            self.bump();
        }
        if self.pos >= self.src.len() {
            return None;
        }
        let (start, line) = (self.pos, self.line);
        let c = self.peek(0);
        let token = match c {
            b'/' if self.peek(1) == b'/' => self.line_comment(start, line),
            b'/' if self.peek(1) == b'*' => self.block_comment(start, line),
            b'"' => self.string_lit(start, line),
            b'\'' => self.char_or_lifetime(start, line),
            b'r' | b'b' => {
                // Raw strings, byte strings, byte chars, raw idents —
                // or a plain identifier starting with r/b.
                let mut k = 1;
                if c == b'b' && self.peek(1) == b'r' {
                    k = 2;
                }
                let mut hashes = 0;
                while self.peek(k + hashes) == b'#' {
                    hashes += 1;
                }
                if (c == b'r' || k == 2) && self.peek(k + hashes) == b'"' {
                    for _ in 0..k + hashes {
                        self.bump();
                    }
                    self.raw_string_lit(start, line, hashes)
                } else if c == b'b' && k == 1 && self.peek(1) == b'"' {
                    self.bump();
                    self.string_lit(start, line)
                } else if c == b'b' && k == 1 && self.peek(1) == b'\'' {
                    self.bump();
                    self.char_or_lifetime(start, line)
                } else if c == b'r' && hashes == 1 && is_ident_start(self.peek(1 + hashes)) {
                    // Raw identifier `r#type`.
                    self.bump();
                    self.bump();
                    self.ident(start, line)
                } else {
                    self.bump();
                    self.ident(start, line)
                }
            }
            c if is_ident_start(c) => {
                self.bump();
                self.ident(start, line)
            }
            c if c.is_ascii_digit() => {
                self.bump();
                self.number(start, line)
            }
            _ => {
                self.bump();
                Token {
                    kind: TokenKind::Punct,
                    text: self.text_from(start),
                    line,
                }
            }
        };
        Some(token)
    }
}

/// Lex a whole source file into tokens (comments included — rules need
/// them for `SAFETY:` and waiver detection).
pub fn lex(source: &str) -> Vec<Token> {
    let mut lexer = Lexer {
        src: source.as_bytes(),
        pos: 0,
        line: 1,
    };
    let mut tokens = Vec::new();
    while let Some(t) = lexer.next_token() {
        tokens.push(t);
    }
    tokens
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let got = kinds("let x = y.unwrap();");
        assert_eq!(got[0], (TokenKind::Ident, "let".into()));
        assert_eq!(got[1], (TokenKind::Ident, "x".into()));
        assert_eq!(got[2], (TokenKind::Punct, "=".into()));
        assert_eq!(got[4], (TokenKind::Punct, ".".into()));
        assert_eq!(got[5], (TokenKind::Ident, "unwrap".into()));
    }

    #[test]
    fn nested_block_comments_stay_one_token() {
        let got = kinds("a /* outer /* inner */ still outer */ b");
        assert_eq!(got.len(), 3);
        assert_eq!(got[0].0, TokenKind::Ident);
        assert_eq!(got[1].0, TokenKind::BlockComment);
        assert_eq!(got[1].1, "/* outer /* inner */ still outer */");
        assert_eq!(got[2], (TokenKind::Ident, "b".into()));
    }

    #[test]
    fn raw_strings_swallow_quotes_and_hashes() {
        let got = kinds(r####"x = r#"contains "quotes" and \ slashes"# ;"####);
        assert_eq!(got[2].0, TokenKind::RawStrLit);
        assert!(got[2].1.contains("\"quotes\""));
        assert_eq!(got[3], (TokenKind::Punct, ";".into()));

        // Hash counts must match exactly: `"#` inside a `##` literal
        // does not close it.
        let got = kinds(r#####"r##"inner "# still"## done"#####);
        assert_eq!(got[0].0, TokenKind::RawStrLit);
        assert_eq!(got[1], (TokenKind::Ident, "done".into()));
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let got = kinds(r###"b"bytes" br#"raw bytes"# b'x'"###);
        assert_eq!(got[0].0, TokenKind::StrLit);
        assert_eq!(got[1].0, TokenKind::RawStrLit);
        assert_eq!(got[2].0, TokenKind::CharLit);
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let got = kinds("fn f<'a>(x: &'a str) { let c = 'a'; let s = 'static; }");
        let lifetimes: Vec<_> = got
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .map(|(_, t)| t.clone())
            .collect();
        let chars: Vec<_> = got
            .iter()
            .filter(|(k, _)| *k == TokenKind::CharLit)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(lifetimes, vec!["'a", "'a", "'static"]);
        assert_eq!(chars, vec!["'a'"]);
    }

    #[test]
    fn escaped_char_literals() {
        let got = kinds(r"let a = '\n'; let b = '\''; let c = '\x7F'; let d = ' ';");
        let chars: Vec<_> = got
            .iter()
            .filter(|(k, _)| *k == TokenKind::CharLit)
            .map(|(_, t)| t.clone())
            .collect();
        assert_eq!(chars, vec![r"'\n'", r"'\''", r"'\x7F'", "' '"]);
    }

    #[test]
    fn string_escapes_do_not_end_early() {
        let got = kinds(r#"x("quote \" inside", other)"#);
        assert_eq!(got[2].0, TokenKind::StrLit);
        assert_eq!(got[2].1, r#""quote \" inside""#);
        assert_eq!(got[4], (TokenKind::Ident, "other".into()));
    }

    #[test]
    fn raw_identifiers_lex_as_idents() {
        let got = kinds("let r#type = 1;");
        assert_eq!(got[1], (TokenKind::Ident, "r#type".into()));
    }

    #[test]
    fn numbers_including_ranges() {
        let got = kinds("0..10 1_000u64 0xFF 1.5e3");
        assert_eq!(got[0], (TokenKind::NumLit, "0".into()));
        assert_eq!(got[1], (TokenKind::Punct, ".".into()));
        assert_eq!(got[2], (TokenKind::Punct, ".".into()));
        assert_eq!(got[3], (TokenKind::NumLit, "10".into()));
        assert_eq!(got[4], (TokenKind::NumLit, "1_000u64".into()));
        assert_eq!(got[5], (TokenKind::NumLit, "0xFF".into()));
        assert_eq!(got[6].1, "1.5e3");
    }

    #[test]
    fn line_numbers_are_tracked_across_multiline_tokens() {
        let src = "a\n/* one\ntwo */\nb \"x\ny\" c";
        let toks = lex(src);
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2); // block comment starts on line 2
        assert_eq!(toks[2].line, 4); // b
        assert_eq!(toks[3].line, 4); // multi-line string starts here
        assert_eq!(toks[4].line, 5); // c, after the string's newline
    }

    #[test]
    fn unwrap_inside_strings_and_comments_is_not_an_ident() {
        let src = r##"
            // .unwrap() in a comment
            let s = "calls .unwrap() in a string";
            let r = r#"raw .expect(...)"#;
        "##;
        let idents: Vec<_> = lex(src)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect();
        assert!(!idents.contains(&"unwrap".to_string()));
        assert!(!idents.contains(&"expect".to_string()));
    }
}
