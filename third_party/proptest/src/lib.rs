//! Minimal, dependency-free stand-in for the [proptest] crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the *subset* of the proptest API that
//! `tests/properties.rs` uses: the [`Strategy`] trait with `prop_map`,
//! [`collection::vec`], [`string::string_regex`] (a small regex
//! subset), [`arbitrary::Arbitrary`] / [`prelude::any`] for primitive
//! types, tuples and byte arrays, and the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Generation is **deterministic**: each test function derives its RNG
//! seed from its `module_path!()` + name + case index, so failures are
//! reproducible across runs and machines. The number of cases per
//! property defaults to 64 and can be raised with the
//! `PROPTEST_CASES` environment variable.
//!
//! **Shrinking** follows the value's *provenance*: generation returns
//! a lazily-explored [`strategy::Shrinkable`] tree rooted at the
//! generated value, and on failure the runner greedily descends into
//! children that still fail ([`minimize_tree`]). Base strategies
//! (integers, vectors, tuples) shrink by binary search toward the
//! lower bound / shorter vectors, then element-wise. `prop_map`
//! shrinks by shrinking the *pre-image* and re-applying the map, and
//! `prop_oneof!` shrinks within the arm that generated the value — no
//! inverse function needed. Only `string_regex` values are reported
//! unshrunk.
//!
//! [proptest]: https://docs.rs/proptest

pub mod test_runner {
    /// Deterministic xorshift64* generator seeded from a string label
    /// and a case index.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn deterministic(label: &str, case: u64) -> Self {
            // FNV-1a over the label, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h ^= case.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            if h == 0 {
                h = 0x853c_49e6_748f_ea9b;
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            // xorshift64* (Vigna). Good enough for test-case generation.
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            // Modulo bias is irrelevant for test-case generation.
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A generated value together with a lazily-computed tree of
    /// simplifications — the provenance-aware counterpart of
    /// [`Strategy::shrink`] (upstream proptest's `ValueTree`).
    ///
    /// Where `shrink` can only simplify a value it is handed (so
    /// `prop_map` outputs could not shrink at all — their pre-image is
    /// unknown), a `Shrinkable` is built *during generation* and
    /// remembers how the value came to be: a mapped tree shrinks its
    /// pre-image and re-applies the map, a `prop_oneof!` tree shrinks
    /// within the arm that was chosen, a tuple tree shrinks one
    /// component tree at a time. Children are produced on demand so
    /// the exponentially large tree is never materialized.
    ///
    /// The `'a` lifetime ties the tree to the strategy that produced
    /// it (children thunks may consult the strategy for candidates).
    pub struct Shrinkable<'a, T> {
        /// The value at this node.
        pub value: T,
        children: Rc<dyn Fn() -> Vec<Shrinkable<'a, T>> + 'a>,
    }

    impl<'a, T: 'a> Shrinkable<'a, T> {
        /// A node whose shrink candidates come from `children`
        /// (most aggressive first, same contract as
        /// [`Strategy::shrink`]).
        pub fn new(value: T, children: impl Fn() -> Vec<Shrinkable<'a, T>> + 'a) -> Self {
            Shrinkable {
                value,
                children: Rc::new(children),
            }
        }

        /// A node with no simplifications.
        pub fn leaf(value: T) -> Self {
            Shrinkable::new(value, Vec::new)
        }

        /// Candidate simplifications of this node, most aggressive
        /// first.
        pub fn children(&self) -> Vec<Shrinkable<'a, T>> {
            (self.children)()
        }
    }

    impl<'a, T: Clone> Clone for Shrinkable<'a, T> {
        fn clone(&self) -> Self {
            Shrinkable {
                value: self.value.clone(),
                children: Rc::clone(&self.children),
            }
        }
    }

    impl<'a, T: Clone + 'static> Shrinkable<'a, T> {
        /// Wrap `value` in a tree whose candidates come from
        /// `strat.shrink`, recursively — the adapter that gives every
        /// plain [`Strategy`] (integers, vectors, `any`) a provenance
        /// tree for free.
        pub fn from_strategy<S>(strat: &'a S, value: T) -> Self
        where
            S: Strategy<Value = T> + ?Sized,
        {
            let probe = value.clone();
            Shrinkable {
                value,
                children: Rc::new(move || {
                    strat
                        .shrink(&probe)
                        .into_iter()
                        .map(|cand| Shrinkable::from_strategy(strat, cand))
                        .collect()
                }),
            }
        }
    }

    /// Map every value in `tree` through `f`, preserving the shrink
    /// structure of the pre-image — how `prop_map` shrinks.
    pub(crate) fn map_shrinkable<'a, T, U, F>(
        tree: Shrinkable<'a, T>,
        f: &'a F,
    ) -> Shrinkable<'a, U>
    where
        T: Clone + 'static,
        U: 'a,
        F: Fn(T) -> U,
    {
        let value = f(tree.value.clone());
        Shrinkable::new(value, move || {
            tree.children()
                .into_iter()
                .map(|child| map_shrinkable(child, f))
                .collect()
        })
    }

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Candidate simplifications of `value`, most aggressive
        /// first. The runner keeps any candidate that still fails and
        /// re-shrinks from there; an empty list ends shrinking. The
        /// default (no candidates) is correct for strategies with no
        /// meaningful simplification order (regex strings, `Just`);
        /// composite strategies (`prop_map`, `prop_oneof!`) instead
        /// override [`Strategy::generate_shrinkable`], which shrinks
        /// by provenance and does not need an inverse.
        fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
            Vec::new()
        }

        /// Generate a value wrapped in its shrink tree. Consumes the
        /// RNG exactly as [`Strategy::generate`] does, so the two are
        /// interchangeable for reproducing a case from its seed. The
        /// default adapts [`Strategy::shrink`]; strategies whose
        /// shrinking needs generation-time provenance (`prop_map`,
        /// `prop_oneof!`, tuples, vectors of such) override it.
        fn generate_shrinkable<'s>(&'s self, rng: &mut TestRng) -> Shrinkable<'s, Self::Value>
        where
            Self::Value: Clone + 'static,
        {
            let value = self.generate(rng);
            Shrinkable::from_strategy(self, value)
        }

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// Binary-search shrink candidates for an integer in `[lo, value]`:
    /// the lower bound, then `value - d` for `d` halving from
    /// `(value - lo) / 2` down to 1. Whichever side of the failure
    /// boundary the candidates land on, the greedy runner halves its
    /// distance to the boundary every round — O(log range) to the
    /// exact smallest failing value.
    macro_rules! int_shrink {
        ($lo:expr, $value:expr) => {{
            let lo = $lo;
            let value = $value;
            let mut out = Vec::new();
            if value > lo {
                out.push(lo);
                let mut d = (value - lo) / 2;
                while d > 0 {
                    out.push(value - d);
                    d /= 2;
                }
            }
            out
        }};
    }

    pub(crate) use int_shrink;

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        S::Value: Clone + 'static,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }

        /// Shrink by shrinking the pre-image and re-applying the map:
        /// the inner strategy's tree is generated alongside the value,
        /// so no inverse of `f` is needed.
        fn generate_shrinkable<'s>(&'s self, rng: &mut TestRng) -> Shrinkable<'s, U>
        where
            U: Clone + 'static,
        {
            map_shrinkable(self.inner.generate_shrinkable(rng), &self.f)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    int_shrink!(self.start, *value)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    int_shrink!(*self.start(), *value)
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    /// A strategy that always produces one value (upstream
    /// `proptest::strategy::Just`).
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// A uniform choice between boxed strategies of one value type —
    /// the strategy behind [`crate::prop_oneof!`].
    pub struct Union<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Build a union over `arms` (must be non-empty).
        pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.arms.len() as u64) as usize;
            self.arms[idx].generate(rng)
        }

        /// Shrink within the arm that generated the value: the choice
        /// is made here, so the chosen arm's own tree is the tree.
        /// (Values never migrate to another arm — a minimal
        /// counterexample stays the *kind* of value that failed.)
        fn generate_shrinkable<'s>(&'s self, rng: &mut TestRng) -> Shrinkable<'s, T>
        where
            T: Clone + 'static,
        {
            let idx = rng.below(self.arms.len() as u64) as usize;
            self.arms[idx].generate_shrinkable(rng)
        }
    }

    /// Tuples of strategies are strategies for tuples of their values
    /// (upstream behaviour; distinct from `any::<(A, B)>()`, which
    /// goes through `Arbitrary`). Shrinking simplifies one component
    /// at a time, holding the others fixed.
    macro_rules! impl_tuple_strategy {
        ($($S:ident => $idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+)
            where
                $($S::Value: Clone + 'static,)+
            {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
                fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                    let mut out = Vec::new();
                    $(
                        for cand in self.$idx.shrink(&value.$idx) {
                            let mut next = value.clone();
                            next.$idx = cand;
                            out.push(next);
                        }
                    )+
                    out
                }
                /// Component trees generated up front; shrink one
                /// component at a time (so e.g. a mapped component
                /// keeps its pre-image provenance inside the tuple).
                fn generate_shrinkable<'s>(
                    &'s self,
                    rng: &mut TestRng,
                ) -> Shrinkable<'s, Self::Value>
                where
                    Self::Value: Clone + 'static,
                {
                    // Nested item: the `$S` here are fresh generic
                    // *value* types, unrelated to the impl's strategy
                    // types of the same name.
                    fn combine<'a, $($S: Clone + 'static),+>(
                        parts: ($(Shrinkable<'a, $S>,)+),
                    ) -> Shrinkable<'a, ($($S,)+)> {
                        let value = ($(parts.$idx.value.clone(),)+);
                        Shrinkable::new(value, move || {
                            let mut out = Vec::new();
                            $(
                                for cand in parts.$idx.children() {
                                    let mut next = parts.clone();
                                    next.$idx = cand;
                                    out.push(combine(next));
                                }
                            )+
                            out
                        })
                    }
                    combine(($(self.$idx.generate_shrinkable(rng),)+))
                }
            }
        };
    }

    impl_tuple_strategy!(S0 => 0);
    impl_tuple_strategy!(S0 => 0, S1 => 1);
    impl_tuple_strategy!(S0 => 0, S1 => 1, S2 => 2);
    impl_tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3);
    impl_tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3, S4 => 4);
    impl_tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3, S4 => 4, S5 => 5);
    impl_tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3, S4 => 4, S5 => 5, S6 => 6);
    impl_tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3, S4 => 4, S5 => 5, S6 => 6, S7 => 7);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;

        /// Shrink candidates (see [`Strategy::shrink`]); defaults to
        /// none.
        fn shrink_value(&self) -> Vec<Self> {
            Vec::new()
        }
    }

    /// Strategy returned by [`crate::prelude::any`].
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }

        fn shrink(&self, value: &T) -> Vec<T> {
            value.shrink_value()
        }
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
                fn shrink_value(&self) -> Vec<$t> {
                    // Binary search toward 0: the range ladder with
                    // lo = 0 (one shared implementation, not a copy).
                    crate::strategy::int_shrink!(0, *self)
                }
            }
        )*};
    }

    macro_rules! impl_arbitrary_sint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
                fn shrink_value(&self) -> Vec<$t> {
                    // Binary search toward 0 from either side
                    // (descending-delta ladder; `d` carries the sign).
                    let v = *self;
                    let mut out = Vec::new();
                    if v != 0 {
                        out.push(0);
                        let mut d = v / 2;
                        while d != 0 {
                            out.push(v - d);
                            d /= 2;
                        }
                    }
                    out
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize);
    impl_arbitrary_sint!(i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
        fn shrink_value(&self) -> Vec<bool> {
            if *self {
                vec![false]
            } else {
                Vec::new()
            }
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> [T; N] {
            core::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    macro_rules! impl_arbitrary_tuple {
        ($($name:ident => $idx:tt),+) => {
            impl<$($name: Arbitrary + Clone),+> Arbitrary for ($($name,)+) {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    ($($name::arbitrary(rng),)+)
                }
                fn shrink_value(&self) -> Vec<Self> {
                    let mut out = Vec::new();
                    $(
                        for cand in self.$idx.shrink_value() {
                            let mut next = self.clone();
                            next.$idx = cand;
                            out.push(next);
                        }
                    )+
                    out
                }
            }
        };
    }

    impl_arbitrary_tuple!(A => 0);
    impl_arbitrary_tuple!(A => 0, B => 1);
    impl_arbitrary_tuple!(A => 0, B => 1, C => 2);
    impl_arbitrary_tuple!(A => 0, B => 1, C => 2, D => 3);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Number-of-elements bound accepted by [`vec`].
    pub struct SizeRange {
        min: usize,
        /// Inclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec`: a `Vec` of values from `elem`
    /// whose length lies in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    /// Cap for element-wise shrinking: beyond this length only the
    /// length itself shrinks (keeps the candidate count bounded).
    const ELEMENT_SHRINK_MAX_LEN: usize = 32;

    /// The vec shrink ladder over element *trees* instead of element
    /// values: same candidate order as [`VecStrategy::shrink`]
    /// (length binary search, per-index removal, element-wise), but
    /// each surviving element shrinks through its own provenance tree
    /// — so a `vec(mapped_strategy, ..)` shrinks its elements too.
    fn vec_shrinkable<'a, T: Clone + 'static>(
        min: usize,
        elems: Vec<crate::strategy::Shrinkable<'a, T>>,
    ) -> crate::strategy::Shrinkable<'a, Vec<T>> {
        use crate::strategy::Shrinkable;
        let value: Vec<T> = elems.iter().map(|e| e.value.clone()).collect();
        Shrinkable::new(value, move || {
            let len = elems.len();
            let mut out = Vec::new();
            if len > min {
                out.push(vec_shrinkable(min, elems[..min].to_vec()));
                let mut d = (len - min) / 2;
                while d > 0 {
                    out.push(vec_shrinkable(min, elems[..len - d].to_vec()));
                    d /= 2;
                }
            }
            if len <= ELEMENT_SHRINK_MAX_LEN {
                if len > min {
                    for i in 0..len {
                        let mut next = elems.clone();
                        next.remove(i);
                        out.push(vec_shrinkable(min, next));
                    }
                }
                for (i, elem) in elems.iter().enumerate() {
                    for cand in elem.children() {
                        let mut next = elems.clone();
                        next[i] = cand;
                        out.push(vec_shrinkable(min, next));
                    }
                }
            }
            out
        })
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone + 'static,
    {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + rng.below(span + 1) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }

        fn generate_shrinkable<'s>(
            &'s self,
            rng: &mut TestRng,
        ) -> crate::strategy::Shrinkable<'s, Vec<S::Value>>
        where
            Vec<S::Value>: Clone + 'static,
        {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + rng.below(span + 1) as usize;
            let elems = (0..len)
                .map(|_| self.elem.generate_shrinkable(rng))
                .collect();
            vec_shrinkable(self.size.min, elems)
        }

        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            let len = value.len();
            let min = self.size.min;
            // Binary search on the length (drop the tail): the
            // shortest allowed prefix, then prefixes shortened by a
            // halving delta — the same ladder as the integer shrink.
            if len > min {
                out.push(value[..min].to_vec());
                let mut d = (len - min) / 2;
                while d > 0 {
                    out.push(value[..len - d].to_vec());
                    d /= 2;
                }
            }
            // Per-index removal (prefix truncation alone cannot drop a
            // leading non-witness element), then element-wise shrink.
            if len <= ELEMENT_SHRINK_MAX_LEN {
                if len > min {
                    for i in 0..len {
                        let mut next = value.clone();
                        next.remove(i);
                        out.push(next);
                    }
                }
                for (i, elem) in value.iter().enumerate() {
                    for cand in self.elem.shrink(elem) {
                        let mut next = value.clone();
                        next[i] = cand;
                        out.push(next);
                    }
                }
            }
            out
        }
    }
}

pub mod string {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Error returned by [`string_regex`] for unsupported patterns.
    #[derive(Debug)]
    pub struct Error(pub String);

    enum Atom {
        /// One of these characters.
        Class(Vec<char>),
        /// Exactly this character.
        Literal(char),
    }

    struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    pub struct RegexGeneratorStrategy {
        pieces: Vec<Piece>,
    }

    /// `proptest::string::string_regex`: strings matching a *subset*
    /// of regex syntax — literal characters, `[...]` classes with
    /// ranges (and a literal `-` last), and `{m,n}` / `{n}` / `?` /
    /// `*` / `+` quantifiers (`*`/`+` capped at 8 repetitions).
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
        let mut chars = pattern.chars().peekable();
        let mut pieces = Vec::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '[' => {
                    let mut class = Vec::new();
                    let mut prev: Option<char> = None;
                    loop {
                        match chars.next() {
                            None => {
                                return Err(Error(format!("unterminated class in {pattern:?}")))
                            }
                            Some(']') => break,
                            Some('-') => match (prev, chars.peek()) {
                                (Some(lo), Some(&hi)) if hi != ']' => {
                                    chars.next();
                                    for r in (lo as u32 + 1)..=(hi as u32) {
                                        class.push(char::from_u32(r).unwrap());
                                    }
                                    prev = None;
                                }
                                _ => {
                                    class.push('-');
                                    prev = Some('-');
                                }
                            },
                            Some(other) => {
                                class.push(other);
                                prev = Some(other);
                            }
                        }
                    }
                    if class.is_empty() {
                        return Err(Error(format!("empty class in {pattern:?}")));
                    }
                    Atom::Class(class)
                }
                '\\' => match chars.next() {
                    Some(escaped) => Atom::Literal(escaped),
                    None => return Err(Error(format!("dangling escape in {pattern:?}"))),
                },
                '(' | ')' | '|' | '.' | '^' | '$' => {
                    return Err(Error(format!(
                        "unsupported regex feature {c:?} in {pattern:?}"
                    )))
                }
                other => Atom::Literal(other),
            };
            let (min, max) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let mut spec = String::new();
                    for q in chars.by_ref() {
                        if q == '}' {
                            break;
                        }
                        spec.push(q);
                    }
                    let parse = |s: &str| {
                        s.parse::<usize>()
                            .map_err(|_| Error(format!("bad quantifier {spec:?} in {pattern:?}")))
                    };
                    match spec.split_once(',') {
                        Some((lo, hi)) => (parse(lo)?, parse(hi)?),
                        None => {
                            let n = parse(&spec)?;
                            (n, n)
                        }
                    }
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                Some('+') => {
                    chars.next();
                    (1, 8)
                }
                _ => (1, 1),
            };
            pieces.push(Piece { atom, min, max });
        }
        Ok(RegexGeneratorStrategy { pieces })
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for piece in &self.pieces {
                let span = (piece.max - piece.min) as u64;
                let reps = piece.min + rng.below(span + 1) as usize;
                for _ in 0..reps {
                    match &piece.atom {
                        Atom::Literal(c) => out.push(*c),
                        Atom::Class(class) => {
                            out.push(class[rng.below(class.len() as u64) as usize])
                        }
                    }
                }
            }
            out
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{Any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    use core::marker::PhantomData;

    /// The canonical strategy for "any value of type `T`".
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Number of cases to run per property (default 64, override with the
/// `PROPTEST_CASES` environment variable).
pub fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Budget of candidate evaluations per failing case — shrinking is
/// O(log range) per component, so this is generous while still
/// bounding adversarial strategies.
const SHRINK_BUDGET: usize = 1024;

/// Greedily minimize `failing` under `fails`: repeatedly take the
/// first [`Strategy::shrink`] candidate that still fails, until no
/// candidate does (a local minimum) or the budget runs out. With the
/// binary-search candidate lists of the integer/vec strategies this
/// converges to the exact boundary value.
pub fn minimize<S: strategy::Strategy>(
    strat: &S,
    mut failing: S::Value,
    fails: &dyn Fn(&S::Value) -> bool,
) -> S::Value {
    let mut budget = SHRINK_BUDGET;
    'outer: while budget > 0 {
        for cand in strat.shrink(&failing) {
            if budget == 0 {
                break 'outer;
            }
            budget -= 1;
            if fails(&cand) {
                failing = cand;
                continue 'outer;
            }
        }
        break; // local minimum: no candidate still fails
    }
    failing
}

/// Greedily minimize a failing [`strategy::Shrinkable`] under `fails`:
/// repeatedly descend into the first child that still fails, until no
/// child does (a local minimum) or the budget runs out. Because trees
/// carry provenance, this shrinks through `prop_map` and within
/// `prop_oneof!` arms — cases [`minimize`] cannot touch.
pub fn minimize_tree<'a, T: Clone + 'a>(
    mut tree: strategy::Shrinkable<'a, T>,
    fails: &dyn Fn(&T) -> bool,
) -> T {
    let mut budget = SHRINK_BUDGET;
    'outer: while budget > 0 {
        for cand in tree.children() {
            if budget == 0 {
                break 'outer;
            }
            budget -= 1;
            if fails(&cand.value) {
                tree = cand;
                continue 'outer;
            }
        }
        break; // local minimum: no candidate still fails
    }
    tree.value
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Drive one property: generate `cases()` inputs, and on the first
/// failure shrink it to a minimal failing input (suppressing the panic
/// hook while probing candidates) and fail the test with both the
/// minimized input and the underlying assertion message.
pub fn run_property<S, F>(label: &str, strat: S, test: F)
where
    S: strategy::Strategy,
    S::Value: Clone + core::fmt::Debug + 'static,
    F: Fn(S::Value),
{
    let fails = |v: &S::Value| {
        let v = v.clone();
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| test(v))).is_err()
    };
    for case in 0..cases() {
        let mut rng = test_runner::TestRng::deterministic(label, case);
        // The shrink tree consumes the RNG exactly as `generate`
        // would, so cases match plain generation seed-for-seed.
        let tree = strat.generate_shrinkable(&mut rng);
        // The passing path never touches the global panic hook, so the
        // common case is race-free under parallel libtest threads (the
        // original failure prints once through the default hook, which
        // libtest captures).
        if !fails(&tree.value) {
            continue;
        }
        // Shrink quietly: the default hook would print a backtrace for
        // every failing candidate. The hook is process-global, so the
        // swap/restore pair is serialized across concurrently failing
        // property tests — otherwise interleaved take/set could leave
        // the silent hook installed for the rest of the process.
        static HOOK_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let guard = HOOK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let minimal = minimize_tree(tree, &fails);
        // One more run of the minimal case to capture its message.
        let msg = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| test(minimal.clone())))
            .err()
            .map(|p| panic_message(p.as_ref()))
            .unwrap_or_else(|| "test stopped failing during shrink re-run".into());
        std::panic::set_hook(prev_hook);
        drop(guard);
        panic!(
            "{label}: case {case} failed.\n\
             minimal failing input (after shrinking): {minimal:?}\n\
             caused by: {msg}"
        );
    }
}

/// Defines property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over deterministically
/// generated inputs, shrinking failures to minimal counterexamples.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            $crate::run_property(
                concat!(module_path!(), "::", stringify!($name)),
                ($($strat,)+),
                |($($arg,)+)| $body,
            );
        }
    )*};
}

/// Uniform choice between strategies producing one value type
/// (upstream `prop_oneof!`, unweighted arms only).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$(
            {
                let boxed: ::std::boxed::Box<
                    dyn $crate::strategy::Strategy<Value = _>,
                > = ::std::boxed::Box::new($strat);
                boxed
            }
        ),+])
    };
}

/// `assert!` under a name the proptest API exposes inside properties.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a name the proptest API exposes inside properties.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a name the proptest API exposes inside properties.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_rng_is_stable_across_calls() {
        let mut a = crate::test_runner::TestRng::deterministic("label", 3);
        let mut b = crate::test_runner::TestRng::deterministic("label", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::deterministic("label", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn string_regex_subset_matches_shape() {
        let strat = crate::string::string_regex("[a-z0-9][a-z0-9-]{0,20}").unwrap();
        let mut rng = crate::test_runner::TestRng::deterministic("regex", 0);
        for _ in 0..200 {
            let s = strat.generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 21, "bad length: {s:?}");
            let mut chars = s.chars();
            let first = chars.next().unwrap();
            assert!(first.is_ascii_lowercase() || first.is_ascii_digit());
            assert!(chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'));
        }
    }

    proptest! {
        #[test]
        fn vec_strategy_respects_bounds(v in crate::collection::vec(any::<u8>(), 2..=5)) {
            prop_assert!(v.len() >= 2 && v.len() <= 5);
        }

        #[test]
        fn range_strategy_in_bounds(x in 10u32..20, y in 3usize..=3) {
            prop_assert!((10..20).contains(&x));
            prop_assert_eq!(y, 3);
        }
    }

    // ---- shrinking self-tests -------------------------------------

    /// Integer shrinking binary-searches to the exact failure
    /// boundary: the smallest value satisfying the failing predicate.
    #[test]
    fn integer_shrink_finds_exact_boundary() {
        let strat = 0u32..1000;
        let fails = |v: &u32| *v >= 57;
        let minimal = crate::minimize(&strat, 913, &fails);
        assert_eq!(minimal, 57);
        // Offset ranges shrink toward their own lower bound.
        let strat = 100u32..=1000;
        let fails = |v: &u32| *v >= 100; // everything fails
        assert_eq!(crate::minimize(&strat, 700, &fails), 100);
        // `any` integers shrink toward zero, signed from both sides.
        let strat = any::<i32>();
        assert_eq!(crate::minimize(&strat, -800, &|v: &i32| *v <= -13), -13);
        assert_eq!(crate::minimize(&strat, 800, &|v: &i32| *v >= 13), 13);
    }

    /// Vec shrinking binary-searches the length down to the minimal
    /// failing length, then shrinks the surviving elements.
    #[test]
    fn vec_shrink_minimizes_length_and_elements() {
        let strat = crate::collection::vec(0u32..1000, 0..50);
        // Fails whenever there are ≥ 3 elements: minimal length is 3.
        let start: Vec<u32> = (0..40).map(|i| i * 7 + 3).collect();
        let minimal = crate::minimize(&strat, start, &|v: &Vec<u32>| v.len() >= 3);
        assert_eq!(minimal.len(), 3);
        // Fails while any element ≥ 500: single smallest witness.
        let minimal = crate::minimize(&strat, vec![3, 999, 4, 800, 5], &|v: &Vec<u32>| {
            v.iter().any(|&x| x >= 500)
        });
        assert_eq!(minimal, vec![500]);
    }

    /// Tuple strategies shrink one component at a time.
    #[test]
    fn tuple_shrink_minimizes_each_component() {
        let strat = (0u32..100, crate::collection::vec(any::<u8>(), 0..20));
        let fails = |v: &(u32, Vec<u8>)| v.0 >= 7 && v.1.len() >= 2;
        let minimal = crate::minimize(&strat, (93, vec![1; 17]), &fails);
        assert_eq!(minimal.0, 7);
        assert_eq!(minimal.1.len(), 2);
    }

    /// Shrink candidate lists are well-formed: aggressive-first, never
    /// containing the value itself, empty at the lower bound.
    #[test]
    fn shrink_candidates_are_well_formed() {
        use crate::strategy::Strategy;
        let strat = 5u32..100;
        assert_eq!(strat.shrink(&5), Vec::<u32>::new());
        let cands = strat.shrink(&80);
        assert_eq!(cands, vec![5, 43, 62, 71, 76, 78, 79]);
        let vstrat = crate::collection::vec(any::<u8>(), 1..10);
        // At the minimum length only the elements shrink.
        assert!(vstrat.shrink(&vec![9]).iter().all(|c| c.len() == 1));
        assert!(vstrat.shrink(&vec![0]).is_empty());
        let cands = vstrat.shrink(&vec![200, 200, 200, 200, 200]);
        assert_eq!(cands[0], vec![200]); // min-length prefix first
        assert!(cands.iter().all(|c| c != &vec![200u8; 5]));
    }

    /// End-to-end through the macro: a failing property panics with
    /// the *minimized* counterexample in the message.
    #[test]
    fn failing_property_reports_minimal_input() {
        proptest! {
            fn inner_failing_property(v in crate::collection::vec(0u32..1000, 0..40)) {
                // "Bug": sums ≥ 1000 are mishandled. The minimal
                // failing input is a single element ≥ 1000… which the
                // element range forbids, so the true minimum is a
                // short vector summing to just ≥ 1000.
                prop_assert!(v.iter().map(|&x| x as u64).sum::<u64>() < 1000);
            }
        }
        let err = std::panic::catch_unwind(inner_failing_property).expect_err("property must fail");
        let msg = crate::panic_message(err.as_ref());
        assert!(
            msg.contains("minimal failing input"),
            "message must carry the shrink report: {msg}"
        );
        // The counterexample survived minimization: parse the reported
        // vector and check it is tight (removing any element drops the
        // sum below the failure threshold).
        let start = msg.find('[').expect("vector in message");
        let end = msg[start..].find(']').expect("vector in message") + start;
        let v: Vec<u64> = msg[start + 1..end]
            .split(',')
            .filter(|s| !s.trim().is_empty())
            .map(|s| s.trim().parse().expect("integer"))
            .collect();
        let sum: u64 = v.iter().sum();
        assert!(sum >= 1000, "reported input must still fail: {v:?}");
        for i in 0..v.len() {
            let without: u64 = sum - v[i];
            assert!(
                without < 1000,
                "dropping element {i} still fails — not minimal: {v:?}"
            );
        }
    }

    // ---- provenance (tree) shrinking self-tests -------------------

    /// A `prop_map`ed value shrinks by shrinking its pre-image: the
    /// minimal failing output is the image of the minimal failing
    /// input, found without any inverse of the map.
    #[test]
    fn mapped_strategy_shrinks_through_the_map() {
        use crate::strategy::Strategy;
        let strat = (0u32..1000).prop_map(|x| x * 2 + 1);
        let fails = |v: &u32| *v >= 101; // x >= 50, minimal image 101
        for case in 0..64 {
            let mut rng = crate::test_runner::TestRng::deterministic("map-shrink", case);
            let tree = strat.generate_shrinkable(&mut rng);
            if !fails(&tree.value) {
                continue;
            }
            let minimal = crate::minimize_tree(tree, &fails);
            assert_eq!(minimal, 101, "exact boundary through the map");
            return;
        }
        panic!("no failing case generated in 64 tries");
    }

    /// `prop_oneof!` shrinks within the arm that generated the value:
    /// a failing value from the high arm bottoms out at that arm's
    /// lower bound, never migrating into the other arm's range.
    #[test]
    fn oneof_shrinks_within_the_chosen_arm() {
        use crate::strategy::Strategy;
        let strat = crate::prop_oneof![500u32..1000, 0u32..100];
        let fails = |v: &u32| *v >= 50;
        let (mut high_seen, mut low_seen) = (false, false);
        for case in 0..200 {
            let mut rng = crate::test_runner::TestRng::deterministic("oneof-shrink", case);
            let tree = strat.generate_shrinkable(&mut rng);
            let original = tree.value;
            if !fails(&original) {
                continue;
            }
            let minimal = crate::minimize_tree(tree, &fails);
            if original >= 500 {
                assert_eq!(minimal, 500, "high arm bottoms out at its lower bound");
                high_seen = true;
            } else {
                assert_eq!(minimal, 50, "low arm reaches the exact boundary");
                low_seen = true;
            }
        }
        assert!(high_seen && low_seen, "both arms must be exercised");
    }

    /// Elements of a `vec(mapped, ..)` shrink too: the tree carries
    /// each element's pre-image, so the witness minimizes to the
    /// smallest failing image in the shortest failing vector.
    #[test]
    fn vec_of_mapped_elements_shrinks_elementwise() {
        use crate::strategy::Strategy;
        let strat = crate::collection::vec((0u32..1000).prop_map(|x| x * 2), 0..30);
        let fails = |v: &Vec<u32>| v.iter().any(|&x| x >= 500); // x*2>=500 → minimal 500
        for case in 0..64 {
            let mut rng = crate::test_runner::TestRng::deterministic("vec-map-shrink", case);
            let tree = strat.generate_shrinkable(&mut rng);
            if !fails(&tree.value) {
                continue;
            }
            let minimal = crate::minimize_tree(tree, &fails);
            assert_eq!(minimal, vec![500], "single minimal mapped witness");
            return;
        }
        panic!("no failing case generated in 64 tries");
    }

    /// End-to-end through the macro: a failing property over a mapped
    /// strategy panics with the exactly-minimized counterexample.
    #[test]
    fn failing_mapped_property_reports_minimal_input() {
        proptest! {
            fn inner_mapped_failing(v in (0u32..10_000).prop_map(|x| x * 3)) {
                prop_assert!(v < 300); // x >= 100 fails, minimal image 300
            }
        }
        let err = std::panic::catch_unwind(inner_mapped_failing).expect_err("property must fail");
        let msg = crate::panic_message(err.as_ref());
        assert!(
            msg.contains("minimal failing input (after shrinking): (300,)"),
            "mapped counterexample must minimize to the boundary: {msg}"
        );
    }
}
