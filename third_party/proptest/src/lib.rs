//! Minimal, dependency-free stand-in for the [proptest] crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the *subset* of the proptest API that
//! `tests/properties.rs` uses: the [`Strategy`] trait with `prop_map`,
//! [`collection::vec`], [`string::string_regex`] (a small regex
//! subset), [`arbitrary::Arbitrary`] / [`prelude::any`] for primitive
//! types, tuples and byte arrays, and the [`proptest!`] /
//! [`prop_assert!`] / [`prop_assert_eq!`] macros.
//!
//! Generation is **deterministic**: each test function derives its RNG
//! seed from its `module_path!()` + name + case index, so failures are
//! reproducible across runs and machines. The number of cases per
//! property defaults to 64 and can be raised with the
//! `PROPTEST_CASES` environment variable. Shrinking is not
//! implemented — a failing case panics with the assertion message of
//! the underlying `assert!`.
//!
//! [proptest]: https://docs.rs/proptest

pub mod test_runner {
    /// Deterministic xorshift64* generator seeded from a string label
    /// and a case index.
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn deterministic(label: &str, case: u64) -> Self {
            // FNV-1a over the label, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in label.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            h ^= case.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            if h == 0 {
                h = 0x853c_49e6_748f_ea9b;
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            // xorshift64* (Vigna). Good enough for test-case generation.
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }

        /// Uniform value in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            // Modulo bias is irrelevant for test-case generation.
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize);

    /// A strategy that always produces one value (upstream
    /// `proptest::strategy::Just`).
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// A uniform choice between boxed strategies of one value type —
    /// the strategy behind [`crate::prop_oneof!`].
    pub struct Union<T> {
        arms: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// Build a union over `arms` (must be non-empty).
        pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.arms.len() as u64) as usize;
            self.arms[idx].generate(rng)
        }
    }

    /// Tuples of strategies are strategies for tuples of their values
    /// (upstream behaviour; distinct from `any::<(A, B)>()`, which
    /// goes through `Arbitrary`).
    macro_rules! impl_tuple_strategy {
        ($($S:ident => $idx:tt),+) => {
            impl<$($S: Strategy),+> Strategy for ($($S,)+) {
                type Value = ($($S::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(S0 => 0);
    impl_tuple_strategy!(S0 => 0, S1 => 1);
    impl_tuple_strategy!(S0 => 0, S1 => 1, S2 => 2);
    impl_tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3);
    impl_tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3, S4 => 4);
    impl_tuple_strategy!(S0 => 0, S1 => 1, S2 => 2, S3 => 3, S4 => 4, S5 => 5);
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use core::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// Strategy returned by [`crate::prelude::any`].
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
        fn arbitrary(rng: &mut TestRng) -> [T; N] {
            core::array::from_fn(|_| T::arbitrary(rng))
        }
    }

    macro_rules! impl_arbitrary_tuple {
        ($($name:ident),+) => {
            impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    ($($name::arbitrary(rng),)+)
                }
            }
        };
    }

    impl_arbitrary_tuple!(A);
    impl_arbitrary_tuple!(A, B);
    impl_arbitrary_tuple!(A, B, C);
    impl_arbitrary_tuple!(A, B, C, D);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Number-of-elements bound accepted by [`vec`].
    pub struct SizeRange {
        min: usize,
        /// Inclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec`: a `Vec` of values from `elem`
    /// whose length lies in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + rng.below(span + 1) as usize;
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

pub mod string {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Error returned by [`string_regex`] for unsupported patterns.
    #[derive(Debug)]
    pub struct Error(pub String);

    enum Atom {
        /// One of these characters.
        Class(Vec<char>),
        /// Exactly this character.
        Literal(char),
    }

    struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    pub struct RegexGeneratorStrategy {
        pieces: Vec<Piece>,
    }

    /// `proptest::string::string_regex`: strings matching a *subset*
    /// of regex syntax — literal characters, `[...]` classes with
    /// ranges (and a literal `-` last), and `{m,n}` / `{n}` / `?` /
    /// `*` / `+` quantifiers (`*`/`+` capped at 8 repetitions).
    pub fn string_regex(pattern: &str) -> Result<RegexGeneratorStrategy, Error> {
        let mut chars = pattern.chars().peekable();
        let mut pieces = Vec::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '[' => {
                    let mut class = Vec::new();
                    let mut prev: Option<char> = None;
                    loop {
                        match chars.next() {
                            None => {
                                return Err(Error(format!("unterminated class in {pattern:?}")))
                            }
                            Some(']') => break,
                            Some('-') => match (prev, chars.peek()) {
                                (Some(lo), Some(&hi)) if hi != ']' => {
                                    chars.next();
                                    for r in (lo as u32 + 1)..=(hi as u32) {
                                        class.push(char::from_u32(r).unwrap());
                                    }
                                    prev = None;
                                }
                                _ => {
                                    class.push('-');
                                    prev = Some('-');
                                }
                            },
                            Some(other) => {
                                class.push(other);
                                prev = Some(other);
                            }
                        }
                    }
                    if class.is_empty() {
                        return Err(Error(format!("empty class in {pattern:?}")));
                    }
                    Atom::Class(class)
                }
                '\\' => match chars.next() {
                    Some(escaped) => Atom::Literal(escaped),
                    None => return Err(Error(format!("dangling escape in {pattern:?}"))),
                },
                '(' | ')' | '|' | '.' | '^' | '$' => {
                    return Err(Error(format!(
                        "unsupported regex feature {c:?} in {pattern:?}"
                    )))
                }
                other => Atom::Literal(other),
            };
            let (min, max) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let mut spec = String::new();
                    for q in chars.by_ref() {
                        if q == '}' {
                            break;
                        }
                        spec.push(q);
                    }
                    let parse = |s: &str| {
                        s.parse::<usize>()
                            .map_err(|_| Error(format!("bad quantifier {spec:?} in {pattern:?}")))
                    };
                    match spec.split_once(',') {
                        Some((lo, hi)) => (parse(lo)?, parse(hi)?),
                        None => {
                            let n = parse(&spec)?;
                            (n, n)
                        }
                    }
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                Some('+') => {
                    chars.next();
                    (1, 8)
                }
                _ => (1, 1),
            };
            pieces.push(Piece { atom, min, max });
        }
        Ok(RegexGeneratorStrategy { pieces })
    }

    impl Strategy for RegexGeneratorStrategy {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            for piece in &self.pieces {
                let span = (piece.max - piece.min) as u64;
                let reps = piece.min + rng.below(span + 1) as usize;
                for _ in 0..reps {
                    match &piece.atom {
                        Atom::Literal(c) => out.push(*c),
                        Atom::Class(class) => {
                            out.push(class[rng.below(class.len() as u64) as usize])
                        }
                    }
                }
            }
            out
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::{Any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
    use core::marker::PhantomData;

    /// The canonical strategy for "any value of type `T`".
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Number of cases to run per property (default 64, override with the
/// `PROPTEST_CASES` environment variable).
pub fn cases() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Defines property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over deterministically
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {$(
        $(#[$meta])*
        fn $name() {
            for case in 0..$crate::cases() {
                let mut rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    case,
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                $body
            }
        }
    )*};
}

/// Uniform choice between strategies producing one value type
/// (upstream `prop_oneof!`, unweighted arms only).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$(
            {
                let boxed: ::std::boxed::Box<
                    dyn $crate::strategy::Strategy<Value = _>,
                > = ::std::boxed::Box::new($strat);
                boxed
            }
        ),+])
    };
}

/// `assert!` under a name the proptest API exposes inside properties.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `assert_eq!` under a name the proptest API exposes inside properties.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `assert_ne!` under a name the proptest API exposes inside properties.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_rng_is_stable_across_calls() {
        let mut a = crate::test_runner::TestRng::deterministic("label", 3);
        let mut b = crate::test_runner::TestRng::deterministic("label", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::deterministic("label", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn string_regex_subset_matches_shape() {
        let strat = crate::string::string_regex("[a-z0-9][a-z0-9-]{0,20}").unwrap();
        let mut rng = crate::test_runner::TestRng::deterministic("regex", 0);
        for _ in 0..200 {
            let s = strat.generate(&mut rng);
            assert!(!s.is_empty() && s.len() <= 21, "bad length: {s:?}");
            let mut chars = s.chars();
            let first = chars.next().unwrap();
            assert!(first.is_ascii_lowercase() || first.is_ascii_digit());
            assert!(chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '-'));
        }
    }

    proptest! {
        #[test]
        fn vec_strategy_respects_bounds(v in crate::collection::vec(any::<u8>(), 2..=5)) {
            prop_assert!(v.len() >= 2 && v.len() <= 5);
        }

        #[test]
        fn range_strategy_in_bounds(x in 10u32..20, y in 3usize..=3) {
            prop_assert!((10..20).contains(&x));
            prop_assert_eq!(y, 3);
        }
    }
}
