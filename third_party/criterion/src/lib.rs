//! Minimal, dependency-free stand-in for the [criterion] crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the *subset* of the criterion API that the
//! `crates/bench/benches/*.rs` targets use: [`Criterion`],
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! [`Throughput`], the [`Bencher::iter`] timing loop, and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is intentionally simple: each benchmark is warmed up
//! briefly, then timed over enough iterations to fill a fixed
//! measurement window (`CRITERION_MEASURE_MS`, default 200 ms; warm-up
//! `CRITERION_WARMUP_MS`, default 50 ms), and the mean ns/iter plus
//! derived throughput is printed. There are no statistics, plots, or
//! baselines — swap in the real criterion when a registry is
//! available; the bench sources need no change.
//!
//! [criterion]: https://docs.rs/criterion

use std::time::{Duration, Instant};

pub use std::hint::black_box;

fn env_ms(var: &str, default_ms: u64) -> Duration {
    Duration::from_millis(
        std::env::var(var)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default_ms),
    )
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// The timing loop handed to `bench_function` closures.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    measure: Duration,
    warmup: Duration,
}

impl Bencher {
    /// Calls `routine` repeatedly (after a short warm-up) until the
    /// measurement window is filled, recording total wall time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        while warmup_start.elapsed() < self.warmup {
            black_box(routine());
            warmup_iters += 1;
        }
        // Scale the measured batch from the observed warm-up rate so we
        // call Instant::now() once per batch, not once per iteration.
        let per_iter = warmup_start.elapsed().as_nanos().max(1) / u128::from(warmup_iters.max(1));
        let batch =
            (self.measure.as_nanos() / per_iter.max(1)).clamp(1, u128::from(u64::MAX)) as u64;
        let start = Instant::now();
        for _ in 0..batch {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iters_done = batch;
    }
}

/// Entry point: collects and runs benchmarks, printing one line per
/// benchmark.
pub struct Criterion {
    measure: Duration,
    warmup: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measure: env_ms("CRITERION_MEASURE_MS", 200),
            warmup: env_ms("CRITERION_WARMUP_MS", 50),
        }
    }
}

impl Criterion {
    fn run_one(&mut self, id: &str, throughput: Option<Throughput>, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            iters_done: 0,
            elapsed: Duration::ZERO,
            measure: self.measure,
            warmup: self.warmup,
        };
        f(&mut b);
        if b.iters_done == 0 {
            println!("{id:<44} (no iterations recorded)");
            return;
        }
        let ns_per_iter = b.elapsed.as_nanos() as f64 / b.iters_done as f64;
        let rate = match throughput {
            Some(Throughput::Bytes(n)) => {
                let mib_s = n as f64 / ns_per_iter * 1e9 / (1024.0 * 1024.0);
                format!("  {mib_s:>10.1} MiB/s")
            }
            Some(Throughput::Elements(n)) => {
                let elem_s = n as f64 / ns_per_iter * 1e9;
                format!("  {elem_s:>10.0} elem/s")
            }
            None => String::new(),
        };
        println!("{id:<44} {ns_per_iter:>12.1} ns/iter{rate}");
    }

    pub fn bench_function(
        &mut self,
        id: impl AsRef<str>,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        self.run_one(id.as_ref(), None, f);
        self
    }

    /// Starts a named group whose benchmarks can carry a
    /// [`Throughput`] annotation.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl AsRef<str>,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.as_ref());
        let throughput = self.throughput;
        self.criterion.run_one(&full, throughput, f);
        self
    }

    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares the benchmark `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_iterations() {
        std::env::set_var("CRITERION_MEASURE_MS", "5");
        std::env::set_var("CRITERION_WARMUP_MS", "1");
        let mut c = Criterion::default();
        let mut ran = 0u64;
        c.bench_function("smoke", |b| b.iter(|| ran += 1));
        assert!(ran > 0);
    }
}
