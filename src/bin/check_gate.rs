//! `check_gate` — the model-checking CI gate: exhaustively explores
//! bounded thread interleavings of the workspace's *real* concurrency
//! primitives (`SpmcRing`, `WorkerDeque`, the pool's `Park` wakeup
//! protocol, `ShardedCache`/`ShardedResponseCache`, the proxy's atomic
//! stats) via `doc-check` and fails with a replayable minimal schedule
//! on any panic, deadlock, or live-lock.
//!
//! With no arguments every model runs under the default bounds,
//! exiting 0 on a clean exploration and 2 with a full failure report
//! (cause, minimal schedule, replay command) otherwise. `./ci.sh
//! check` invokes exactly this.
//!
//! ```text
//! check_gate [--model NAME] [--schedule 0-1-0] [--list]
//!            [--max-schedules N] [--preemption-bound N]
//! ```
//!
//! `--schedule` replays one exact interleaving of one `--model` — the
//! line a failure report prints is copy-pasteable back into this
//! binary.

use std::process::ExitCode;

use doc_check::sync::atomic::{AtomicU64, Ordering};
use doc_check::sync::Arc;
use doc_check::{explore, replay, thread, Config, Schedule};
use doc_coap::cache::{cache_key, Lookup};
use doc_coap::msg::{CoapMessage, Code, MsgType};
use doc_coap::opt::{CoapOption, OptionNumber};
use doc_coap::shard::{ShardedCache, ShardedResponseCache};
use doc_core::method::{build_request, DocMethod};
use doc_core::pool::{Park, SpmcRing, WorkerDeque};
use doc_core::proxy::{CoapProxy, ProxyAction};
use doc_dns::{Message, Name, RecordType};

/// One named model: a deterministic, self-contained body over the real
/// primitives, run once per explored schedule.
struct Model {
    name: &'static str,
    about: &'static str,
    body: fn(),
}

/// The registry `--list` prints and the default run explores.
const MODELS: &[Model] = &[
    Model {
        name: "ring-spmc",
        about: "SpmcRing: 1 producer / 2 batch-draining consumers, exactly-once delivery",
        body: ring_spmc,
    },
    Model {
        name: "ring-close",
        about: "SpmcRing: concurrent close() drains queued items, then pops yield None",
        body: ring_close,
    },
    Model {
        name: "deque-steal",
        about: "WorkerDeque: owner LIFO pop racing a FIFO thief, exactly-once delivery",
        body: deque_steal,
    },
    Model {
        name: "deque-drain",
        about: "WorkerDeque: owner + two stealers drain concurrently, nothing lost or doubled",
        body: deque_drain,
    },
    Model {
        name: "pool-park",
        about: "Park: publish-then-notify producer vs parking worker, no lost wakeup",
        body: pool_park,
    },
    Model {
        name: "shard-cache",
        about: "ShardedCache: with_shard_mut read-modify-write loses no update",
        body: shard_cache,
    },
    Model {
        name: "response-cache",
        about: "ShardedResponseCache: concurrent inserts/lookups never bleed across keys",
        body: response_cache,
    },
    Model {
        name: "stats-snapshot",
        about: "CoapProxy: atomic stats snapshots stay coherent under concurrent requests",
        body: stats_snapshot,
    },
];

/// Exactly-once delivery through the real ring: every pushed item
/// reaches exactly one consumer, under every interleaving of the
/// producer, two batch-draining consumers, and close().
fn ring_spmc() {
    let ring: Arc<SpmcRing<u32>> = Arc::new(SpmcRing::new(2));
    let consumers: Vec<_> = (0..2)
        .map(|_| {
            let ring = Arc::clone(&ring);
            thread::spawn(move || {
                let mut got = Vec::new();
                let mut batch = Vec::new();
                while ring.pop_batch(&mut batch, 2) > 0 {
                    got.append(&mut batch);
                }
                got
            })
        })
        .collect();
    ring.push(1).expect("ring open");
    ring.push(2).expect("ring open");
    ring.close();
    let mut all: Vec<u32> = consumers.into_iter().flat_map(|h| h.join()).collect();
    all.sort_unstable();
    assert_eq!(all, vec![1, 2], "exactly-once delivery");
}

/// Close/drain semantics: items pushed before a concurrent close are
/// still delivered; pops after the drain observe the closed ring.
fn ring_close() {
    let ring: Arc<SpmcRing<u32>> = Arc::new(SpmcRing::new(2));
    ring.push(7).expect("ring open");
    let closer = {
        let ring = Arc::clone(&ring);
        thread::spawn(move || ring.close())
    };
    let popper = {
        let ring = Arc::clone(&ring);
        thread::spawn(move || (ring.pop(), ring.pop()))
    };
    closer.join();
    let (first, second) = popper.join();
    assert_eq!(first, Some(7), "queued item must survive a racing close");
    assert_eq!(second, None, "closed and drained");
}

/// The worker-pool deque under its two access patterns at once: the
/// owner popping LIFO from the back while a thief steals FIFO from the
/// front. Every item must surface exactly once, on exactly one side.
fn deque_steal() {
    let deque: Arc<WorkerDeque<u32>> = Arc::new(WorkerDeque::new(4));
    for i in 0..2u32 {
        deque.push_back(i).expect("under capacity");
    }
    let thief = {
        let deque = Arc::clone(&deque);
        thread::spawn(move || {
            let mut got = Vec::new();
            deque.steal_front_batch(&mut got, 1);
            got
        })
    };
    let mut all = Vec::new();
    let mut batch = Vec::new();
    deque.pop_back_batch(&mut batch, 2);
    all.append(&mut batch);
    all.extend(thief.join());
    // Whatever the race left behind is still owner-poppable.
    deque.pop_back_batch(&mut batch, 4);
    all.append(&mut batch);
    all.sort_unstable();
    assert_eq!(all, vec![0, 1], "exactly-once across owner pop and steal");
    assert!(deque.is_empty(), "fully drained");
}

/// Drain under contention: three queued items, the owner and two
/// concurrent stealers all pulling. The union of everything popped must
/// be the original items — nothing lost, nothing doubled.
fn deque_drain() {
    let deque: Arc<WorkerDeque<u32>> = Arc::new(WorkerDeque::new(4));
    for i in 0..3u32 {
        deque.push_back(i).expect("under capacity");
    }
    let stealers: Vec<_> = (0..2)
        .map(|_| {
            let deque = Arc::clone(&deque);
            thread::spawn(move || {
                let mut got = Vec::new();
                deque.steal_front_batch(&mut got, 2);
                got
            })
        })
        .collect();
    let mut all = Vec::new();
    let mut batch = Vec::new();
    deque.pop_back_batch(&mut batch, 3);
    all.append(&mut batch);
    for h in stealers {
        all.extend(h.join());
    }
    deque.pop_back_batch(&mut batch, 4);
    all.append(&mut batch);
    all.sort_unstable();
    assert_eq!(all, vec![0, 1, 2], "exactly-once under concurrent stealers");
    assert!(deque.is_empty(), "fully drained");
}

/// The pool's wakeup protocol: the producer publishes work *before*
/// notifying, the worker raises its parked flag *before* re-checking
/// the predicate. Under every interleaving the worker must drain the
/// item and terminate — a lost wakeup shows up as a deadlock, a missed
/// item as the assertion below.
fn pool_park() {
    let deque: Arc<WorkerDeque<u32>> = Arc::new(WorkerDeque::new(2));
    let park = Arc::new(Park::default());
    let closed = Arc::new(AtomicU64::new(0));
    let worker = {
        let deque = Arc::clone(&deque);
        let park = Arc::clone(&park);
        let closed = Arc::clone(&closed);
        thread::spawn(move || {
            let mut got = Vec::new();
            loop {
                let mut batch = Vec::new();
                if deque.pop_back_batch(&mut batch, 2) > 0 {
                    got.append(&mut batch);
                    continue;
                }
                if closed.load(Ordering::SeqCst) == 1 && deque.is_empty() {
                    return got;
                }
                park.park_until(|| !deque.is_empty() || closed.load(Ordering::SeqCst) == 1);
            }
        })
    };
    // Same order the pool uses: publish, then notify.
    deque.push_back(42).expect("under capacity");
    park.notify();
    closed.store(1, Ordering::SeqCst);
    park.notify();
    assert_eq!(worker.join(), vec![42], "worker must observe the item");
}

/// Two threads doing locked read-modify-write on the same shard entry:
/// both increments must land.
fn shard_cache() {
    let cache: Arc<ShardedCache<u64, u64>> = Arc::new(ShardedCache::new(2));
    let handles: Vec<_> = (0..2)
        .map(|_| {
            let cache = Arc::clone(&cache);
            thread::spawn(move || {
                cache.with_shard_mut(&1, |m| {
                    *m.entry(1).or_insert(0) += 1;
                });
            })
        })
        .collect();
    for h in handles {
        h.join();
    }
    assert_eq!(cache.get_cloned(&1), Some(2), "lost increment");
}

fn fetch_request(payload: &[u8]) -> CoapMessage {
    CoapMessage::request(Code::FETCH, MsgType::Con, 1, vec![1])
        .with_option(CoapOption::new(OptionNumber::URI_PATH, b"dns".to_vec()))
        .with_payload(payload.to_vec())
}

fn content_response(payload: &[u8]) -> CoapMessage {
    CoapMessage {
        mtype: MsgType::Ack,
        code: Code::CONTENT,
        message_id: 1,
        token: vec![1],
        options: vec![CoapOption::uint(OptionNumber::MAX_AGE, 60)],
        payload: payload.to_vec(),
    }
}

/// Two threads insert and look up *different* keys concurrently; each
/// must read back its own payload (no cross-key bleed through the
/// shard locks).
fn response_cache() {
    let cache = Arc::new(ShardedResponseCache::new(8, 2));
    let handles: Vec<_> = (0..2u8)
        .map(|i| {
            let cache = Arc::clone(&cache);
            thread::spawn(move || {
                let key = cache_key(&fetch_request(&[i]));
                cache.insert(key.clone(), content_response(&[i]), 0);
                match cache.lookup(&key, 1) {
                    Lookup::Fresh(r) => assert_eq!(r.payload, vec![i], "cross-key bleed"),
                    other => panic!("inserted entry must be fresh, got {other:?}"),
                }
            })
        })
        .collect();
    for h in handles {
        h.join();
    }
    assert_eq!(cache.len(), 2);
}

fn doc_fetch_wire(name: &str, mid: u16) -> Vec<u8> {
    let mut q = Message::query(0, Name::parse(name).expect("valid name"), RecordType::Aaaa);
    q.canonicalize_id();
    build_request(
        DocMethod::Fetch,
        &q.encode(),
        MsgType::Con,
        mid,
        vec![mid as u8],
    )
    .expect("valid request")
    .encode()
}

/// The proxy's atomic stats under concurrent cache hits: every
/// snapshot (taken mid-race by each worker) must be coherent
/// (hits ≤ requests) and the final counters must account for every
/// request exactly once.
fn stats_snapshot() {
    let proxy = Arc::new(CoapProxy::with_shards(8, 2));
    let wire = doc_fetch_wire("a.example.org", 9);
    // Prime the cache single-threaded so both model threads hit.
    match proxy.handle_client_request_wire(&wire, 0) {
        Ok(ProxyAction::Forward {
            request,
            exchange_id,
        }) => {
            let resp = content_response(&request.payload.clone());
            proxy
                .handle_upstream_response(exchange_id, &resp, 0)
                .expect("primed");
        }
        other => panic!("first touch must forward, got {other:?}"),
    }
    let handles: Vec<_> = (0..2)
        .map(|_| {
            let proxy = Arc::clone(&proxy);
            let wire = wire.clone();
            thread::spawn(move || {
                let action = proxy.handle_client_request_wire(&wire, 1).expect("valid");
                assert!(
                    matches!(action, ProxyAction::Respond(_)),
                    "primed entry must hit"
                );
                let snap = proxy.stats();
                assert!(
                    snap.cache_hits <= snap.requests,
                    "snapshot incoherent: {snap:?}"
                );
            })
        })
        .collect();
    for h in handles {
        h.join();
    }
    let snap = proxy.stats();
    assert_eq!(snap.requests, 3, "every request counted once");
    assert_eq!(snap.cache_hits, 2, "every hit counted once");
}

struct Args {
    model: Option<String>,
    schedule: Option<Schedule>,
    list: bool,
    max_schedules: Option<usize>,
    preemption_bound: Option<usize>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        model: None,
        schedule: None,
        list: false,
        max_schedules: None,
        preemption_bound: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--model" => args.model = Some(value("--model")?),
            "--schedule" => args.schedule = Some(value("--schedule")?.parse()?),
            "--list" => args.list = true,
            "--max-schedules" => {
                args.max_schedules = Some(
                    value("--max-schedules")?
                        .parse()
                        .map_err(|e| format!("--max-schedules: {e}"))?,
                )
            }
            "--preemption-bound" => {
                args.preemption_bound = Some(
                    value("--preemption-bound")?
                        .parse()
                        .map_err(|e| format!("--preemption-bound: {e}"))?,
                )
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if args.schedule.is_some() && args.model.is_none() {
        return Err("--schedule needs --model".to_string());
    }
    Ok(args)
}

fn config_for(model: &Model, args: &Args) -> Config {
    Config {
        max_schedules: args.max_schedules.unwrap_or(200_000),
        preemption_bound: args.preemption_bound.unwrap_or(2),
        replay_hint: Some(format!(
            "cargo run --release -p doc-repro --bin check_gate -- --model {}",
            model.name
        )),
        ..Config::default()
    }
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("check_gate: {e}");
            eprintln!(
                "usage: check_gate [--model NAME] [--schedule 0-1-0] [--list] \
                 [--max-schedules N] [--preemption-bound N]"
            );
            return ExitCode::from(2);
        }
    };

    if args.list {
        for m in MODELS {
            println!("{:16} {}", m.name, m.about);
        }
        return ExitCode::SUCCESS;
    }

    let selected: Vec<&Model> = match &args.model {
        Some(name) => match MODELS.iter().find(|m| m.name == *name) {
            Some(m) => vec![m],
            None => {
                eprintln!("check_gate: unknown model {name:?} (try --list)");
                return ExitCode::from(2);
            }
        },
        None => MODELS.iter().collect(),
    };

    if let Some(schedule) = &args.schedule {
        let model = selected[0];
        return match replay(&config_for(model, &args), schedule, model.body) {
            Ok(_) => {
                println!("{}: schedule {} runs clean", model.name, schedule);
                ExitCode::SUCCESS
            }
            Err(failure) => {
                eprintln!("{}: {failure}", model.name);
                ExitCode::from(2)
            }
        };
    }

    let mut total = 0usize;
    for model in &selected {
        let started = std::time::Instant::now();
        match explore(&config_for(model, &args), model.body) {
            Ok(report) => {
                total += report.schedules;
                println!(
                    "{:16} {:6} schedules explored{} [{:?}]",
                    model.name,
                    report.schedules,
                    if report.completed {
                        ""
                    } else {
                        " (truncated by --max-schedules)"
                    },
                    started.elapsed(),
                );
            }
            Err(failure) => {
                eprintln!("{}: {failure}", model.name);
                return ExitCode::from(2);
            }
        }
    }
    println!(
        "check_gate: clean — {total} schedules across {} models",
        selected.len()
    );
    ExitCode::SUCCESS
}
