//! `doc-repro` — umbrella crate for the DNS-over-CoAP reproduction
//! (*Securing Name Resolution in the IoT: DNS over CoAP*, Lenders et
//! al., CoNEXT 2023).
//!
//! Re-exports every workspace crate under one roof so examples and
//! downstream users can depend on a single crate:
//!
//! ```
//! use doc_repro::doc::method::DocMethod;
//! assert!(DocMethod::Fetch.cacheable());
//! ```
//!
//! See the `examples/` directory for runnable scenarios and
//! `crates/bench` for the per-figure evaluation harness.

/// Deterministic thread-interleaving model checker (loom-style).
pub use doc_check as check;

/// Workspace invariant linter (panic-free parsers, 0-alloc hot paths,
/// SAFETY-commented `unsafe`).
pub use doc_lint as lint;

/// The DoC protocol (client, server, proxy, policies, experiments).
pub use doc_core as doc;

/// DNS wire format and `application/dns+cbor`.
pub use doc_dns as dns;

/// CoAP codec, block-wise transfer, reliability, caching.
pub use doc_coap as coap;

/// DTLS 1.2 PSK transport security.
pub use doc_dtls as dtls;

/// OSCORE content-object security.
pub use doc_oscore as oscore;

/// IEEE 802.15.4 + 6LoWPAN adaptation layer.
pub use doc_sixlowpan as sixlowpan;

/// Discrete-event network simulator.
pub use doc_netsim as netsim;

/// Cryptographic substrate (AES-CCM, SHA-256, HKDF, CBOR, base64url).
pub use doc_crypto as crypto;

/// Calibrated empirical datasets (Table 3/4, Fig. 1).
pub use doc_datasets as datasets;

/// Build-size / QUIC / feature-matrix models (Fig. 5/8/9, Table 1).
pub use doc_models as models;

/// QUIC-lite simulated transport (DoQ/DoH/DoT stream framings).
pub use doc_quic as quic;

/// Shared millisecond time newtypes (`Millis`, `Instant`).
pub use doc_time as time;
